"""Coalescing free-list allocator with selectable placement policy.

Implements the placement strategies of the paper's "Placement
Strategies" section over one free list:

- ``best_fit`` — "place the information in the smallest space which is
  sufficient to contain it" (the "common and frequently satisfactory"
  strategy; also the one "found to be effective" on the B5000).
- ``first_fit`` — take the lowest-addressed sufficient hole.
- ``next_fit`` — first-fit resuming from the previous allocation point
  (a rover), trading fragmentation behaviour for shorter searches.
- ``worst_fit`` — take the largest hole (a known-bad contrast case for
  the experiments).

Frees coalesce with both neighbours immediately, so the free list always
holds maximal holes.

Two storage backends are available:

- **linear** (default, the "accounting mode"): an address-sorted list
  scanned per request.  ``search_steps`` counts holes examined exactly
  as the paper's bookkeeping-cost discussion assumes — best fit examines
  every hole — which is what the CL-PLACE experiments measure.
- **indexed** (``indexed=True``): a :class:`repro.fastpath.holes.HoleIndex`
  — power-of-two size-class bins plus an end-address map for O(1)
  coalescing — making ``best_fit`` sublinear per request.  Allocation
  *addresses* are bit-identical to the linear mode (verified by the
  differential property tests); only ``search_steps`` differs, counting
  the holes the index actually examines.  ``next_fit`` is inherently a
  positional scan and requires the linear backend.
"""

from __future__ import annotations

from repro.alloc.base import Allocation, AllocatorCounters, check_free_known
from repro.errors import OutOfMemory
from repro.observe.events import Free, Place
from repro.observe.tracer import Tracer, as_tracer

_POLICIES = ("first_fit", "best_fit", "worst_fit", "next_fit")


class FreeListAllocator:
    """Variable-unit allocation from a single span of storage.

    Parameters
    ----------
    capacity:
        Words of storage managed (addresses 0 .. capacity-1).
    policy:
        One of ``first_fit``, ``best_fit``, ``worst_fit``, ``next_fit``.
    indexed:
        Use the size-segregated hole index instead of the linear list.
        Same addresses, sublinear searches, fast-path ``search_steps``
        accounting.  Not available for ``next_fit``.
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer` receiving a
        ``Place`` event per successful allocation and a ``Free`` per
        release, timestamped by the running request+free count (the
        allocator keeps no clock).

    >>> allocator = FreeListAllocator(100, policy="best_fit")
    >>> block = allocator.allocate(30)
    >>> (block.address, block.size)
    (0, 30)
    """

    def __init__(
        self,
        capacity: int,
        policy: str = "first_fit",
        indexed: bool = False,
        tracer: Tracer | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if policy not in _POLICIES:
            raise ValueError(f"unknown placement policy {policy!r}; choose from {_POLICIES}")
        if indexed and policy == "next_fit":
            raise ValueError(
                "next_fit's rover walks the linear free list; "
                "use indexed=False for next_fit"
            )
        self.capacity = capacity
        self.policy = policy
        self.indexed = indexed
        self.tracer = as_tracer(tracer)
        self._live: dict[int, Allocation] = {}
        self._rover = 0  # index into _holes for next_fit
        self._next_block_id = 0
        self.counters = AllocatorCounters()
        if indexed:
            from repro.fastpath.holes import HoleIndex

            self._index = HoleIndex()
            self._index.insert(0, capacity)
            self._holes: list[tuple[int, int]] = []
        else:
            self._index = None
            self._holes = [(0, capacity)]  # sorted by address

    # -- inspection ------------------------------------------------------

    def holes(self) -> list[tuple[int, int]]:
        if self._index is not None:
            return self._index.holes_sorted()
        return list(self._holes)

    def allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.address)

    @property
    def free_words(self) -> int:
        if self._index is not None:
            return self._index.free_words
        return sum(size for _, size in self._holes)

    @property
    def used_words(self) -> int:
        return self.capacity - self.free_words

    @property
    def largest_hole(self) -> int:
        if self._index is not None:
            return self._index.largest_hole
        return max((size for _, size in self._holes), default=0)

    # -- placement -------------------------------------------------------

    def _choose_hole(self, size: int) -> int | None:
        """Return the index of the hole to allocate from, or None."""
        if self.policy == "first_fit":
            for index, (_, hole_size) in enumerate(self._holes):
                self.counters.search_steps += 1
                if hole_size >= size:
                    return index
            return None
        if self.policy == "next_fit":
            count = len(self._holes)
            if count == 0:
                return None
            start = self._rover % count
            for step in range(count):
                index = (start + step) % count
                self.counters.search_steps += 1
                if self._holes[index][1] >= size:
                    return index
            return None
        # best_fit / worst_fit examine every hole.
        chosen: int | None = None
        chosen_size = None
        for index, (_, hole_size) in enumerate(self._holes):
            self.counters.search_steps += 1
            if hole_size < size:
                continue
            better = (
                chosen is None
                or (self.policy == "best_fit" and hole_size < chosen_size)
                or (self.policy == "worst_fit" and hole_size > chosen_size)
            )
            if better:
                chosen, chosen_size = index, hole_size
        return chosen

    def _allocate_indexed(self, size: int) -> Allocation | None:
        """Place via the hole index; returns None when nothing fits."""
        if self.policy == "first_fit":
            found = self._index.find_first(size)
        elif self.policy == "best_fit":
            found = self._index.find_best(size)
        else:  # worst_fit
            found = self._index.find_worst(size)
        if found is None:
            return None
        address, _, examined = found
        self.counters.search_steps += examined
        self._index.take(address, size)
        return Allocation(address, size)

    def allocate(self, size: int) -> Allocation:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        self.counters.record_request(size)
        if self._index is not None:
            allocation = self._allocate_indexed(size)
            if allocation is None:
                self.counters.record_failure(size)
                raise OutOfMemory(
                    size,
                    f"largest hole {self.largest_hole} of {self.free_words} "
                    f"free words ({self.policy})",
                )
            self._live[allocation.address] = allocation
            if self.tracer.enabled:
                self._emit_place(allocation)
            return allocation
        index = self._choose_hole(size)
        if index is None:
            self.counters.record_failure(size)
            raise OutOfMemory(
                size,
                f"largest hole {self.largest_hole} of {self.free_words} free words "
                f"({self.policy})",
            )
        address, hole_size = self._holes[index]
        if hole_size == size:
            del self._holes[index]
            if self.policy == "next_fit":
                self._rover = index
        else:
            self._holes[index] = (address + size, hole_size - size)
            if self.policy == "next_fit":
                self._rover = index
        allocation = Allocation(address, size)
        self._live[address] = allocation
        if self.tracer.enabled:
            self._emit_place(allocation)
        return allocation

    def _emit_place(self, allocation: Allocation) -> None:
        # ``unit`` is a monotonic block id, not the address: addresses
        # are reused after frees, and an id keeps the lifetimes of two
        # blocks that happened to land at the same address distinct in
        # downstream analysis.
        block_id = self._next_block_id
        self._next_block_id += 1
        self.tracer.emit(Place(
            time=self.counters.requests + self.counters.frees,
            unit=block_id,
            where=allocation.address,
            size=allocation.size,
            policy=self.policy,
        ))

    # -- release ---------------------------------------------------------

    def free(self, allocation: Allocation) -> None:
        check_free_known(allocation, self._live, "FreeListAllocator")
        del self._live[allocation.address]
        self.counters.record_free(allocation.size)
        if self._index is not None:
            self._index.insert(allocation.address, allocation.size)
        else:
            self._insert_hole(allocation.address, allocation.size)
        # Emit only once the hole is back on the free list: sinks may
        # inspect the allocator (the invariant sink does), and mid-free
        # the words are accounted nowhere.
        if self.tracer.enabled:
            self.tracer.emit(Free(
                time=self.counters.requests + self.counters.frees,
                address=allocation.address,
                size=allocation.size,
            ))

    def _insert_hole(self, address: int, size: int) -> None:
        """Insert a hole in address order, coalescing with neighbours."""
        # The next-fit rover is an *index* into the hole list; the
        # coalescing deletions and the insertion below shift which hole
        # any given index names.  Remember the rover's hole by address
        # and re-find it afterwards, so the rover keeps pointing at the
        # same logical hole (or at whatever hole absorbed it).
        rover_address = None
        if self.policy == "next_fit" and 0 <= self._rover < len(self._holes):
            rover_address = self._holes[self._rover][0]
        lo, hi = 0, len(self._holes)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._holes[mid][0] < address:
                lo = mid + 1
            else:
                hi = mid
        index = lo
        # Coalesce with the predecessor?
        if index > 0:
            prev_address, prev_size = self._holes[index - 1]
            if prev_address + prev_size == address:
                address, size = prev_address, prev_size + size
                del self._holes[index - 1]
                index -= 1
        # Coalesce with the successor?
        if index < len(self._holes):
            next_address, next_size = self._holes[index]
            if address + size == next_address:
                size += next_size
                del self._holes[index]
        self._holes.insert(index, (address, size))
        if self.policy == "next_fit":
            self._rover = self._find_rover(rover_address)

    def _find_rover(self, rover_address: int | None) -> int:
        """Index of the hole containing ``rover_address`` (0 if unknown)."""
        if rover_address is None:
            return 0
        # Rightmost hole starting at or below the remembered address: a
        # coalesce can only have merged the rover's hole into one that
        # starts no later than it did.
        lo, hi = 0, len(self._holes)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._holes[mid][0] <= rover_address:
                lo = mid + 1
            else:
                hi = mid
        return max(0, lo - 1)

    # -- bulk state rebuild (compaction) ----------------------------------

    def rebuild(
        self, live: dict[int, Allocation], holes: list[tuple[int, int]]
    ) -> None:
        """Replace the allocator's state wholesale (post-compaction).

        ``holes`` must be maximal, non-overlapping, address-ascending.
        Works identically for both backends; the next-fit rover restarts
        at the list head.
        """
        self._live = live
        self._rover = 0
        if self._index is not None:
            self._index.clear()
            for address, size in holes:
                self._index.insert(address, size)
        else:
            self._holes = list(holes)

    # -- integrity (used by property tests) ------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if internal state is inconsistent."""
        previous_end = None
        for address, size in self.holes():
            assert size > 0, "zero-size hole"
            assert 0 <= address and address + size <= self.capacity, "hole out of range"
            if previous_end is not None:
                assert address > previous_end, "holes unsorted or uncoalesced"
            previous_end = address + size
        spans = sorted(
            [(a.address, a.end) for a in self._live.values()]
            + [(addr, addr + size) for addr, size in self.holes()]
        )
        cursor = 0
        for start, end in spans:
            assert start >= cursor, "overlapping extents"
            cursor = end
        assert (
            self.free_words + sum(a.size for a in self._live.values()) == self.capacity
        ), "words lost or duplicated"
        if self._index is not None:
            self._index.check_invariants()

    def __repr__(self) -> str:
        return (
            f"FreeListAllocator(capacity={self.capacity}, policy={self.policy!r}, "
            f"used={self.used_words}, holes={len(self.holes())}"
            f"{', indexed' if self.indexed else ''})"
        )
