"""Storage packing (compaction).

The second of the paper's "two main alternative courses of action" for
fragmented variable-unit storage: "move information around in storage so
as to remove any unused spaces between the sets of contiguous locations".
The special-hardware section notes machines provided "fast autonomous
storage to storage channel operations" for exactly this.

:func:`compact` slides every live allocation toward address zero.  The
cost — words moved — is what CL-COMPACT weighs against the utilization
recovered, using the per-word move time of
:meth:`repro.memory.physical.PhysicalMemory.move` when a memory is given.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.alloc.base import Allocation
from repro.alloc.freelist import FreeListAllocator
from repro.memory.physical import PhysicalMemory
from repro.observe.events import Compact
from repro.observe.tracer import Tracer, as_tracer


@dataclass(frozen=True)
class CompactionResult:
    """What one compaction pass accomplished."""

    moves: int
    words_moved: int
    hole_count_before: int
    hole_count_after: int
    largest_hole_before: int
    largest_hole_after: int
    relocations: dict[int, int]
    """Old address -> new address for every allocation that moved."""


def _recover(
    allocator: FreeListAllocator,
    moved_live: dict[int, Allocation],
    untouched: list[Allocation],
) -> None:
    """Rebuild the allocator mid-pass after a failed move or callback.

    ``moved_live`` holds the blocks already settled (at their possibly
    new addresses); ``untouched`` the blocks the pass never reached,
    still where they were.  Holes are the complement of the combined
    live set — maximal by construction because live extents are
    disjoint and sorted.
    """
    live = dict(moved_live)
    for allocation in untouched:
        live[allocation.address] = allocation
    holes: list[tuple[int, int]] = []
    edge = 0
    for address in sorted(live):
        if address > edge:
            holes.append((edge, address - edge))
        edge = address + live[address].size
    if edge < allocator.capacity:
        holes.append((edge, allocator.capacity - edge))
    allocator.rebuild(live, holes)


def compact(
    allocator: FreeListAllocator,
    memory: PhysicalMemory | None = None,
    on_relocate: Callable[[Allocation, Allocation], None] | None = None,
    tracer: Tracer | None = None,
) -> CompactionResult:
    """Slide all live allocations down to make one maximal hole at the top.

    Relocation implies updating whoever holds the old addresses — the
    problem the paper routes through base registers or mapping devices.
    ``on_relocate(old, new)`` is invoked per moved block so segment tables
    or codewords can be updated, mirroring the Rice back-reference whose
    whole purpose is to find the codeword that must be patched.

    ``tracer`` (defaulting to the allocator's own) receives one
    ``Compact`` event summarizing the pass.

    The allocator's internal state is rebuilt in place; the allocation
    objects handed out earlier become stale for moved blocks (use the
    ``relocations`` map or the callback to track them).

    The pass is exception-safe: if ``memory.move`` or ``on_relocate``
    raises partway through, the allocator is rebuilt to match exactly
    the moves that physically completed — blocks moved so far at their
    new addresses, the rest untouched — before the exception propagates,
    so allocator bookkeeping never diverges from storage contents.
    """
    holes_before = allocator.holes()
    largest_before = allocator.largest_hole
    live = allocator.allocations()  # ascending by address

    relocations: dict[int, int] = {}
    moves = 0
    words_moved = 0
    cursor = 0
    new_live: dict[int, Allocation] = {}
    for position, allocation in enumerate(live):
        if allocation.address == cursor:
            new_live[cursor] = allocation
            cursor += allocation.size
            continue
        try:
            if memory is not None:
                memory.move(allocation.address, cursor, allocation.size)
        except BaseException:
            # The move did not happen: this block (and everything after
            # it) is still at its old address.
            _recover(allocator, new_live, live[position:])
            raise
        moved = Allocation(cursor, allocation.size)
        relocations[allocation.address] = cursor
        moves += 1
        words_moved += allocation.size
        new_live[cursor] = moved
        cursor += allocation.size
        if on_relocate is not None:
            try:
                on_relocate(allocation, moved)
            except BaseException:
                # The words *did* move; account the block at its new
                # address so state matches physical storage.
                _recover(allocator, new_live, live[position + 1:])
                raise

    # Rebuild the allocator's free list: one hole from the cursor up.
    if cursor < allocator.capacity:
        holes = [(cursor, allocator.capacity - cursor)]
    else:
        holes = []
    allocator.rebuild(new_live, holes)

    active = as_tracer(tracer) if tracer is not None else allocator.tracer
    if active.enabled:
        active.emit(Compact(
            time=allocator.counters.requests + allocator.counters.frees,
            moves=moves,
            words_moved=words_moved,
            holes_before=len(holes_before),
            holes_after=len(allocator.holes()),
        ))

    return CompactionResult(
        moves=moves,
        words_moved=words_moved,
        hole_count_before=len(holes_before),
        hole_count_after=len(allocator.holes()),
        largest_hole_before=largest_before,
        largest_hole_after=allocator.largest_hole,
        relocations=relocations,
    )
