"""Common allocator interface and bookkeeping.

All variable-unit allocators manage a single span of working storage,
hand out :class:`Allocation` records, and expose the same inspection
surface (holes, allocations, counters) so the placement experiments can
swap strategies over identical request streams.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Protocol, runtime_checkable

from repro.errors import InvalidFree, OutOfMemory


@dataclass(frozen=True, slots=True)
class Allocation:
    """A block of contiguous storage granted to a request."""

    address: int
    size: int

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.size <= 0:
            raise ValueError(f"size must be positive, got {self.size}")

    @property
    def end(self) -> int:
        """One past the last word of the block."""
        return self.address + self.size

    def overlaps(self, other: "Allocation") -> bool:
        return self.address < other.end and other.address < self.end


@runtime_checkable
class Allocator(Protocol):
    """The contract shared by every variable-unit allocator."""

    capacity: int

    def allocate(self, size: int) -> Allocation:
        """Grant a block of ``size`` contiguous words, or raise OutOfMemory."""
        ...

    def free(self, allocation: Allocation) -> None:
        """Return a previously granted block."""
        ...

    def holes(self) -> list[tuple[int, int]]:
        """Free extents as (address, size), ascending by address."""
        ...

    def allocations(self) -> list[Allocation]:
        """Live allocations, ascending by address."""
        ...


class AllocatorCounters:
    """Shared mutable counters every allocator keeps.

    ``search_steps`` counts free-list elements examined — the
    "bookkeeping" cost the paper trades off between placement strategies
    (best-fit searches the whole list; two-ends touches one pointer).
    """

    __slots__ = (
        "requests",
        "failures",
        "frees",
        "search_steps",
        "words_allocated",
        "words_freed",
    )

    def __init__(self) -> None:
        self.requests = 0
        self.failures = 0
        self.frees = 0
        self.search_steps = 0
        self.words_allocated = 0
        self.words_freed = 0

    def record_request(self, size: int) -> None:
        self.requests += 1
        self.words_allocated += size

    def record_failure(self, size: int) -> None:
        self.failures += 1
        self.words_allocated -= size  # undo the optimistic add

    def record_free(self, size: int) -> None:
        self.frees += 1
        self.words_freed += size


def check_free_known(
    allocation: Allocation, live: dict[int, Allocation], kind: str
) -> None:
    """Validate a free request against the live-allocation map."""
    known = live.get(allocation.address)
    if known is None:
        raise InvalidFree(
            f"{kind}: no live allocation at address {allocation.address}"
        )
    if known.size != allocation.size:
        raise InvalidFree(
            f"{kind}: size mismatch at {allocation.address} "
            f"(allocated {known.size}, freeing {allocation.size})"
        )


def coalesce(holes: list[tuple[int, int]]) -> list[tuple[int, int]]:
    """Merge adjacent (address, size) holes; input may be unsorted."""
    if not holes:
        return []
    merged: list[tuple[int, int]] = []
    for address, size in sorted(holes):
        if merged and merged[-1][0] + merged[-1][1] == address:
            prev_address, prev_size = merged[-1]
            merged[-1] = (prev_address, prev_size + size)
        else:
            merged.append((address, size))
    return merged


def iter_request_sizes(allocations: list[Allocation]) -> Iterator[int]:
    for allocation in allocations:
        yield allocation.size


__all__ = [
    "Allocation",
    "Allocator",
    "AllocatorCounters",
    "InvalidFree",
    "OutOfMemory",
    "check_free_known",
    "coalesce",
]
