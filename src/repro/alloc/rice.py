"""The Rice University computer's allocation scheme (Appendix A.4).

Iliffe and Jodeit's scheme, as the paper summarizes it:

- Segments are "initially placed sequentially in storage in a block of
  contiguous locations, the first of which is a 'back reference' to the
  codeword of the segment" — so every active block carries one word of
  overhead.
- A block whose segment "loses its significance" is designated *inactive*
  and its first word is "set up with the size of the block and the
  location of the next inactive block in storage" — a singly linked chain
  of free blocks threaded through storage itself.
- Allocation searches the chain sequentially for a block of sufficient
  size; leftover space "replaces the original inactive block in the
  chain".
- If no sufficient block exists, adjacent inactive blocks are combined.
- If that also fails, a replacement algorithm is applied *iteratively*
  (see :meth:`RiceAllocator.allocate_with_replacement`) until a large
  enough block is released.

The chain is kept in the order blocks were freed (most recent first),
not address order — which is why combining adjacent blocks is a distinct,
more expensive step, faithfully modelled here.
"""

from __future__ import annotations

from typing import Callable, Iterable

from repro.alloc.base import Allocation, AllocatorCounters, check_free_known
from repro.errors import OutOfMemory
from repro.observe.events import Free, Place
from repro.observe.tracer import Tracer, as_tracer


class RiceAllocator:
    """Inactive-block-chain allocation with back-reference overhead.

    Parameters
    ----------
    capacity:
        Words managed.
    back_reference_words:
        Overhead words prepended to every active block (1 in the paper:
        the back reference to the codeword).
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer` receiving a
        ``Place`` per granted block (``size`` is the gross extent,
        back reference included) and a ``Free`` per block designated
        inactive, timestamped by the running request+free count.

    >>> allocator = RiceAllocator(1000)
    >>> block = allocator.allocate(99)
    >>> block.size                       # 99 requested + 1 back reference
    100
    >>> block.address
    0
    """

    def __init__(
        self,
        capacity: int,
        back_reference_words: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if back_reference_words < 0:
            raise ValueError("back_reference_words must be non-negative")
        self.capacity = capacity
        self.back_reference_words = back_reference_words
        self._sequential_next = 0      # bump pointer for virgin storage
        self._chain: list[tuple[int, int]] = []   # inactive blocks, freed order
        self._live: dict[int, Allocation] = {}
        self.counters = AllocatorCounters()
        self.tracer = as_tracer(tracer)
        self.combines = 0
        self.replacement_rounds = 0

    def _gross(self, size: int) -> int:
        return size + self.back_reference_words

    def allocate(self, size: int) -> Allocation:
        """Grant a block, searching the chain, then virgin storage, then
        combining adjacent inactive blocks.  Raises OutOfMemory if all
        three fail; callers wanting the paper's final recourse use
        :meth:`allocate_with_replacement`.

        The returned allocation's ``size`` includes the back-reference
        overhead; its usable extent starts ``back_reference_words`` past
        ``address``.
        """
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        gross = self._gross(size)
        self.counters.record_request(gross)
        address = self._take(gross)
        if address is None:
            self.combine_adjacent()
            address = self._take(gross)
        if address is None:
            self.counters.record_failure(gross)
            raise OutOfMemory(
                size, f"chain of {len(self._chain)} inactive blocks insufficient"
            )
        allocation = Allocation(address, gross)
        self._live[address] = allocation
        if self.tracer.enabled:
            self.tracer.emit(Place(
                time=self.counters.requests + self.counters.frees,
                unit=address, where=address, size=gross, policy="rice",
            ))
        return allocation

    def _take(self, gross: int) -> int | None:
        # 1. Sequential search of the inactive-block chain (freed order).
        for index, (address, block_size) in enumerate(self._chain):
            self.counters.search_steps += 1
            if block_size >= gross:
                leftover = block_size - gross
                if leftover:
                    # "If any unused space is left over it replaces the
                    # original inactive block in the chain."
                    self._chain[index] = (address + gross, leftover)
                else:
                    del self._chain[index]
                return address
        # 2. Virgin storage past the sequential-placement pointer.
        if self.capacity - self._sequential_next >= gross:
            address = self._sequential_next
            self._sequential_next += gross
            return address
        return None

    def free(self, allocation: Allocation) -> None:
        """Designate a block inactive: thread it onto the chain head."""
        check_free_known(allocation, self._live, "RiceAllocator")
        del self._live[allocation.address]
        self.counters.record_free(allocation.size)
        if self.tracer.enabled:
            self.tracer.emit(Free(
                time=self.counters.requests + self.counters.frees,
                address=allocation.address, size=allocation.size,
            ))
        self._chain.insert(0, (allocation.address, allocation.size))

    def combine_adjacent(self) -> int:
        """Merge physically adjacent inactive blocks; returns merges done.

        The chain is rebuilt (still headed by the lowest-addressed merged
        block) — the bookkeeping step the paper describes as the fallback
        before replacement.  Inactive space adjacent to virgin storage is
        returned to the bump pointer.
        """
        if not self._chain:
            return 0
        merged: list[tuple[int, int]] = []
        merges = 0
        for address, size in sorted(self._chain):
            if merged and merged[-1][0] + merged[-1][1] == address:
                prev_address, prev_size = merged[-1]
                merged[-1] = (prev_address, prev_size + size)
                merges += 1
            else:
                merged.append((address, size))
        # Fold the topmost block back into virgin storage if adjacent.
        if merged and merged[-1][0] + merged[-1][1] == self._sequential_next:
            address, size = merged.pop()
            self._sequential_next = address
        self._chain = merged
        self.combines += merges
        return merges

    def allocate_with_replacement(
        self,
        size: int,
        victims: Iterable[Allocation],
        on_replace: Callable[[Allocation], None] | None = None,
    ) -> Allocation:
        """The full Appendix A.4 path: chain, combine, then iterative
        replacement.

        ``victims`` yields live allocations in the order the replacement
        algorithm would sacrifice them (the caller encodes "whether a copy
        exists in backing storage and whether or not a segment has been
        used since it was last considered").  Victims are freed one at a
        time, combining after each, "until a block of sufficient size is
        released".  ``on_replace`` is told about each sacrifice so the
        caller can write the segment back.
        """
        try:
            return self.allocate(size)
        except OutOfMemory:
            pass
        for victim in victims:
            self.replacement_rounds += 1
            if on_replace is not None:
                on_replace(victim)
            self.free(victim)
            self.combine_adjacent()
            try:
                return self.allocate(size)
            except OutOfMemory:
                continue
        raise OutOfMemory(size, "replacement exhausted every candidate")

    # -- inspection -------------------------------------------------------

    def holes(self) -> list[tuple[int, int]]:
        extents = sorted(self._chain)
        if self._sequential_next < self.capacity:
            extents.append((self._sequential_next, self.capacity - self._sequential_next))
        return extents

    def allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.address)

    @property
    def free_words(self) -> int:
        return sum(size for _, size in self.holes())

    @property
    def used_words(self) -> int:
        return self.capacity - self.free_words

    @property
    def largest_hole(self) -> int:
        return max((size for _, size in self.holes()), default=0)

    @property
    def chain_length(self) -> int:
        return len(self._chain)

    def check_invariants(self) -> None:
        spans = sorted(
            [(a.address, a.end) for a in self._live.values()]
            + [(addr, addr + size) for addr, size in self.holes()]
        )
        cursor = 0
        for start, end in spans:
            assert start >= cursor, "overlapping extents"
            cursor = end
        assert cursor <= self.capacity, "extent past end of storage"
        assert (
            self.free_words + sum(a.size for a in self._live.values())
            == self.capacity
        ), "words lost or duplicated"

    def __repr__(self) -> str:
        return (
            f"RiceAllocator(capacity={self.capacity}, live={len(self._live)}, "
            f"chain={len(self._chain)})"
        )
