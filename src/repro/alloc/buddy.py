"""Binary buddy allocation.

A contrast case sitting between the paper's two poles: units are
variable, but quantized to powers of two, so every request is rounded up
(internal fragmentation, like paging) while the free space can still
fragment externally across size classes.  The experiments use it to show
that quantizing the unit trades one kind of fragmentation for the other —
the paper's "choosing the size of the unit" dilemma in allocator form.

Splitting and recombination follow Knowlton's scheme: a free block of
size 2^k splits into two buddies of size 2^(k-1); a freed block recombines
with its buddy (address XOR size) whenever the buddy is wholly free.
"""

from __future__ import annotations

from repro.alloc.base import Allocation, AllocatorCounters, check_free_known
from repro.errors import InvalidFree, OutOfMemory
from repro.observe.events import Free, Place
from repro.observe.tracer import Tracer, as_tracer


def _round_up_pow2(n: int) -> int:
    return 1 << (n - 1).bit_length()


class BuddyAllocator:
    """Power-of-two block allocation with buddy recombination.

    Parameters
    ----------
    capacity:
        Words managed; must itself be a power of two.
    min_block:
        Smallest block ever handed out (grain of the size classes).
    tracer:
        Optional :class:`~repro.observe.tracer.Tracer` receiving a
        ``Place`` per allocation (``size`` is the *rounded* block
        actually reserved, so occupancy analysis sees the internal
        fragmentation) and a ``Free`` per release, timestamped by the
        running request+free count.

    >>> allocator = BuddyAllocator(256, min_block=16)
    >>> block = allocator.allocate(20)      # rounded up to 32
    >>> allocator.block_size(block)
    32
    """

    def __init__(
        self,
        capacity: int,
        min_block: int = 1,
        tracer: Tracer | None = None,
    ) -> None:
        if capacity <= 0 or capacity & (capacity - 1):
            raise ValueError(f"capacity must be a power of two, got {capacity}")
        if min_block <= 0 or min_block & (min_block - 1):
            raise ValueError(f"min_block must be a power of two, got {min_block}")
        if min_block > capacity:
            raise ValueError("min_block cannot exceed capacity")
        self.capacity = capacity
        self.min_block = min_block
        # free_lists[k] holds addresses of free blocks of size 2^k.
        self._free_lists: dict[int, set[int]] = {
            k: set() for k in range(min_block.bit_length() - 1,
                                    capacity.bit_length())
        }
        self._free_lists[capacity.bit_length() - 1].add(0)
        self._live: dict[int, Allocation] = {}      # address -> requested size
        self._block_orders: dict[int, int] = {}     # address -> order granted
        self.counters = AllocatorCounters()
        self.tracer = as_tracer(tracer)

    def _order_for(self, size: int) -> int:
        rounded = max(_round_up_pow2(size), self.min_block)
        return rounded.bit_length() - 1

    def allocate(self, size: int) -> Allocation:
        if size <= 0:
            raise ValueError(f"allocation size must be positive, got {size}")
        if size > self.capacity:
            self.counters.record_request(size)
            self.counters.record_failure(size)
            raise OutOfMemory(size, "exceeds buddy capacity")
        self.counters.record_request(size)
        order = self._order_for(size)
        source = order
        max_order = self.capacity.bit_length() - 1
        while source <= max_order and not self._free_lists[source]:
            self.counters.search_steps += 1
            source += 1
        if source > max_order:
            self.counters.record_failure(size)
            raise OutOfMemory(size, f"no free block of order >= {order}")
        address = min(self._free_lists[source])
        self._free_lists[source].discard(address)
        # Split down to the requested order.
        while source > order:
            source -= 1
            buddy = address + (1 << source)
            self._free_lists[source].add(buddy)
        allocation = Allocation(address, size)
        self._live[address] = allocation
        self._block_orders[address] = order
        if self.tracer.enabled:
            self.tracer.emit(Place(
                time=self.counters.requests + self.counters.frees,
                unit=address, where=address, size=1 << order, policy="buddy",
            ))
        return allocation

    def free(self, allocation: Allocation) -> None:
        check_free_known(allocation, self._live, "BuddyAllocator")
        del self._live[allocation.address]
        order = self._block_orders.pop(allocation.address)
        self.counters.record_free(allocation.size)
        if self.tracer.enabled:
            self.tracer.emit(Free(
                time=self.counters.requests + self.counters.frees,
                address=allocation.address, size=1 << order,
            ))
        address = allocation.address
        max_order = self.capacity.bit_length() - 1
        while order < max_order:
            buddy = address ^ (1 << order)
            if buddy not in self._free_lists[order]:
                break
            self._free_lists[order].discard(buddy)
            address = min(address, buddy)
            order += 1
        self._free_lists[order].add(address)

    def block_size(self, allocation: Allocation) -> int:
        """The rounded (actually reserved) size of a live allocation."""
        try:
            order = self._block_orders[allocation.address]
        except KeyError:
            raise InvalidFree(
                f"no live buddy block at {allocation.address}"
            ) from None
        return 1 << order

    # -- inspection -------------------------------------------------------

    def holes(self) -> list[tuple[int, int]]:
        extents = [
            (address, 1 << order)
            for order, addresses in self._free_lists.items()
            for address in addresses
        ]
        return sorted(extents)

    def allocations(self) -> list[Allocation]:
        return sorted(self._live.values(), key=lambda a: a.address)

    @property
    def free_words(self) -> int:
        return sum(size for _, size in self.holes())

    @property
    def used_words(self) -> int:
        """Words actually reserved (rounded blocks), not words requested."""
        return self.capacity - self.free_words

    @property
    def internal_waste(self) -> int:
        """Words reserved beyond what requests asked for."""
        return sum(
            (1 << self._block_orders[a.address]) - a.size
            for a in self._live.values()
        )

    @property
    def largest_hole(self) -> int:
        return max((size for _, size in self.holes()), default=0)

    def check_invariants(self) -> None:
        spans = sorted(
            [(a, a + (1 << order)) for a, order in self._block_orders.items()]
            + [(addr, addr + size) for addr, size in self.holes()]
        )
        cursor = 0
        for start, end in spans:
            assert start == cursor, f"gap or overlap at {start} (expected {cursor})"
            cursor = end
        assert cursor == self.capacity, "blocks do not tile storage"
        for order, addresses in self._free_lists.items():
            for address in addresses:
                assert address % (1 << order) == 0, "misaligned free block"

    def __repr__(self) -> str:
        return (
            f"BuddyAllocator(capacity={self.capacity}, min_block={self.min_block}, "
            f"live={len(self._live)})"
        )
