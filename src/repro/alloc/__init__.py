"""Variable-unit storage allocation (nonuniform units of allocation).

When "the size of the unit of allocation is varied in order to suit the
needs of the information to be stored, the problem of storage
fragmentation becomes directly apparent".  This package implements the
placement strategies the paper names, the compaction alternative, and the
fragmentation measurements the experiments report:

- :class:`~repro.alloc.freelist.FreeListAllocator` — a coalescing free
  list with first-fit, **best-fit** ("place the information in the
  smallest space which is sufficient to contain it" — the "common and
  frequently satisfactory" strategy), worst-fit and next-fit placement.
- :class:`~repro.alloc.two_ends.TwoEndsAllocator` — "an alternative
  strategy, which involves less bookkeeping, is to place large blocks of
  information starting at one end of storage and small blocks starting at
  the other end".
- :class:`~repro.alloc.buddy.BuddyAllocator` — a power-of-two contrast
  case sitting between uniform and arbitrary units.
- :class:`~repro.alloc.boundary_tags.BoundaryTagAllocator` — Knuth's
  contemporaneous boundary-tag method: constant-time coalescing bought
  with two tag words per block.
- :class:`~repro.alloc.rice.RiceAllocator` — the inactive-block chain of
  the Rice University computer (Appendix A.4), with back references,
  adjacent-block combination, and hooks for the iterative replacement
  algorithm.
- :func:`~repro.alloc.compaction.compact` — moving information "around in
  storage so as to remove any unused spaces", with the moved-word cost
  accounted.
- :mod:`~repro.alloc.stats` — external/internal fragmentation and
  utilization measures (the Wald-style analysis).
"""

from repro.alloc.base import Allocation, Allocator
from repro.alloc.boundary_tags import BoundaryTagAllocator
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.compaction import CompactionResult, compact
from repro.alloc.freelist import FreeListAllocator
from repro.alloc.rice import RiceAllocator
from repro.alloc.stats import FragmentationStats, fragmentation_stats
from repro.alloc.two_ends import TwoEndsAllocator

PLACEMENT_POLICIES = ("first_fit", "best_fit", "worst_fit", "next_fit")

__all__ = [
    "Allocation",
    "Allocator",
    "BoundaryTagAllocator",
    "BuddyAllocator",
    "CompactionResult",
    "FragmentationStats",
    "FreeListAllocator",
    "PLACEMENT_POLICIES",
    "RiceAllocator",
    "TwoEndsAllocator",
    "compact",
    "fragmentation_stats",
]
