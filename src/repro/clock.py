"""Simulated time.

Every component of the simulated storage system that consumes time —
address mapping steps, storage accesses, page transfers, compaction moves —
charges its cost to a shared :class:`Clock`.  The paper's quantitative
arguments (the space-time product of Figure 3, the addressing-overhead
claim about associative memories) are all statements about accumulated
time, so the clock is the one piece of global state the simulation allows
itself.

Time is measured in abstract *cycles*.  Machine models assign concrete
meanings (e.g. on the modelled ATLAS a core access is ~1 cycle and a drum
page transfer tens of thousands).
"""

from __future__ import annotations


class Clock:
    """A monotonically advancing cycle counter.

    >>> clock = Clock()
    >>> clock.advance(5)
    >>> clock.now
    5
    """

    __slots__ = ("_now",)

    def __init__(self, start: int = 0) -> None:
        if start < 0:
            raise ValueError(f"clock cannot start at negative time {start}")
        self._now = start

    @property
    def now(self) -> int:
        """Current simulated time in cycles."""
        return self._now

    def advance(self, cycles: int) -> None:
        """Move time forward by ``cycles`` (must be non-negative)."""
        if cycles < 0:
            raise ValueError(f"cannot advance clock by negative amount {cycles}")
        self._now += cycles

    def advance_to(self, time: int) -> None:
        """Move time forward to an absolute instant (must not be in the past)."""
        if time < self._now:
            raise ValueError(f"cannot move clock backwards from {self._now} to {time}")
        self._now = time

    def reset(self) -> None:
        """Rewind to zero.  Intended for reusing a clock between experiments."""
        self._now = 0

    def __repr__(self) -> str:
        return f"Clock(now={self._now})"


class StopWatch:
    """Measures elapsed time on a :class:`Clock` between two instants.

    >>> clock = Clock()
    >>> watch = StopWatch(clock)
    >>> clock.advance(10)
    >>> watch.elapsed
    10
    """

    __slots__ = ("_clock", "_start")

    def __init__(self, clock: Clock) -> None:
        self._clock = clock
        self._start = clock.now

    @property
    def elapsed(self) -> int:
        return self._clock.now - self._start

    def restart(self) -> int:
        """Return elapsed time and begin a new measurement interval."""
        elapsed = self.elapsed
        self._start = self._clock.now
        return elapsed
