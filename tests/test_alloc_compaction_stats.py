"""Tests for compaction and fragmentation statistics."""

import pytest

from repro.alloc import FreeListAllocator, compact, fragmentation_stats
from repro.alloc.stats import internal_fragmentation, paging_internal_waste
from repro.memory import PhysicalMemory


def fragmented_allocator():
    """Ten 10-word blocks with every other one freed: 5 shredded holes."""
    allocator = FreeListAllocator(100)
    blocks = [allocator.allocate(10) for _ in range(10)]
    for block in blocks[::2]:
        allocator.free(block)
    return allocator, [b for b in blocks[1::2]]


class TestCompaction:
    def test_compaction_consolidates_holes(self):
        allocator, _ = fragmented_allocator()
        result = compact(allocator)
        assert result.hole_count_before == 5
        assert result.hole_count_after == 1
        assert allocator.holes() == [(50, 50)]

    def test_live_blocks_slide_down(self):
        allocator, live = fragmented_allocator()
        compact(allocator)
        addresses = [a.address for a in allocator.allocations()]
        assert addresses == [0, 10, 20, 30, 40]

    def test_words_moved_counted(self):
        allocator, _ = fragmented_allocator()
        result = compact(allocator)
        assert result.words_moved == 50   # all five live blocks moved

    def test_relocation_map(self):
        allocator, _ = fragmented_allocator()
        result = compact(allocator)
        assert result.relocations == {10: 0, 30: 10, 50: 20, 70: 30, 90: 40}

    def test_data_moves_with_blocks(self):
        memory = PhysicalMemory(100)
        allocator = FreeListAllocator(100)
        a = allocator.allocate(10)
        b = allocator.allocate(10)
        memory.write_block(b.address, list(range(10)))
        allocator.free(a)
        compact(allocator, memory=memory)
        assert memory.read_block(0, 10) == list(range(10))

    def test_relocate_callback_invoked(self):
        allocator, _ = fragmented_allocator()
        seen = []
        compact(allocator, on_relocate=lambda old, new: seen.append((old.address, new.address)))
        assert (10, 0) in seen

    def test_unmoved_block_not_reported(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(10)   # already at 0
        result = compact(allocator)
        assert result.moves == 0 and result.relocations == {}

    def test_compacted_storage_serves_large_request(self):
        """The point of compaction: a request only the merged hole fits."""
        allocator, _ = fragmented_allocator()
        compact(allocator)
        assert allocator.allocate(50).size == 50

    def test_full_storage_compacts_to_no_hole(self):
        allocator = FreeListAllocator(20)
        allocator.allocate(10)
        allocator.allocate(10)
        result = compact(allocator)
        assert allocator.holes() == []
        assert result.largest_hole_after == 0

    def test_allocator_invariants_after_compaction(self):
        allocator, _ = fragmented_allocator()
        compact(allocator)
        allocator.check_invariants()


class FailingMemory:
    """A memory whose move channel dies on the Nth transfer."""

    def __init__(self, memory, fail_on):
        self._memory = memory
        self.fail_on = fail_on
        self.moves = 0

    def move(self, source, destination, count):
        self.moves += 1
        if self.moves == self.fail_on:
            raise RuntimeError("channel dropped the transfer")
        self._memory.move(source, destination, count)

    def __getattr__(self, name):
        return getattr(self._memory, name)


class TestCompactionExceptionSafety:
    """Regression: a failed move mid-pass used to leave the allocator's
    books describing a compaction that never physically finished."""

    def test_failed_move_leaves_consistent_state(self):
        memory = PhysicalMemory(100)
        allocator, live = fragmented_allocator()
        for block in live:
            memory.write_block(block.address, [block.address] * block.size)
        flaky = FailingMemory(memory, fail_on=3)
        with pytest.raises(RuntimeError):
            compact(allocator, memory=flaky)
        allocator.check_invariants()
        # The first two blocks moved; the rest are still where they were.
        addresses = [a.address for a in allocator.allocations()]
        assert addresses == [0, 10, 50, 70, 90]
        # Bookkeeping matches physical contents for every live block.
        for block in allocator.allocations():
            words = memory.read_block(block.address, block.size)
            assert len(set(words)) == 1 and words[0] is not None

    def test_failed_move_then_retry_completes(self):
        memory = PhysicalMemory(100)
        allocator, live = fragmented_allocator()
        for block in live:
            memory.write_block(block.address, [f"b{block.address}"] * block.size)
        flaky = FailingMemory(memory, fail_on=2)
        with pytest.raises(RuntimeError):
            compact(allocator, memory=flaky)
        # The channel recovers: a fresh pass finishes the job.
        result = compact(allocator, memory=memory)
        allocator.check_invariants()
        assert [a.address for a in allocator.allocations()] == [0, 10, 20, 30, 40]
        assert allocator.holes() == [(50, 50)]
        assert result.hole_count_after == 1

    def test_failed_callback_accounts_block_at_new_address(self):
        allocator, _ = fragmented_allocator()
        calls = []

        def explode(old, new):
            calls.append((old.address, new.address))
            if len(calls) == 2:
                raise ValueError("segment table update failed")

        with pytest.raises(ValueError):
            compact(allocator, on_relocate=explode)
        allocator.check_invariants()
        # The second block's words moved before the callback failed, so
        # it must be accounted at its *new* address.
        addresses = [a.address for a in allocator.allocations()]
        assert addresses == [0, 10, 50, 70, 90]

    def test_allocator_usable_after_failed_pass(self):
        allocator, _ = fragmented_allocator()
        flaky = FailingMemory(PhysicalMemory(100), fail_on=1)
        with pytest.raises(RuntimeError):
            compact(allocator, memory=flaky)
        block = allocator.allocate(10)
        allocator.free(block)
        allocator.check_invariants()


class TestFragmentationStats:
    def test_empty_allocator(self):
        stats = fragmentation_stats(FreeListAllocator(100))
        assert stats.utilization == 0.0
        assert stats.external_fragmentation == 0.0
        assert stats.largest_hole == 100

    def test_shredded_storage(self):
        allocator, _ = fragmented_allocator()
        stats = fragmentation_stats(allocator)
        assert stats.hole_count == 5
        assert stats.free_words == 50
        assert stats.largest_hole == 10
        assert stats.external_fragmentation == pytest.approx(1 - 10 / 50)

    def test_full_storage_has_zero_fragmentation(self):
        allocator = FreeListAllocator(10)
        allocator.allocate(10)
        stats = fragmentation_stats(allocator)
        assert stats.external_fragmentation == 0.0
        assert stats.utilization == 1.0

    def test_str_is_readable(self):
        text = str(fragmentation_stats(FreeListAllocator(100)))
        assert "util=" in text and "frag=" in text


class TestInternalFragmentation:
    def test_basic(self):
        assert internal_fragmentation([10, 20], [16, 32]) == pytest.approx(18 / 48)

    def test_empty(self):
        assert internal_fragmentation([], []) == 0.0

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError):
            internal_fragmentation([1], [])

    def test_reserved_below_requested_rejected(self):
        with pytest.raises(ValueError):
            internal_fragmentation([10], [5])


class TestPagingInternalWaste:
    def test_partial_last_page(self):
        wasted, reserved = paging_internal_waste([100], page_size=64)
        assert reserved == 128
        assert wasted == 28

    def test_exact_multiple_wastes_nothing(self):
        wasted, reserved = paging_internal_waste([128], page_size=64)
        assert wasted == 0 and reserved == 128

    def test_many_small_requests_waste_most_of_each_frame(self):
        """The paper: 'many page frames will be only partly used'."""
        wasted, reserved = paging_internal_waste([1] * 10, page_size=512)
        assert reserved == 5120
        assert wasted == 5110

    def test_validation(self):
        with pytest.raises(ValueError):
            paging_internal_waste([10], page_size=0)
        with pytest.raises(ValueError):
            paging_internal_waste([0], page_size=64)
