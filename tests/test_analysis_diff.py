"""Cross-run trace diffing: divergence points and per-kind deltas."""

from repro.observe import Evict, Fault, JsonlSink, Place, Tracer
from repro.observe.analysis import EventStream, diff_traces


def events_a():
    return [
        Fault(time=0, unit=1),
        Place(time=1, unit=1, where=0),
        Fault(time=4, unit=2),
        Evict(time=5, unit=1),
    ]


class TestIdentical:
    def test_same_list_twice(self):
        diff = diff_traces(events_a(), events_a())
        assert diff.identical
        assert diff.divergence_index is None
        assert diff.common_prefix == 4
        assert diff.deltas == {"evict": 0, "fault": 0, "place": 0}

    def test_empty_vs_empty(self):
        diff = diff_traces([], [])
        assert diff.identical
        assert diff.common_prefix == 0

    def test_jsonl_round_trip_diffs_clean(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            tracer = Tracer([sink])
            for event in events_a():
                tracer.emit(event)
        diff = diff_traces(events_a(), EventStream(path))
        assert diff.identical


class TestDivergence:
    def test_field_level_difference_located(self):
        changed = events_a()
        changed[2] = Fault(time=4, unit=9)    # same kind, different unit
        diff = diff_traces(events_a(), changed)
        assert not diff.identical
        assert diff.divergence_index == 2
        assert diff.common_prefix == 2
        assert diff.a_at_divergence.unit == 2
        assert diff.b_at_divergence.unit == 9

    def test_short_trace_diverges_where_it_ends(self):
        diff = diff_traces(events_a(), events_a()[:2])
        assert diff.divergence_index == 2
        assert diff.a_at_divergence is not None
        assert diff.b_at_divergence is None

    def test_empty_vs_nonempty(self):
        diff = diff_traces([], events_a())
        assert diff.divergence_index == 0
        assert diff.a_at_divergence is None

    def test_counts_complete_past_divergence(self):
        """Per-kind tallies cover whole traces, not just the prefix."""
        diff = diff_traces(events_a(), events_a()[:1])
        assert diff.counts_a == {"fault": 2, "place": 1, "evict": 1}
        assert diff.counts_b == {"fault": 1}
        assert diff.deltas == {"evict": -1, "fault": -1, "place": -1}

    def test_events_counted_on_both_sides(self):
        diff = diff_traces(events_a(), events_a()[:3])
        assert diff.a_events == 4
        assert diff.b_events == 3
