"""Tests for the two-ends placement strategy."""

import pytest

from repro.alloc import TwoEndsAllocator
from repro.errors import InvalidFree, OutOfMemory
from repro.alloc.base import Allocation


class TestPlacement:
    def test_small_from_bottom(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        assert allocator.allocate(10).address == 0
        assert allocator.allocate(10).address == 10

    def test_large_from_top(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        assert allocator.allocate(200).address == 800
        assert allocator.allocate(100).address == 700

    def test_threshold_boundary_counts_as_large(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        assert allocator.allocate(100).address == 900

    def test_ends_meet(self):
        allocator = TwoEndsAllocator(100, size_threshold=50)
        allocator.allocate(40)     # bottom: 0..40
        allocator.allocate(50)     # top: 50..100
        allocator.allocate(10)     # exactly fills the gap
        with pytest.raises(OutOfMemory):
            allocator.allocate(1)

    def test_crossing_request_fails(self):
        allocator = TwoEndsAllocator(100, size_threshold=50)
        allocator.allocate(40)
        allocator.allocate(50)
        with pytest.raises(OutOfMemory):
            allocator.allocate(20)


class TestLowBookkeeping:
    def test_bump_allocations_need_no_search(self):
        """The paper's 'less bookkeeping' claim, measured."""
        allocator = TwoEndsAllocator(10_000, size_threshold=100)
        for _ in range(20):
            allocator.allocate(10)
            allocator.allocate(200)
        assert allocator.counters.search_steps == 0

    def test_reuse_searches_only_own_end(self):
        allocator = TwoEndsAllocator(10_000, size_threshold=100)
        small = allocator.allocate(10)
        allocator.allocate(10)
        allocator.free(small)
        allocator.allocate(5)   # one step over the small reuse list
        assert allocator.counters.search_steps == 1


class TestFreeAndReuse:
    def test_bottom_pointer_retreats(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        a = allocator.allocate(10)
        b = allocator.allocate(10)
        allocator.free(b)
        allocator.free(a)
        # Whole bottom reclaimed: next small allocation starts at 0.
        assert allocator.allocate(10).address == 0

    def test_top_pointer_retreats(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        a = allocator.allocate(200)
        b = allocator.allocate(200)
        allocator.free(b)
        allocator.free(a)
        assert allocator.allocate(300).address == 700

    def test_freed_small_hole_is_reused(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        a = allocator.allocate(10)
        allocator.allocate(10)
        allocator.free(a)
        assert allocator.allocate(10).address == 0

    def test_freed_large_hole_is_reused(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        a = allocator.allocate(200)
        allocator.allocate(200)
        allocator.free(a)
        assert allocator.allocate(150).address == 800

    def test_double_free_rejected(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        a = allocator.allocate(10)
        allocator.free(a)
        with pytest.raises(InvalidFree):
            allocator.free(a)

    def test_unknown_free_rejected(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        with pytest.raises(InvalidFree):
            allocator.free(Allocation(3, 4))


class TestInspection:
    def test_holes_include_central_gap(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        allocator.allocate(100)   # large -> top (900)
        allocator.allocate(10)    # small -> bottom
        assert (10, 890) in allocator.holes()

    def test_accounting(self):
        allocator = TwoEndsAllocator(1000, size_threshold=100)
        allocator.allocate(10)
        allocator.allocate(200)
        assert allocator.used_words == 210
        assert allocator.free_words == 790

    def test_construction_validation(self):
        with pytest.raises(ValueError):
            TwoEndsAllocator(0, size_threshold=10)
        with pytest.raises(ValueError):
            TwoEndsAllocator(100, size_threshold=0)
