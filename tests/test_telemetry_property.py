"""Property tests: merge algebra and quantile error bounds of the sketches.

Two families of properties, both over seeded random streams:

- **Merge algebra.**  ``LogHistogram.merge`` must be associative and
  commutative *bit for bit* when the observations are integers — any
  split of a stream across workers, merged in any order or grouping,
  reproduces the single-stream sketch exactly.  This is the property
  the sweep engine's worker-count determinism rests on, so it is pinned
  here in isolation, away from the sweep machinery.
- **Error bounds.**  ``LogHistogram.quantile`` must land within the
  advertised ``1 / subbuckets`` relative error of the exact
  nearest-rank answer for every stream up to 10k samples; ``P2Quantile``
  has no hard bound (five markers are a lossy summary) so it gets a
  loose empirical corridor on smooth distributions.
"""

import random

import pytest

from repro.observe.analysis.intervals import percentile as nearest_rank
from repro.observe.telemetry.sketch import LogHistogram, P2Quantile


def integer_stream(seed, length, high=2**20):
    rng = random.Random(seed)
    kind = rng.choice(("uniform", "heavy_tail", "clustered", "sparse"))
    if kind == "uniform":
        return [rng.randrange(0, high) for _ in range(length)]
    if kind == "heavy_tail":
        return [int(rng.paretovariate(1.2)) for _ in range(length)]
    if kind == "clustered":
        centers = [rng.randrange(1, high) for _ in range(3)]
        return [max(0, rng.choice(centers) + rng.randrange(-5, 6))
                for _ in range(length)]
    return [rng.choice((0, 1, high - 1)) for _ in range(length)]


def split(values, parts, seed):
    rng = random.Random(seed)
    shards = [[] for _ in range(parts)]
    for value in values:
        shards[rng.randrange(parts)].append(value)
    return shards


def sketch_of(values):
    sketch = LogHistogram()
    sketch.observe_many(values)
    return sketch


class TestMergeAlgebra:
    @pytest.mark.parametrize("seed", range(20))
    def test_any_split_reproduces_the_single_stream(self, seed):
        values = integer_stream(seed, length=500)
        whole = sketch_of(values)
        parts = split(values, parts=2 + seed % 4, seed=seed + 100)
        merged = LogHistogram()
        for part in parts:
            merged.merge(sketch_of(part))
        assert merged.to_dict() == whole.to_dict()

    @pytest.mark.parametrize("seed", range(10))
    def test_commutative(self, seed):
        values = integer_stream(seed, length=400)
        left_values, right_values = split(values, parts=2, seed=seed + 7)
        ab = sketch_of(left_values)
        ab.merge(sketch_of(right_values))
        ba = sketch_of(right_values)
        ba.merge(sketch_of(left_values))
        assert ab.to_dict() == ba.to_dict()

    @pytest.mark.parametrize("seed", range(10))
    def test_associative(self, seed):
        values = integer_stream(seed, length=600)
        a, b, c = split(values, parts=3, seed=seed + 13)
        left_first = sketch_of(a)
        left_first.merge(sketch_of(b))
        left_first.merge(sketch_of(c))
        right_first = sketch_of(b)
        right_first.merge(sketch_of(c))
        pre = sketch_of(a)
        pre.merge(right_first)
        assert left_first.to_dict() == pre.to_dict()

    def test_merge_tree_matches_flat_fold(self):
        """Pairwise tree reduction == left fold — any fan-in topology."""
        values = integer_stream(42, length=1_000)
        shards = [sketch_of(part) for part in split(values, 8, seed=3)]
        flat = LogHistogram()
        for shard in shards:
            flat.merge(LogHistogram.from_dict(shard.to_dict()))
        while len(shards) > 1:
            paired = []
            for index in range(0, len(shards), 2):
                left = shards[index]
                if index + 1 < len(shards):
                    left.merge(shards[index + 1])
                paired.append(left)
            shards = paired
        assert shards[0].to_dict() == flat.to_dict()


class TestQuantileErrorBound:
    @pytest.mark.parametrize("seed", range(15))
    @pytest.mark.parametrize("length", (10, 100, 1_000, 10_000))
    def test_relative_error_within_bound(self, seed, length):
        values = integer_stream(seed * 31 + length, length)
        sketch = sketch_of(values)
        ordered = sorted(values)
        for q in (0.01, 0.25, 0.5, 0.9, 0.99, 1.0):
            exact = nearest_rank(ordered, q * 100)
            estimate = sketch.quantile(q)
            if exact == 0:
                assert estimate == 0
            else:
                error = abs(estimate - exact) / exact
                assert error <= sketch.relative_error_bound + 1e-9, (
                    f"q={q} exact={exact} estimate={estimate} seed={seed}"
                )

    @pytest.mark.parametrize("seed", range(5))
    def test_float_streams_obey_the_same_bound(self, seed):
        rng = random.Random(seed)
        values = [rng.lognormvariate(0.0, 2.0) for _ in range(2_000)]
        sketch = sketch_of(values)
        ordered = sorted(values)
        for q in (0.5, 0.9, 0.99):
            exact = nearest_rank(ordered, q * 100)
            error = abs(sketch.quantile(q) - exact) / exact
            assert error <= sketch.relative_error_bound + 1e-9

    def test_finer_subbuckets_tighten_the_bound(self):
        values = integer_stream(7, length=5_000)
        coarse = LogHistogram(subbuckets=4)
        fine = LogHistogram(subbuckets=64)
        for sketch in (coarse, fine):
            sketch.observe_many(values)
        exact = nearest_rank(sorted(values), 90)
        fine_error = abs(fine.quantile(0.9) - exact) / exact
        assert fine_error <= fine.relative_error_bound + 1e-9
        assert fine.relative_error_bound < coarse.relative_error_bound


class TestP2Corridor:
    @pytest.mark.parametrize("seed", range(5))
    def test_median_estimate_on_smooth_streams(self, seed):
        rng = random.Random(seed)
        values = [rng.uniform(0, 1000) for _ in range(5_000)]
        sketch = P2Quantile(0.5)
        for value in values:
            sketch.observe(value)
        exact = nearest_rank(sorted(values), 50)
        assert abs(sketch.value() - exact) / exact < 0.15

    @pytest.mark.parametrize("seed", range(5))
    def test_merge_stays_in_corridor(self, seed):
        rng = random.Random(seed + 50)
        values = [rng.uniform(0, 1000) for _ in range(4_000)]
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for index, value in enumerate(values):
            (left if index % 2 else right).observe(value)
        left.merge(right)
        exact = nearest_rank(sorted(values), 50)
        assert abs(left.value() - exact) / exact < 0.25
