"""Fuzzing the serving ledger through the invariant engine.

Three attack surfaces, all seeded and deterministic:

- Random multi-tenant walks (acquire / release / write / fork) with
  :class:`~repro.check.invariants.RefCountConservation` run every few
  operations — the conservation law must hold at every reachable state.
- Deliberate corruptions of every bookkeeping structure (refcounter,
  evictor, free list, view maps) — each must be *detected*; a checker
  that never fires proves nothing.
- Fault injection under the pager: with a flaky backing store behind a
  bounded retry loop, a multi-tenant run must finish with stats
  bit-identical to the fault-free run and a clean ledger — transient
  device failures may cost retries, never references.
"""

import random

import pytest

from repro.addressing import PageTable
from repro.check import (
    FaultPlan,
    FlakyBackingStore,
    RetryPolicy,
    RetryingBackingStore,
    check_invariants,
)
from repro.check.invariants import InvariantSuite, RefCountConservation
from repro.clock import Clock
from repro.errors import InvariantViolation, OutOfMemory
from repro.memory import BackingStore, StorageLevel
from repro.paging import DemandPager, LruPolicy
from repro.paging.replacement import make_policy
from repro.serve import SharedFramePool, TenantView, simulate_shared
from repro.workload.reference import phased_trace

SEEDS = (0, 1, 2, 3, 4)


def fuzz_walk(seed, steps=400, frames=12, pages=16, shared_pages=8):
    """Random tenant ops with the conservation law checked as we go."""
    rng = random.Random(f"serve-fuzz:{seed}")
    suite = InvariantSuite()
    pool = SharedFramePool(frames)
    views = [TenantView(pool, "t0", quota=6, shared_pages=shared_pages)]
    performed = {"acquire": 0, "release": 0, "write": 0, "fork": 0, "oom": 0}
    for step in range(steps):
        view = rng.choice(views)
        roll = rng.random()
        if roll < 0.45:
            page = rng.randrange(pages)
            if page not in view and not view.is_full():
                try:
                    view.acquire(page)
                    performed["acquire"] += 1
                except OutOfMemory:
                    performed["oom"] += 1
        elif roll < 0.75:
            resident = view.resident_pages()
            if resident:
                view.release(rng.choice(resident))
                performed["release"] += 1
        elif roll < 0.95:
            resident = view.resident_pages()
            if resident:
                try:
                    view.note_write(rng.choice(resident))
                    performed["write"] += 1
                except OutOfMemory:
                    # A CoW break needs a frame of its own; a pinned-full
                    # pool refusing one is part of the contract.
                    performed["oom"] += 1
        elif len(views) < 4:
            views.append(view.fork(f"t{len(views)}"))
            performed["fork"] += 1
        if step % 8 == 0:
            suite.check_all([pool, *views])
    suite.check_all([pool, *views])
    return pool, views, performed


@pytest.mark.parametrize("seed", SEEDS)
def test_conservation_holds_through_random_walks(seed):
    pool, views, performed = fuzz_walk(seed)
    # The walk genuinely exercised the tier: every op kind happened.
    assert performed["acquire"] > 20
    assert performed["release"] > 10
    assert performed["write"] > 5
    assert performed["fork"] >= 1
    assert sum(view.resident_count for view in views) == pool.ref_total


@pytest.mark.parametrize("seed", SEEDS)
def test_checked_shared_replay_is_clean(seed):
    traces = [
        list(phased_trace(pages=24, length=200, working_set=5,
                          phase_length=40, locality=0.9, seed=seed * 10 + t))
        for t in range(3)
    ]
    result = simulate_shared(
        traces, 6, lambda _index: make_policy("lru"),
        shared_pages=12, checked=True,
    )
    assert result.shares + result.dedup_hits > 0


class TestCorruptionsAreDetected:
    """Every ledger structure, when tampered with, must trip the check."""

    def healthy(self):
        pool = SharedFramePool(6)
        a = TenantView(pool, "a", quota=4, shared_pages=4)
        b = a.fork("b")
        a.acquire(0)
        b.acquire(0)
        a.acquire(5)
        b.acquire(1)
        b.release(1)
        check_invariants(pool)   # sanity: clean before tampering
        return pool, a, b

    def expect_violation(self, pool, match=None):
        with pytest.raises(InvariantViolation, match=match):
            check_invariants(pool)

    def test_phantom_reference(self):
        pool, a, b = self.healthy()
        pool._refs.incr(("shared", 0))
        self.expect_violation(pool, "views hold 2 references")

    def test_leaked_reference(self):
        pool, a, b = self.healthy()
        pool._refs.decr(("shared", 0))
        self.expect_violation(pool, "views hold 2 references")

    def test_resident_content_marked_cached(self):
        pool, a, b = self.healthy()
        pool._evictor.add(("a", 5), pool.frame_of(("a", 5)), freed_at=99)
        self.expect_violation(pool)

    def test_pinned_frame_on_free_list(self):
        pool, a, b = self.healthy()
        pool._free.append(pool.frame_of(("shared", 0)))
        self.expect_violation(pool, "partition broken")

    def test_view_remapped_behind_the_pool(self):
        pool, a, b = self.healthy()
        a._frame_of[5] = (a._frame_of[5] + 1) % pool.frame_count
        self.expect_violation(pool, "maps page")

    def test_view_holding_unreferenced_page(self):
        pool, a, b = self.healthy()
        b._frame_of[1] = 0                 # resurrect the released page
        b._key_of[1] = b.key_for(1)
        b._page_of_key[b.key_for(1)] = 1
        self.expect_violation(pool)

    def test_refcount_conservation_applies_only_to_pools(self):
        invariant = RefCountConservation()
        assert invariant.applies(SharedFramePool(2))
        assert not invariant.applies(object())


def paged_tenant_run(plan=None, seed=3, length=250):
    """Two forked tenants under pagers; optionally a flaky drum."""
    rng = random.Random(f"serve-inject:{seed}")
    pool = SharedFramePool(8)
    clock = Clock()
    stats = []
    views = [
        TenantView(pool, "a", quota=4, shared_pages=16),
        TenantView(pool, "b", quota=4, shared_pages=16),
    ]
    pagers = []
    for view in views:
        backing = BackingStore(
            StorageLevel("drum", 10**7, access_time=200, transfer_rate=1.0),
            clock=clock,
        )
        if plan is not None:
            backing = RetryingBackingStore(
                FlakyBackingStore(backing, plan),
                RetryPolicy(max_attempts=4),
            )
        pagers.append(DemandPager(
            PageTable(page_size=128, pages=32), view, backing,
            LruPolicy(), clock,
        ))
    for _ in range(length):
        index = rng.randrange(2)
        page = rng.randrange(24)
        write = rng.random() < 0.15
        pagers[index].access_page(page, write=write)
    check_invariants([pool, *views])
    for pager in pagers:
        stats.append(pager.stats)
    return pool, stats


def test_recovered_faults_leave_stats_bit_identical():
    _, clean = paged_tenant_run(plan=None)
    plan = FaultPlan(7, fetch_rate=0.2, store_rate=0.2, max_consecutive=2)
    pool, flaky = paged_tenant_run(plan=plan)
    assert plan.total_injected > 0          # faults really were injected
    assert flaky == clean                   # ...and absorbed invisibly
    check_invariants(pool)
