"""Dashboard rendering and the top / metrics-export CLIs."""

import io
import json

import pytest

from repro.observe.telemetry.cli import (
    demo_registry,
    load_snapshot,
    run_metrics_export,
    run_top,
)
from repro.observe.telemetry.dashboard import (
    LiveRenderer,
    SweepLiveView,
    histogram_rows,
    render_snapshot,
)
from repro.observe.telemetry.exposition import validate_openmetrics
from repro.observe.telemetry.registry import TelemetryRegistry


def filled_registry():
    registry = TelemetryRegistry()
    registry.counter("replay.faults").increment(9)
    registry.gauge("pool.resident").set(4)
    registry.histogram("replay.fault_gap").observe_many([1, 2, 2, 50])
    return registry


class TestRendering:
    def test_histogram_rows_summarize_each_sketch(self):
        rows = histogram_rows(filled_registry().snapshot())
        assert len(rows) == 1
        name, count, mean, p50, p90, p99, maximum, shape = rows[0]
        assert name == "replay.fault_gap"
        assert count == 4
        assert maximum == 50
        assert p50 <= p90 <= p99
        assert shape      # the sparkline silhouette is non-empty

    def test_empty_sketch_renders_a_zero_row(self):
        registry = TelemetryRegistry()
        registry.histogram("quiet")
        rows = histogram_rows(registry.snapshot())
        assert rows == [("quiet", 0, 0.0, 0.0, 0.0, 0.0, 0.0, "")]

    def test_render_snapshot_has_all_sections(self):
        frame = render_snapshot(filled_registry().snapshot(), title="t")
        assert "replay.faults" in frame
        assert "pool.resident (gauge)" in frame
        assert "replay.fault_gap" in frame
        assert "distributions" in frame

    def test_render_empty_registry_degrades_gracefully(self):
        frame = render_snapshot(TelemetryRegistry().snapshot())
        assert "no instruments registered" in frame


class TestLiveRenderer:
    def test_non_tty_appends_with_separators(self):
        out = io.StringIO()
        renderer = LiveRenderer(stream=out)
        assert renderer.ansi is False
        renderer.render("frame one")
        renderer.render("frame two")
        text = out.getvalue()
        assert "frame one" in text and "frame two" in text
        assert "-" * 64 in text
        assert "\x1b[" not in text

    def test_forced_ansi_clears_between_frames(self):
        out = io.StringIO()
        renderer = LiveRenderer(stream=out, ansi=True)
        renderer.render("frame")
        assert out.getvalue().startswith(LiveRenderer.CLEAR)


class TestSweepLiveView:
    def view(self):
        clock = iter(range(100)).__next__
        return SweepLiveView("demo-grid",
                             renderer=LiveRenderer(stream=io.StringIO()),
                             clock=lambda: float(clock()))

    def shard_record(self, shard="m/lru/0", faults=3):
        worker = TelemetryRegistry()
        worker.histogram("replay.fault_gap").observe_many([1, 2, 4])
        return {
            "shard": shard,
            "fault_rate": 0.25,
            "counters": {"replay.references": 400},
            "telemetry": worker.snapshot(),
        }

    def test_update_accumulates_and_renders(self):
        view = self.view()
        view.update(1, 4, self.shard_record("a"))
        view.update(2, 4, self.shard_record("b"))
        assert view.references == 800
        assert view.failed == 0
        assert view.telemetry.histogram_sketch("replay.fault_gap").count == 6
        frame = view.frame(2, 4)
        assert "demo-grid" in frame
        assert "2/4" in frame
        assert "fault rate" in frame
        assert "merged shard telemetry" in frame

    def test_failed_shards_are_counted_not_merged(self):
        view = self.view()
        view.update(1, 2, {"shard": "bad", "error": "boom"})
        assert view.failed == 1
        assert view.references == 0
        assert "(FAILED)" in view.last_shard

    def test_records_without_telemetry_still_render(self):
        view = self.view()
        view.update(1, 1, {"shard": "plain", "fault_rate": 0.1,
                           "counters": {"replay.references": 10}})
        assert view.references == 10


class TestTopCli:
    def test_once_renders_demo_frame(self):
        out = io.StringIO()
        assert run_top(["--once"], stream=out) == 0
        text = out.getvalue()
        assert "telemetry (demo workload)" in text
        assert "replay.references" in text

    def test_demo_is_deterministic_apart_from_wall_time(self):
        first = demo_registry(seed=7).deterministic_snapshot()
        second = demo_registry(seed=7).deterministic_snapshot()
        assert first == second

    def test_snapshot_file_rendered_with_header(self, tmp_path):
        heartbeat = tmp_path / "results.telemetry.json"
        heartbeat.write_text(json.dumps({
            "sweep": "demo",
            "done": 3,
            "total": 8,
            "telemetry": filled_registry().snapshot(),
        }))
        out = io.StringIO()
        assert run_top(["--once", "--snapshot", str(heartbeat)],
                       stream=out) == 0
        text = out.getvalue()
        assert "done=3" in text and "total=8" in text
        assert "replay.fault_gap" in text

    def test_iterations_limit_stops_the_follow_loop(self, tmp_path):
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps(filled_registry().snapshot()))
        out = io.StringIO()
        assert run_top(["--snapshot", str(snapshot), "--iterations", "2",
                        "--interval", "0"], stream=out) == 0
        assert out.getvalue().count("replay.fault_gap") == 2

    def test_missing_snapshot_file_is_a_clean_error(self, tmp_path, capsys):
        missing = tmp_path / "nope.json"
        assert run_top(["--once", "--snapshot", str(missing)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_non_object_snapshot_rejected(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("[1, 2]")
        assert run_top(["--once", "--snapshot", str(bad)]) == 2
        assert "JSON object" in capsys.readouterr().err


class TestMetricsExportCli:
    def test_demo_export_is_valid_openmetrics(self):
        out = io.StringIO()
        assert run_metrics_export([], stream=out) == 0
        families = validate_openmetrics(out.getvalue())
        assert any(name.startswith("repro_replay") for name in families)

    def test_snapshot_file_export(self, tmp_path):
        snapshot = tmp_path / "snap.json"
        snapshot.write_text(json.dumps(filled_registry().snapshot()))
        out = io.StringIO()
        assert run_metrics_export(["--snapshot", str(snapshot)],
                                  stream=out) == 0
        families = validate_openmetrics(out.getvalue())
        assert "repro_replay_faults" in families

    def test_output_file_written(self, tmp_path):
        target = tmp_path / "metrics.txt"
        assert run_metrics_export(["--output", str(target)]) == 0
        validate_openmetrics(target.read_text())

    def test_missing_snapshot_is_a_clean_error(self, tmp_path, capsys):
        assert run_metrics_export(
            ["--snapshot", str(tmp_path / "gone.json")]
        ) == 2
        assert "error:" in capsys.readouterr().err


class TestLoadSnapshot:
    def test_bare_snapshot_has_no_header(self, tmp_path):
        path = tmp_path / "snap.json"
        path.write_text(json.dumps(filled_registry().snapshot()))
        snapshot, header = load_snapshot(str(path))
        assert header == {}
        assert "counters" in snapshot

    def test_heartbeat_scalars_become_the_header(self, tmp_path):
        path = tmp_path / "hb.json"
        path.write_text(json.dumps({
            "sweep": "g", "done": 1, "total": 2, "failed": 0,
            "telemetry": filled_registry().snapshot(),
        }))
        snapshot, header = load_snapshot(str(path))
        assert header == {"sweep": "g", "done": 1, "total": 2, "failed": 0}
        assert "counters" in snapshot


class TestPackageCliRouting:
    def test_top_routes_through_python_m_repro(self, capsys):
        from repro.__main__ import main

        assert main(["top", "--once"]) == 0
        assert "telemetry (demo workload)" in capsys.readouterr().out

    def test_metrics_export_routes_through_python_m_repro(self, capsys):
        from repro.__main__ import main

        assert main(["metrics-export"]) == 0
        validate_openmetrics(capsys.readouterr().out)
