"""Tests for the backing store."""

import pytest

from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel


def make_store(capacity=10_000, latency=100, clock=None):
    level = StorageLevel("drum", capacity, access_time=latency, transfer_rate=1.0)
    return BackingStore(level, clock=clock)


class TestStoreFetch:
    def test_roundtrip(self):
        store = make_store()
        store.store("page-1", [1, 2, 3])
        image, _ = store.fetch("page-1")
        assert image == [1, 2, 3]

    def test_fetch_returns_copy(self):
        store = make_store()
        store.store("page-1", [1, 2, 3])
        image, _ = store.fetch("page-1")
        image[0] = 99
        assert store.fetch("page-1")[0] == [1, 2, 3]

    def test_store_copies_input(self):
        store = make_store()
        data = [1, 2, 3]
        store.store("k", data)
        data[0] = 99
        assert store.fetch("k")[0] == [1, 2, 3]

    def test_fetch_missing_raises(self):
        with pytest.raises(KeyError):
            make_store().fetch("absent")

    def test_image_survives_fetch(self):
        store = make_store()
        store.store("k", [5])
        store.fetch("k")
        assert "k" in store

    def test_overwrite_replaces_image(self):
        store = make_store()
        store.store("k", [1, 2])
        store.store("k", [3])
        assert store.fetch("k")[0] == [3]
        assert store.used_words == 1

    def test_capacity_enforced(self):
        store = make_store(capacity=10)
        store.store("a", [0] * 6)
        with pytest.raises(ValueError):
            store.store("b", [0] * 6)

    def test_overwrite_frees_old_space_for_capacity_check(self):
        store = make_store(capacity=10)
        store.store("a", [0] * 8)
        store.store("a", [0] * 10)  # fine: replaces the old 8
        assert store.used_words == 10


class TestTiming:
    def test_store_charges_transfer_time(self):
        clock = Clock()
        store = make_store(latency=100, clock=clock)
        cycles = store.store("k", [0] * 50)
        assert cycles == 150
        assert clock.now == 150

    def test_fetch_charges_transfer_time(self):
        clock = Clock()
        store = make_store(latency=100, clock=clock)
        store.store("k", [0] * 50)
        clock.reset()
        _, cycles = store.fetch("k")
        assert cycles == 150
        assert clock.now == 150


class TestBookkeeping:
    def test_counters(self):
        store = make_store()
        store.store("a", [1, 2])
        store.store("b", [3])
        store.fetch("a")
        assert store.stores == 2
        assert store.fetches == 1
        assert store.words_out == 3
        assert store.words_in == 2

    def test_discard(self):
        store = make_store()
        store.store("k", [1])
        store.discard("k")
        assert "k" not in store

    def test_discard_missing_is_noop(self):
        make_store().discard("absent")

    def test_keys_and_len(self):
        store = make_store()
        store.store("a", [1])
        store.store("b", [2])
        assert store.keys() == {"a", "b"}
        assert len(store) == 2

    def test_used_words(self):
        store = make_store()
        store.store("a", [1, 2, 3])
        store.store("b", [4])
        assert store.used_words == 4
