"""Tests for the composed storage-allocation systems and the builder."""

from itertools import product

import pytest

from repro.advice import keep_resident, will_need, wont_need
from repro.core import (
    AllocationUnit,
    Contiguity,
    NameSpaceKind,
    PredictiveInformation,
    SystemCharacteristics,
    SystemConfig,
    build_system,
    recommended_characteristics,
    recommended_system,
)
from repro.core.hybrid import HybridSegmentedSystem
from repro.core.linear_systems import PagedLinearSystem, ResidentLinearSystem
from repro.core.segmented_systems import (
    PagedSegmentedSystem,
    SegmentedResidentSystem,
)
from repro.errors import ConfigurationError, OutOfMemory


def small_config(**overrides):
    defaults = dict(capacity_words=8_192, page_size=256, backing_latency=100)
    defaults.update(overrides)
    return SystemConfig(**defaults)


class TestBuilder:
    def test_every_valid_combination_builds_and_runs(self):
        for ns, pi, ct, au in product(
            NameSpaceKind, PredictiveInformation, Contiguity, AllocationUnit
        ):
            characteristics = SystemCharacteristics(ns, pi, ct, au)
            if au is AllocationUnit.UNIFORM and ct is Contiguity.REAL:
                with pytest.raises(ConfigurationError):
                    build_system(characteristics, small_config())
                continue
            system = build_system(characteristics, small_config())
            assert system.characteristics == characteristics
            system.create("unit", 300)
            system.access("unit", 150)
            stats = system.stats()
            assert stats.accesses == 1

    def test_builder_routes_to_expected_classes(self):
        cases = [
            (NameSpaceKind.LINEAR, Contiguity.ARTIFICIAL,
             AllocationUnit.UNIFORM, PagedLinearSystem),
            (NameSpaceKind.LINEAR, Contiguity.REAL,
             AllocationUnit.NONUNIFORM, ResidentLinearSystem),
            (NameSpaceKind.LINEARLY_SEGMENTED, Contiguity.ARTIFICIAL,
             AllocationUnit.UNIFORM, PagedSegmentedSystem),
            (NameSpaceKind.SYMBOLICALLY_SEGMENTED, Contiguity.REAL,
             AllocationUnit.NONUNIFORM, SegmentedResidentSystem),
            (NameSpaceKind.SYMBOLICALLY_SEGMENTED, Contiguity.ARTIFICIAL,
             AllocationUnit.NONUNIFORM, HybridSegmentedSystem),
        ]
        for ns, ct, au, expected in cases:
            system = build_system(
                SystemCharacteristics(ns, PredictiveInformation.NONE, ct, au),
                small_config(),
            )
            assert isinstance(system, expected), (ns, ct, au)

    def test_advice_refused_when_not_composed_in(self):
        system = build_system(
            SystemCharacteristics(
                NameSpaceKind.LINEAR, PredictiveInformation.NONE,
                Contiguity.ARTIFICIAL, AllocationUnit.UNIFORM,
            ),
            small_config(),
        )
        system.create("u", 100)
        with pytest.raises(ConfigurationError):
            system.advise(will_need("u"))


class TestPagedLinearSystem:
    def build(self, advice=False):
        ch = SystemCharacteristics(
            NameSpaceKind.LINEAR,
            PredictiveInformation.ACCEPTED if advice
            else PredictiveInformation.NONE,
            Contiguity.ARTIFICIAL,
            AllocationUnit.UNIFORM,
        )
        return build_system(ch, small_config())

    def test_virtual_storage_larger_than_core(self):
        system = self.build()
        system.create("huge", 100_000)     # far beyond 8192 words of core
        system.access("huge", 99_999)
        assert system.stats().faults == 1

    def test_faults_then_hits(self):
        system = self.build()
        system.create("u", 100)
        system.access("u", 0)
        system.access("u", 50)
        stats = system.stats()
        assert stats.faults == 1 and stats.accesses == 2

    def test_internal_waste_measured(self):
        system = self.build()
        system.create("odd", 300)   # spans 2 x 256-word pages = 512
        assert system.stats().internal_waste_words == 212

    def test_destroy_releases_names(self):
        system = self.build()
        system.create("a", 100)
        system.destroy("a")
        system.create("b", 100)   # reuses the freed names

    def test_advice_fans_out_to_pages(self):
        system = self.build(advice=True)
        system.create("u", 600)   # pages 0..2
        system.advise(will_need("u"))
        system.access("u", 0)
        system.access("u", 300)
        system.access("u", 599)
        assert system.stats().faults == 0

    def test_keep_resident_protects_under_pressure(self):
        system = self.build(advice=True)
        system.create("pinned", 256)
        system.access("pinned", 0)
        system.advise(keep_resident("pinned"))
        system.create("churn", 100_000)
        for offset in range(0, 100_000, 256):
            system.access("churn", offset)
        faults_before = system.stats().faults
        system.access("pinned", 0)
        assert system.stats().faults == faults_before

    def test_advice_about_unknown_unit_ignored(self):
        system = self.build(advice=True)
        system.advise(wont_need("ghost"))


class TestResidentLinearSystem:
    def test_fragmentation_blocks_without_artificial_contiguity(self):
        system = ResidentLinearSystem(100, contiguity=Contiguity.REAL)
        for index in range(10):
            system.create(index, 10)
        for index in range(0, 10, 2):
            system.destroy(index)
        with pytest.raises(OutOfMemory):
            system.create("wide", 30)

    def test_artificial_contiguity_compacts(self):
        system = ResidentLinearSystem(100, contiguity=Contiguity.ARTIFICIAL)
        for index in range(10):
            system.create(index, 10)
        for index in range(0, 10, 2):
            system.destroy(index)
        system.create("wide", 30)
        assert system.compactions == 1
        assert system.words_moved == 50

    def test_relocated_units_still_accessible(self):
        system = ResidentLinearSystem(100, contiguity=Contiguity.ARTIFICIAL)
        for index in range(10):
            system.create(index, 10)
        for index in range(0, 10, 2):
            system.destroy(index)
        system.create("wide", 30)
        for survivor in range(1, 10, 2):
            system.access(survivor, 5)

    def test_access_bound_checked(self):
        system = ResidentLinearSystem(100)
        system.create("u", 10)
        with pytest.raises(IndexError):
            system.access("u", 10)

    def test_duplicate_create(self):
        system = ResidentLinearSystem(100)
        system.create("u", 10)
        with pytest.raises(ValueError):
            system.create("u", 10)

    def test_destroy_unknown(self):
        with pytest.raises(KeyError):
            ResidentLinearSystem(100).destroy("ghost")

    def test_stats_shape(self):
        system = ResidentLinearSystem(100)
        system.create("u", 40)
        system.access("u", 0)
        stats = system.stats()
        assert stats.utilization == 0.4
        assert stats.faults == 0


class TestSegmentedResidentSystem:
    def build(self, ns=NameSpaceKind.SYMBOLICALLY_SEGMENTED, advice=False):
        ch = SystemCharacteristics(
            ns,
            PredictiveInformation.ACCEPTED if advice
            else PredictiveInformation.NONE,
            Contiguity.REAL,
            AllocationUnit.NONUNIFORM,
        )
        return build_system(ch, small_config())

    def test_segment_fetch_and_replace(self):
        system = self.build()
        for index in range(4):
            system.create(f"s{index}", 3_000)
        for index in range(4):
            system.access(f"s{index}", 0)
        stats = system.stats()
        assert stats.faults == 4
        assert stats.external_fragmentation >= 0.0

    def test_resize(self):
        system = self.build()
        system.create("s", 100)
        system.access("s", 0)
        system.resize("s", 200)
        system.access("s", 150)

    def test_advice_locks_segments(self):
        system = self.build(advice=True)
        system.create("pinned", 3_000)
        system.access("pinned", 0)
        system.advise(keep_resident("pinned"))
        for index in range(6):
            system.create(f"filler{index}", 3_000)
            system.access(f"filler{index}", 0)
        faults = system.stats().faults
        system.access("pinned", 1)
        assert system.stats().faults == faults

    def test_will_need_prefetches_segment(self):
        system = self.build(advice=True)
        system.create("s", 500)
        system.advise(will_need("s"))
        system.access("s", 0)
        assert system.stats().faults == 0

    def test_linearly_segmented_naming_bookkeeping_counted(self):
        system = self.build(ns=NameSpaceKind.LINEARLY_SEGMENTED)
        for index in range(5):
            system.create(f"s{index}", 100)
        assert system.naming.bookkeeping_steps > 0

    def test_artificial_contiguity_forces_compaction_on(self):
        ch = SystemCharacteristics(
            NameSpaceKind.LINEARLY_SEGMENTED,
            PredictiveInformation.NONE,
            Contiguity.ARTIFICIAL,
            AllocationUnit.NONUNIFORM,
        )
        system = build_system(ch, small_config())
        assert system.manager.compact_before_replacing


class TestPagedSegmentedSystem:
    def build(self, advice=False, tlb=0):
        ch = SystemCharacteristics(
            NameSpaceKind.LINEARLY_SEGMENTED,
            PredictiveInformation.ACCEPTED if advice
            else PredictiveInformation.NONE,
            Contiguity.ARTIFICIAL,
            AllocationUnit.UNIFORM,
        )
        return build_system(
            ch, small_config(associative_memory_size=tlb)
        )

    def test_two_level_walk_cost(self):
        system = self.build()
        system.create("s", 1_000)
        system.access("s", 0)
        before = system.stats().mapping_cycles
        system.access("s", 1)
        # A resident access pays the full two-reference walk (no TLB).
        assert system.stats().mapping_cycles - before == 2

    def test_tlb_removes_walks(self):
        system = self.build(tlb=8)
        system.create("s", 1_000)
        system.access("s", 0)
        for _ in range(9):
            system.access("s", 1)
        stats = system.stats()
        assert stats.associative_hit_rate > 0.8
        assert stats.mapping_cycles <= 4

    def test_internal_waste(self):
        system = self.build()
        system.create("s", 300)   # two 256-word pages
        assert system.stats().internal_waste_words == 212

    def test_destroy_releases_frames(self):
        system = self.build()
        system.create("s", 300)
        system.access("s", 0)
        resident_before = system.pager.frames.resident_count
        system.destroy("s")
        assert system.pager.frames.resident_count < resident_before

    def test_wont_need_advice(self):
        system = self.build(advice=True)
        system.create("a", 256)
        system.create("b", 256)
        system.access("a", 0)
        system.access("b", 0)
        system.advise(wont_need("a"))
        # Fill the pool; 'a' should go first.
        system.create("c", 100_000)
        offset = 0
        while ("a", 0) if False else True:
            system.access("c", offset)
            offset += 256
            if offset > 8_192:
                break
        key_a = system.naming.key("a")
        assert (key_a, 0) not in system.pager.frames


class TestRecommendedSystem:
    def test_characteristics(self):
        ch = recommended_characteristics()
        assert ch.name_space is NameSpaceKind.SYMBOLICALLY_SEGMENTED
        assert ch.predictive_information is PredictiveInformation.ACCEPTED
        assert ch.contiguity is Contiguity.ARTIFICIAL
        assert ch.allocation_unit is AllocationUnit.NONUNIFORM
        ch.validate()

    def test_small_segments_avoid_page_mapping(self):
        system = recommended_system()
        system.create("small", 200)
        system.access("small", 0)
        system.access("small", 100)
        # Only descriptor references, no two-level walk:
        assert system.mapper.mapping_cycles_total == 0

    def test_large_segments_are_paged(self):
        system = recommended_system()
        system.create("large", 50_000)
        system.access("large", 49_999)
        assert system.mapper.mapping_cycles_total >= 0
        assert ("large" in system.mapper.segments())

    def test_threshold_routing(self):
        system = recommended_system()
        system.create("at-threshold", 1024)
        system.create("over-threshold", 1025)
        assert system._side["at-threshold"] == "small"
        assert system._side["over-threshold"] == "large"

    def test_resize_across_threshold_migrates(self):
        system = recommended_system()
        system.create("s", 500)
        system.access("s", 0)
        system.resize("s", 5_000)
        assert system._side["s"] == "large"
        system.access("s", 4_999)

    def test_advice_on_both_sides(self):
        system = recommended_system()
        system.create("small", 200)
        system.create("large", 10_000)
        system.advise(will_need("small"))
        system.access("small", 0)
        assert system.small.stats.segment_faults == 0
        system.access("large", 0)
        system.advise(keep_resident("large"))
        system.advise(wont_need("small"))

    def test_stats_merge_both_sides(self):
        system = recommended_system()
        system.create("small", 200)
        system.create("large", 10_000)
        system.access("small", 0)
        system.access("large", 0)
        stats = system.stats()
        assert stats.accesses == 2
        assert stats.faults == 2
