"""Unit tests for the size-class hole index behind ``indexed=True``.

The linear free list's behaviour is pinned by ``test_alloc_freelist``;
here we pin the index itself — coalescing, bin migration, tie-breaks,
and the ``examined`` counts that feed ``search_steps`` accounting.
"""

from __future__ import annotations

import random

import pytest

from repro.fastpath.holes import HoleIndex


def make_index(*holes: tuple[int, int]) -> HoleIndex:
    index = HoleIndex()
    for address, size in holes:
        index.insert(address, size)
    index.check_invariants()
    return index


class TestInsertCoalesce:
    def test_disjoint_holes_stay_separate(self):
        index = make_index((0, 10), (20, 10))
        assert index.holes_sorted() == [(0, 10), (20, 10)]
        assert len(index) == 2
        assert index.free_words == 20

    def test_merge_with_predecessor(self):
        index = make_index((0, 10))
        index.insert(10, 5)
        assert index.holes_sorted() == [(0, 15)]
        index.check_invariants()

    def test_merge_with_successor(self):
        index = make_index((10, 5))
        index.insert(0, 10)
        assert index.holes_sorted() == [(0, 15)]
        index.check_invariants()

    def test_merge_bridges_both_sides(self):
        index = make_index((0, 10), (15, 10))
        index.insert(10, 5)
        assert index.holes_sorted() == [(0, 25)]
        assert len(index) == 1
        index.check_invariants()

    def test_merge_migrates_size_class(self):
        # Two class-2 holes (sizes 4..7) merge into a class-3 hole: the
        # merged extent must be findable at its NEW class, and the old
        # fragments must be gone from the old one.
        index = make_index((0, 6), (6, 6))
        assert index.holes_sorted() == [(0, 12)]
        found = index.find_best(9)
        assert found is not None and found[:2] == (0, 12)
        assert index.largest_hole == 12
        index.check_invariants()


class TestTake:
    def test_take_whole_hole(self):
        index = make_index((0, 10), (20, 10))
        index.take(20, 10)
        assert index.holes_sorted() == [(0, 10)]
        index.check_invariants()

    def test_take_prefix_leaves_remainder(self):
        index = make_index((0, 16))
        index.take(0, 5)
        assert index.holes_sorted() == [(5, 11)]
        index.check_invariants()

    def test_remainder_changes_size_class(self):
        index = make_index((0, 16))   # class 4
        index.take(0, 13)             # remainder 3: class 1
        assert index.holes_sorted() == [(13, 3)]
        assert index.find_first(4) is None
        found = index.find_first(3)
        assert found is not None and found[:2] == (13, 3)
        index.check_invariants()

    def test_remainder_does_not_coalesce_forward(self):
        # take() splits in place; the remainder abuts nothing new.
        index = make_index((0, 10), (10, 10))   # coalesces to (0, 20)
        index.take(0, 7)
        assert index.holes_sorted() == [(7, 13)]
        index.check_invariants()


class TestFinders:
    def test_first_fit_is_lowest_address(self):
        index = make_index((40, 8), (0, 8), (20, 8))
        found = index.find_first(5)
        assert found is not None and found[:2] == (0, 8)

    def test_best_fit_prefers_tightest(self):
        index = make_index((0, 50), (60, 7), (70, 9))
        found = index.find_best(6)
        assert found is not None and found[:2] == (60, 7)

    def test_best_fit_tie_breaks_lowest_address(self):
        index = make_index((30, 8), (0, 8), (15, 8))
        found = index.find_best(8)
        assert found is not None and found[:2] == (0, 8)

    def test_worst_fit_tie_breaks_lowest_address(self):
        index = make_index((30, 8), (0, 8), (15, 4))
        found = index.find_worst(2)
        assert found is not None and found[:2] == (0, 8)

    def test_finders_return_none_when_nothing_fits(self):
        index = make_index((0, 4), (10, 4))
        assert index.find_first(5) is None
        assert index.find_best(5) is None
        assert index.find_worst(5) is None

    def test_examined_counts_are_positive_and_bounded(self):
        index = make_index((0, 4), (10, 8), (30, 8), (50, 64))
        for finder in (index.find_first, index.find_best, index.find_worst):
            found = finder(5)
            assert found is not None
            examined = found[2]
            assert 1 <= examined <= len(index)

    def test_best_fit_skips_undersized_bins(self):
        # A thousand tiny holes must not be examined when asking for a
        # large block — that is the whole point of the index.
        index = HoleIndex()
        for i in range(1000):
            index.insert(i * 2, 1)
        index.insert(5000, 512)
        found = index.find_best(100)
        assert found is not None and found[:2] == (5000, 512)
        assert found[2] < 10


class TestMaintenance:
    def test_clear(self):
        index = make_index((0, 10), (20, 10))
        index.clear()
        assert len(index) == 0
        assert index.free_words == 0
        assert index.largest_hole == 0
        assert index.find_first(1) is None
        index.check_invariants()

    def test_check_invariants_catches_corruption(self):
        index = make_index((0, 10))
        index._size_at[0] = 99   # lie about the size; bins now disagree
        with pytest.raises(AssertionError):
            index.check_invariants()

    def test_randomized_churn_matches_brute_force(self):
        rng = random.Random(1967)
        index = HoleIndex()
        shadow: dict[int, int] = {}

        def shadow_insert(address: int, size: int) -> None:
            follower = address + size
            if follower in shadow:
                size += shadow.pop(follower)
            for start, extent in list(shadow.items()):
                if start + extent == address:
                    shadow.pop(start)
                    address, size = start, extent + size
                    break
            shadow[address] = size

        cursor = 0
        for _ in range(500):
            if shadow and rng.random() < 0.5:
                start = rng.choice(list(shadow))
                extent = shadow.pop(start)
                cut = rng.randint(1, extent)
                index.take(start, cut)
                if cut < extent:
                    shadow[start + cut] = extent - cut
            else:
                size = rng.randint(1, 40)
                index.insert(cursor, size)
                shadow_insert(cursor, size)
                cursor += size + rng.randint(1, 20)
            index.check_invariants()
            assert index.holes_sorted() == sorted(shadow.items())
