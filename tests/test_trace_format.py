"""The binary trace file format: round-trips, streaming, and rejection.

Spec in ``docs/TRACE_FORMAT.md``.  The invariants pinned here:

- whatever :class:`TraceWriter` writes, :func:`read_trace` reads back
  identically — for every column combination, chunking, and with either
  the mmap or the in-memory reader;
- a damaged file (bad magic, unknown version, undeclared flags, short or
  oversized payload, interrupted write) is *rejected*, never silently
  misread;
- the writer is transactional: abort (explicit or via an exception in
  the context manager) leaves no file behind.
"""

from __future__ import annotations

import struct

import pytest

from repro.errors import ReproError
from repro.trace import (
    ColumnarTrace,
    TraceFormatError,
    TraceWriter,
    is_trace_file,
    load,
    read_trace,
    write_trace,
)
from repro.trace.format import HEADER_SIZE, MAGIC, VERSION
from repro.workload import phased_trace, save_trace


COLUMN_COMBOS = [
    dict(writes=False, segments=False),
    dict(writes=True, segments=False),
    dict(writes=False, segments=True),
    dict(writes=True, segments=True),
]


def _sample_columns(n: int, seed: int = 0):
    pages = [(seed * 13 + i * 7) % 97 for i in range(n)]
    writes = [i % 3 == 0 for i in range(n)]
    segments = [p // 16 for p in pages]
    return pages, writes, segments


class TestRoundTrip:
    @pytest.mark.parametrize("combo", COLUMN_COMBOS)
    @pytest.mark.parametrize("use_mmap", [True, False])
    @pytest.mark.parametrize("chunks", [1, 3, 17])
    def test_writer_reader_round_trip(self, tmp_path, combo, use_mmap, chunks):
        pages, writes, segments = _sample_columns(230)
        path = tmp_path / "trace.rtrc"
        step = max(1, len(pages) // chunks)
        with TraceWriter(path, **combo) as writer:
            for start in range(0, len(pages), step):
                stop = start + step
                writer.append(
                    pages[start:stop],
                    writes=writes[start:stop] if combo["writes"] else None,
                    segments=segments[start:stop] if combo["segments"] else None,
                )
        trace = read_trace(path, use_mmap=use_mmap)
        try:
            assert len(trace) == len(pages)
            assert list(trace.pages) == pages
            if combo["segments"]:
                assert list(trace.segments) == segments
                assert list(trace) == list(zip(segments, pages))
            else:
                assert trace.segments is None
                assert list(trace) == pages
            if combo["writes"]:
                assert trace.write_flags() == writes
            else:
                assert trace.writes is None
            # Spans come from the header: no scan needed, but identical
            # to a fresh scan.
            cached = trace.cached_spans()
            assert cached is not None
            assert cached == trace.spans()
            assert cached[0] == max(pages) + 1
        finally:
            trace.close()

    def test_write_trace_one_shot(self, tmp_path):
        trace = phased_trace(40, 1500, seed=2)
        path = write_trace(tmp_path / "one.rtrc", trace)
        back = read_trace(path)
        assert back == trace.as_list()
        back.close()

    def test_empty_trace_round_trips(self, tmp_path):
        path = write_trace(tmp_path / "empty.rtrc", [])
        trace = read_trace(path)
        assert len(trace) == 0
        assert trace.spans() == (0, 0)
        trace.close()

    def test_trace_to_file_method(self, tmp_path):
        trace = phased_trace(30, 800, seed=9)
        path = trace.to_file(tmp_path / "via-method.rtrc")
        assert is_trace_file(path)
        back = read_trace(path)
        assert back == trace.as_list()
        back.close()

    def test_mmap_and_memory_readers_agree(self, tmp_path):
        pages, writes, segments = _sample_columns(500, seed=4)
        path = tmp_path / "both.rtrc"
        with TraceWriter(path, writes=True, segments=True) as writer:
            writer.append(pages, writes=writes, segments=segments)
        mapped = read_trace(path, use_mmap=True)
        in_memory = read_trace(path, use_mmap=False)
        try:
            assert mapped == in_memory
            assert mapped.write_flags() == in_memory.write_flags()
            assert mapped.spans() == in_memory.spans()
        finally:
            mapped.close()
            in_memory.close()


class TestRejection:
    @pytest.fixture
    def valid(self, tmp_path):
        pages, writes, segments = _sample_columns(64)
        path = tmp_path / "valid.rtrc"
        with TraceWriter(path, writes=True, segments=True) as writer:
            writer.append(pages, writes=writes, segments=segments)
        return path

    def _mutated(self, tmp_path, raw: bytes):
        path = tmp_path / "mutated.rtrc"
        path.write_bytes(raw)
        return path

    def test_bad_magic(self, tmp_path, valid):
        raw = valid.read_bytes()
        bad = self._mutated(tmp_path, b"NOPE" + raw[4:])
        with pytest.raises(TraceFormatError, match="magic"):
            read_trace(bad)
        assert not is_trace_file(bad)

    def test_unknown_version(self, tmp_path, valid):
        raw = valid.read_bytes()
        bad = self._mutated(
            tmp_path,
            raw[:4] + struct.pack("<H", VERSION + 1) + raw[6:],
        )
        with pytest.raises(TraceFormatError, match="version"):
            read_trace(bad)

    def test_unknown_flags(self, tmp_path, valid):
        raw = valid.read_bytes()
        bad = self._mutated(tmp_path, raw[:6] + b"\xff\xff" + raw[8:])
        with pytest.raises(TraceFormatError, match="flag"):
            read_trace(bad)

    def test_truncated_payload(self, tmp_path, valid):
        raw = valid.read_bytes()
        bad = self._mutated(tmp_path, raw[:-8])
        with pytest.raises(TraceFormatError, match="bytes"):
            read_trace(bad)

    def test_oversized_payload(self, tmp_path, valid):
        raw = valid.read_bytes()
        bad = self._mutated(tmp_path, raw + b"\x00" * 16)
        with pytest.raises(TraceFormatError, match="bytes"):
            read_trace(bad)

    def test_truncated_header(self, tmp_path):
        bad = self._mutated(tmp_path, MAGIC + b"\x00" * 4)
        assert len(bad.read_bytes()) < HEADER_SIZE
        with pytest.raises(TraceFormatError):
            read_trace(bad)

    def test_interrupted_write_is_unreadable(self, tmp_path):
        # A crash mid-write leaves the placeholder count; the reader must
        # refuse rather than return garbage.
        path = tmp_path / "crashed.rtrc"
        writer = TraceWriter(path)
        writer.append([1, 2, 3])
        writer._file.flush()
        raw = path.read_bytes()
        writer.abort()
        crashed = self._mutated(tmp_path, raw)
        with pytest.raises(TraceFormatError):
            read_trace(crashed)

    def test_errors_are_repro_errors(self, tmp_path):
        assert issubclass(TraceFormatError, ReproError)
        bad = self._mutated(tmp_path, b"junk")
        with pytest.raises(ReproError):
            read_trace(bad)


class TestWriterContract:
    def test_abort_removes_partial_file(self, tmp_path):
        path = tmp_path / "gone.rtrc"
        writer = TraceWriter(path, writes=True, segments=True)
        writer.append([1, 2], writes=[0, 1], segments=[0, 0])
        writer.abort()
        assert not path.exists()

    def test_context_manager_aborts_on_exception(self, tmp_path):
        path = tmp_path / "boom.rtrc"
        with pytest.raises(RuntimeError, match="boom"):
            with TraceWriter(path) as writer:
                writer.append([1, 2, 3])
                raise RuntimeError("boom")
        assert not path.exists()
        assert not list(tmp_path.iterdir())   # no spool files either

    def test_append_after_close_rejected(self, tmp_path):
        path = tmp_path / "closed.rtrc"
        writer = TraceWriter(path)
        writer.append([1])
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append([2])

    def test_misaligned_columns_rejected(self, tmp_path):
        path = tmp_path / "skew.rtrc"
        with TraceWriter(path, writes=True) as writer:
            with pytest.raises(ValueError, match="writes"):
                writer.append([1, 2, 3], writes=[1])
            writer.append([1, 2, 3], writes=[1, 0, 1])

    def test_undeclared_column_rejected(self, tmp_path):
        path = tmp_path / "undeclared.rtrc"
        with TraceWriter(path) as writer:
            with pytest.raises(ValueError, match="not opened with"):
                writer.append([1], writes=[1])
            writer.append([1])

    def test_declared_column_required(self, tmp_path):
        path = tmp_path / "missing.rtrc"
        with TraceWriter(path, segments=True) as writer:
            with pytest.raises(ValueError, match="segments"):
                writer.append([1, 2])
            writer.append([1, 2], segments=[0, 1])

    def test_negative_ids_rejected(self, tmp_path):
        path = tmp_path / "negative.rtrc"
        with TraceWriter(path) as writer:
            with pytest.raises(ValueError, match="negative"):
                writer.append([3, -1])
            writer.append([3, 1])


class TestLoadDispatch:
    def test_load_reads_binary(self, tmp_path):
        trace = phased_trace(20, 400, seed=1)
        path = write_trace(tmp_path / "bin.rtrc", trace)
        loaded = load(path)
        assert loaded == trace.as_list()
        loaded.close()

    def test_load_falls_back_to_legacy_text(self, tmp_path):
        trace = phased_trace(20, 200, seed=1)
        path = tmp_path / "legacy.trace"
        save_trace(path, trace)
        loaded = load(path)
        assert list(loaded) == trace.as_list()
