"""Interval spans and nearest-rank percentile summaries."""

import pytest

from repro.observe.analysis import (
    IntervalSummary,
    Span,
    percentile,
    summarize_spans,
)


class TestSpan:
    def test_closed_duration(self):
        assert Span("a", 3, 10).duration() == 7

    def test_open_measures_to_at(self):
        span = Span("a", 3)
        assert span.open
        assert span.duration(at=10) == 7

    def test_open_without_at_rejected(self):
        with pytest.raises(ValueError, match="open span"):
            Span("a", 3).duration()

    def test_open_duration_clamps_at_zero(self):
        # A span opened by the trace's final event has no visible extent.
        assert Span("a", 9).duration(at=5) == 0


class TestPercentile:
    def test_nearest_rank(self):
        values = [1, 2, 3, 4]
        assert percentile(values, 50) == 2
        assert percentile(values, 75) == 3
        assert percentile(values, 100) == 4

    def test_low_ranks_floor_at_first_value(self):
        assert percentile([5, 9], 0) == 5
        assert percentile([5, 9], 1) == 5

    def test_single_value(self):
        assert percentile([7], 50) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="0..100"):
            percentile([1], 101)


class TestSummarizeSpans:
    def test_mixed_open_and_closed(self):
        spans = [Span("a", 0, 4), Span("b", 2, 10), Span("c", 5, None)]
        summary = summarize_spans(spans, end_time=9)
        assert summary.count == 3
        assert summary.open_count == 1
        assert summary.minimum == 4
        assert summary.maximum == 8
        assert summary.mean == pytest.approx((4 + 8 + 4) / 3)
        assert summary.percentiles[50] == 4

    def test_empty_input_zeroed(self):
        summary = summarize_spans([], end_time=100)
        assert summary == IntervalSummary(
            count=0, open_count=0, mean=0.0, minimum=0, maximum=0,
            percentiles={50: 0, 90: 0, 99: 0},
        )

    def test_custom_ranks(self):
        summary = summarize_spans([Span("a", 0, 10)], end_time=10,
                                  ranks=(25, 75))
        assert set(summary.percentiles) == {25, 75}


class TestBlockLifetimeAddressReuse:
    """Regression: Place events used to carry the address as the unit,
    so lifetimes of successive blocks at a reused address collapsed."""

    def test_reused_address_yields_distinct_spans(self):
        from repro.alloc import FreeListAllocator
        from repro.observe.analysis import TraceAnalyzer
        from repro.observe.tracer import Tracer

        analyzer = TraceAnalyzer(window=4)
        allocator = FreeListAllocator(64, tracer=Tracer([analyzer]))
        first = allocator.allocate(16)      # block id 0 at address 0
        allocator.free(first)
        second = allocator.allocate(16)     # block id 1, same address
        allocator.free(second)
        assert first.address == second.address == 0

        analytics = analyzer.finish()
        spans = analytics.block_lifetimes
        assert len(spans) == 2
        assert [span.unit for span in spans] == [0, 1]
        assert all(not span.open for span in spans)
        assert analytics.unmatched_frees == 0

    def test_interleaved_reuse_keeps_sizes_attributed(self):
        from repro.alloc import FreeListAllocator
        from repro.observe.analysis import TraceAnalyzer
        from repro.observe.tracer import Tracer

        analyzer = TraceAnalyzer(window=4)
        allocator = FreeListAllocator(64, tracer=Tracer([analyzer]))
        a = allocator.allocate(8)
        b = allocator.allocate(8)
        allocator.free(a)
        c = allocator.allocate(4)           # reuses a's address
        allocator.free(b)
        allocator.free(c)
        analytics = analyzer.finish()
        by_unit = {span.unit: span for span in analytics.block_lifetimes}
        assert set(by_unit) == {0, 1, 2}
        assert by_unit[0].size == 8 and by_unit[2].size == 4
        assert c.address == a.address
