"""Interval spans and nearest-rank percentile summaries."""

import pytest

from repro.observe.analysis import (
    IntervalSummary,
    Span,
    percentile,
    summarize_spans,
)


class TestSpan:
    def test_closed_duration(self):
        assert Span("a", 3, 10).duration() == 7

    def test_open_measures_to_at(self):
        span = Span("a", 3)
        assert span.open
        assert span.duration(at=10) == 7

    def test_open_without_at_rejected(self):
        with pytest.raises(ValueError, match="open span"):
            Span("a", 3).duration()

    def test_open_duration_clamps_at_zero(self):
        # A span opened by the trace's final event has no visible extent.
        assert Span("a", 9).duration(at=5) == 0


class TestPercentile:
    def test_nearest_rank(self):
        values = [1, 2, 3, 4]
        assert percentile(values, 50) == 2
        assert percentile(values, 75) == 3
        assert percentile(values, 100) == 4

    def test_low_ranks_floor_at_first_value(self):
        assert percentile([5, 9], 0) == 5
        assert percentile([5, 9], 1) == 5

    def test_single_value(self):
        assert percentile([7], 50) == 7

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError, match="0..100"):
            percentile([1], 101)


class TestSummarizeSpans:
    def test_mixed_open_and_closed(self):
        spans = [Span("a", 0, 4), Span("b", 2, 10), Span("c", 5, None)]
        summary = summarize_spans(spans, end_time=9)
        assert summary.count == 3
        assert summary.open_count == 1
        assert summary.minimum == 4
        assert summary.maximum == 8
        assert summary.mean == pytest.approx((4 + 8 + 4) / 3)
        assert summary.percentiles[50] == 4

    def test_empty_input_zeroed(self):
        summary = summarize_spans([], end_time=100)
        assert summary == IntervalSummary(
            count=0, open_count=0, mean=0.0, minimum=0, maximum=0,
            percentiles={50: 0, 90: 0, 99: 0},
        )

    def test_custom_ranks(self):
        summary = summarize_spans([Span("a", 0, 10)], end_time=10,
                                  ranks=(25, 75))
        assert set(summary.percentiles) == {25, 75}
