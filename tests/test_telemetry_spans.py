"""Span timing brackets: fake clocks, nesting, error paths, null form."""

import pytest

from repro.observe.telemetry.sketch import LogHistogram
from repro.observe.telemetry.spans import NULL_SPAN, Span


class FakeClock:
    """A clock the test advances by hand."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


@pytest.fixture()
def clock():
    return FakeClock()


@pytest.fixture()
def span(clock):
    return Span(LogHistogram(), clock=clock)


class TestSpan:
    def test_with_block_records_exact_duration(self, span, clock):
        with span:
            clock.now = 7.0
        assert span.histogram.count == 1
        assert span.histogram.maximum == 7.0

    def test_start_stop_returns_duration(self, span, clock):
        span.start()
        clock.now = 3.0
        assert span.stop() == 3.0

    def test_reuse_accumulates_samples(self, span, clock):
        for duration in (1.0, 2.0, 4.0):
            span.start()
            clock.now += duration
            span.stop()
        assert span.histogram.count == 3
        assert span.histogram.total == 7.0

    def test_nesting_is_innermost_first(self, span, clock):
        span.start()            # outer, opens at 0
        clock.now = 1.0
        span.start()            # inner, opens at 1
        clock.now = 2.0
        assert span.stop() == 1.0
        clock.now = 5.0
        assert span.stop() == 5.0
        assert span.histogram.count == 2

    def test_stop_without_start_raises(self, span):
        with pytest.raises(RuntimeError, match="without a matching"):
            span.stop()

    def test_abandon_discards_the_open_bracket(self, span, clock):
        span.start()
        clock.now = 9.0
        span.abandon()
        assert span.histogram.count == 0
        span.abandon()          # idempotent on an empty span

    def test_nonmonotonic_clock_clamps_to_zero(self, span, clock):
        span.start()
        clock.now = -5.0
        assert span.stop() == 0.0
        assert span.histogram.maximum == 0.0

    def test_exception_paths_still_record(self, span, clock):
        with pytest.raises(RuntimeError):
            with span:
                clock.now = 2.0
                raise RuntimeError("boom")
        assert span.histogram.count == 1
        assert span.histogram.maximum == 2.0

    def test_timed_returns_the_result(self, span, clock):
        def work(x):
            clock.now = 4.0
            return x * 2

        assert span.timed(work, 21) == 42
        assert span.histogram.maximum == 4.0

    def test_timed_records_on_raise(self, span, clock):
        def explode():
            clock.now = 1.0
            raise ValueError("no")

        with pytest.raises(ValueError):
            span.timed(explode)
        assert span.histogram.count == 1

    def test_default_clock_is_wall_time(self):
        span = Span(LogHistogram())
        with span:
            pass
        assert span.histogram.count == 1
        assert span.histogram.minimum >= 0


class TestNullSpan:
    def test_supports_the_full_protocol(self):
        with NULL_SPAN:
            pass
        assert NULL_SPAN.start() is NULL_SPAN
        assert NULL_SPAN.stop() == 0.0
        NULL_SPAN.abandon()

    def test_timed_passes_through(self):
        assert NULL_SPAN.timed(lambda x: x + 1, 1) == 2

    def test_is_falsy_for_hot_path_guards(self):
        assert not NULL_SPAN
        assert bool(Span(LogHistogram()))
