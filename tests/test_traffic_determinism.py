"""Bit-identity of traffic campaigns: seeds, workers, resume."""

import json

from repro.traffic.engine import (
    build_points,
    compare_campaigns,
    read_traffic_results,
    run_campaign,
    strip_nondeterministic,
)

SEEDS_100 = tuple(range(100))


def hundred_points(**overrides):
    """100 seeds of one very small load point (~milliseconds each)."""
    sizing = dict(pool_frames=16, quotas=(3, 4), pages=24,
                  session_length=32, shared_pages=8, horizon=48)
    sizing.update(overrides)
    return build_points(loads=(1.2,), seeds=SEEDS_100, **sizing)


class TestHundredSeeds:
    def test_workers_1_and_4_are_bit_identical(self):
        """The acceptance criterion, at campaign scale: 100 seeds run
        serially and run over 4 forked workers yield the same stripped
        records and the same merged deterministic telemetry."""
        points = hundred_points()
        serial = run_campaign(points, workers=1)
        pooled = run_campaign(points, workers=4)
        assert serial.ok and pooled.ok
        assert len(serial.records) == len(pooled.records) == 100
        assert [strip_nondeterministic(r) for r in serial.records] == \
            [strip_nondeterministic(r) for r in pooled.records]
        assert serial.telemetry.deterministic_snapshot() == \
            pooled.telemetry.deterministic_snapshot()

    def test_seeds_actually_vary_the_answer(self):
        """100 identical answers would also pass bit-identity; pin that
        the seed axis is live."""
        records = run_campaign(hundred_points(), workers=4).records
        assert len({r["refs"] for r in records}) > 10
        assert len({r["arrivals"] for r in records}) > 10

    def test_resume_executes_nothing_and_merges_everything(self, tmp_path):
        path = tmp_path / "results.jsonl"
        points = hundred_points()
        first = run_campaign(points, workers=4, results_path=path)
        resumed = run_campaign(points, workers=4, results_path=path,
                               resume=True)
        assert first.ok and resumed.ok
        assert resumed.executed == 0
        assert resumed.skipped == 100
        assert [strip_nondeterministic(r) for r in resumed.records] == \
            [strip_nondeterministic(r) for r in first.records]
        assert resumed.telemetry.deterministic_snapshot() == \
            first.telemetry.deterministic_snapshot()

    def test_partial_resume_finishes_the_campaign(self, tmp_path):
        path = tmp_path / "results.jsonl"
        points = hundred_points()
        run_campaign(points[:40], workers=4, results_path=path)
        finished = run_campaign(points, workers=4, results_path=path,
                                resume=True)
        assert finished.executed == 60
        assert finished.skipped == 40
        assert len(finished.records) == 100
        # The stitched-together campaign matches a clean one bit for bit.
        clean = run_campaign(points, workers=1)
        assert compare_campaigns(clean.records, finished.records) == []

    def test_compare_campaigns_spots_a_tampered_record(self, tmp_path):
        path = tmp_path / "results.jsonl"
        points = hundred_points()[:5]
        run_campaign(points, workers=1, results_path=path)
        records, corrupt = read_traffic_results(path)
        assert corrupt == 0 and len(records) == 5
        records[2] = {**records[2], "refs": records[2]["refs"] + 1}
        fresh = run_campaign(points, workers=1)
        assert compare_campaigns(fresh.records, records) == \
            [records[2]["point"]]

    def test_damaged_checkpoint_lines_are_counted(self, tmp_path):
        path = tmp_path / "results.jsonl"
        points = hundred_points()[:3]
        run_campaign(points, workers=1, results_path=path)
        with open(path, "a", encoding="utf-8") as handle:
            handle.write("torn {\n")
        resumed = run_campaign(points, workers=1, results_path=path,
                               resume=True)
        assert resumed.corrupt_lines == 1
        assert resumed.executed == 0

    def test_checkpoint_lines_are_sorted_json(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_campaign(hundred_points()[:2], workers=1, results_path=path)
        for line in path.read_text().splitlines():
            record = json.loads(line)
            assert list(record) == sorted(record)
