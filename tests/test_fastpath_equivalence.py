"""Differential tests: fastpath kernels vs. the reference implementations.

The contract (see ``repro.fastpath``) is bit-identity, not approximate
agreement: for every trace the batched kernels must produce the same
fault count, the same cold-fault count, the same fault positions, and
the same victim sequence as the per-access reference loop; the indexed
free list must hand out the same addresses and fail on the same requests
as the linear scan.  These tests sweep randomized workloads across 100+
seeds so a tie-break divergence anywhere shows up as a concrete seed.
"""

from __future__ import annotations

import random

import pytest

from repro.alloc import FreeListAllocator
from repro.errors import OutOfMemory
from repro.paging import (
    BeladyOptimalPolicy,
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    make_policy,
    simulate_trace,
)
from repro.workload import (
    exponential_requests,
    phased_trace,
    random_trace,
    request_schedule,
    zipf_trace,
)

SEEDS = range(100)

FAST_POLICIES = ("lru", "fifo", "clock", "opt")


def _make_policy(name: str, trace):
    if name == "opt":
        return BeladyOptimalPolicy(trace)
    return make_policy(name)


def _trace_for_seed(seed: int):
    """A varied workload: shape, size, and locality all depend on the seed."""
    rng = random.Random(seed)
    pages = rng.randint(4, 60)
    length = rng.randint(50, 600)
    kind = seed % 3
    if kind == 0:
        return random_trace(pages, length, seed=seed)
    if kind == 1:
        return zipf_trace(pages, length, skew=1.0 + rng.random(), seed=seed)
    return phased_trace(
        pages,
        length,
        working_set=rng.randint(2, max(2, pages // 2)),
        phase_length=rng.randint(10, 80),
        locality=0.7 + 0.25 * rng.random(),
        seed=seed,
    )


def _run_pair(name: str, trace, frames: int):
    slow = simulate_trace(
        trace,
        frames,
        _make_policy(name, trace),
        record_positions=True,
        record_evictions=True,
        fast=False,
    )
    fast = simulate_trace(
        trace,
        frames,
        _make_policy(name, trace),
        record_positions=True,
        record_evictions=True,
        fast=True,
    )
    return slow, fast


class TestReplayEquivalence:
    @pytest.mark.parametrize("name", FAST_POLICIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_across_seeds(self, name, seed):
        trace = _trace_for_seed(seed)
        frames = random.Random(seed * 31 + 7).randint(1, 24)
        slow, fast = _run_pair(name, trace, frames)
        assert fast.faults == slow.faults, f"seed={seed} frames={frames}"
        assert fast.cold_faults == slow.cold_faults
        assert fast.evictions == slow.evictions
        assert fast.fault_positions == slow.fault_positions
        assert fast.victims == slow.victims
        assert fast.references == slow.references == len(trace)
        assert fast.policy == slow.policy

    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_empty_trace(self, name):
        trace = [] if name != "opt" else []
        slow, fast = _run_pair(name, trace, 4)
        assert fast == slow

    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_single_frame_thrash(self, name):
        trace = [0, 1, 0, 1, 2, 2, 0]
        slow, fast = _run_pair(name, trace, 1)
        assert fast == slow

    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_frames_exceed_pages(self, name):
        trace = [0, 1, 2, 0, 1, 2]
        slow, fast = _run_pair(name, trace, 16)
        assert fast == slow
        assert fast.evictions == 0

    def test_fast_false_forces_reference_loop(self):
        # The reference loop mutates the policy; the kernel must not.
        trace = [0, 1, 2, 3, 0, 1]
        policy = LruPolicy()
        simulate_trace(trace, 2, policy, fast=True)
        assert policy.last_use == {}
        simulate_trace(trace, 2, policy, fast=False)
        assert policy.last_use != {}


class TestFastDispatchGuards:
    def test_subclass_falls_back(self):
        # A subclass may override choose_victim; the kernel must not claim it.
        class SpitefulLru(LruPolicy):
            def choose_victim(self, resident, now):
                return max(resident, key=lambda p: self.last_use[p])

        trace = [0, 1, 2, 0, 3, 1]
        subclassed = simulate_trace(trace, 2, SpitefulLru(), fast=True)
        reference = simulate_trace(trace, 2, SpitefulLru(), fast=False)
        assert subclassed.faults == reference.faults
        assert subclassed.victims == reference.victims == []

    def test_opt_with_wrong_trace_falls_back_and_raises(self):
        policy = BeladyOptimalPolicy([0, 1, 2])
        with pytest.raises(ValueError, match="trace mismatch"):
            simulate_trace([9, 8, 7], 2, policy, fast=True)

    def test_opt_with_advanced_cursor_falls_back(self):
        trace = [0, 1, 2, 0, 1]
        policy = BeladyOptimalPolicy(trace)
        policy.on_load(0, 0)   # cursor now 1: kernel would desynchronize
        with pytest.raises(ValueError, match="trace mismatch"):
            simulate_trace(trace, 2, policy, fast=True)

    def test_writes_forces_reference_loop(self):
        trace = [0, 1, 0, 2, 1]
        writes = [True, False, True, False, False]
        policy = LruPolicy()
        result = simulate_trace(trace, 2, policy, writes=writes, fast=True)
        # The reference loop ran: the policy saw the modified bits.
        assert policy.modified != {} or result.faults > 0
        reference = simulate_trace(
            trace, 2, LruPolicy(), writes=writes, fast=False
        )
        assert result.faults == reference.faults


def _drive(allocator: FreeListAllocator, requests):
    """(address sequence with -1 for failures, final holes) of a schedule."""
    live: dict[int, object] = {}
    addresses: list[int] = []
    for _, action, request in request_schedule(requests):
        if action == "allocate":
            try:
                allocation = allocator.allocate(request.size)
            except OutOfMemory:
                addresses.append(-1)
            else:
                live[id(request)] = allocation
                addresses.append(allocation.address)
        elif id(request) in live:
            allocator.free(live.pop(id(request)))
    allocator.check_invariants()
    return addresses, allocator.holes()


INDEXED_POLICIES = ("first_fit", "best_fit", "worst_fit")


class TestAllocatorEquivalence:
    @pytest.mark.parametrize("policy", INDEXED_POLICIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_identical_addresses_across_seeds(self, policy, seed):
        rng = random.Random(seed)
        capacity = rng.randint(2_000, 20_000)
        requests = exponential_requests(
            count=rng.randint(40, 250),
            mean_size=rng.randint(10, 200),
            mean_lifetime=rng.randint(5, 80),
            max_size=capacity // 2,
            seed=seed,
        )
        linear = FreeListAllocator(capacity, policy=policy)
        indexed = FreeListAllocator(capacity, policy=policy, indexed=True)
        linear_addresses, linear_holes = _drive(linear, requests)
        indexed_addresses, indexed_holes = _drive(indexed, requests)
        assert indexed_addresses == linear_addresses, f"seed={seed}"
        assert indexed_holes == linear_holes
        assert indexed.free_words == linear.free_words
        assert indexed.largest_hole == linear.largest_hole
        assert indexed.counters.failures == linear.counters.failures
        assert indexed.counters.words_allocated == linear.counters.words_allocated

    @pytest.mark.parametrize("policy", INDEXED_POLICIES)
    def test_exhaustion_and_reuse(self, policy):
        linear = FreeListAllocator(100, policy=policy)
        indexed = FreeListAllocator(100, policy=policy, indexed=True)
        for allocator in (linear, indexed):
            blocks = [allocator.allocate(10) for _ in range(10)]
            with pytest.raises(OutOfMemory):
                allocator.allocate(1)
            for block in blocks[::2]:
                allocator.free(block)
            allocator.check_invariants()
        assert linear.holes() == indexed.holes()
        # Refill the freed checkerboard: same addresses either way.
        assert [linear.allocate(10).address for _ in range(5)] == [
            indexed.allocate(10).address for _ in range(5)
        ]

    def test_indexed_next_fit_rejected(self):
        with pytest.raises(ValueError, match="next_fit"):
            FreeListAllocator(100, policy="next_fit", indexed=True)
