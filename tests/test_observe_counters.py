"""Counters registry: recording, null no-op mode, and the absorb adapters."""

from __future__ import annotations

import pytest

from repro.alloc import FreeListAllocator
from repro.observe import (
    NULL_COUNTERS,
    Counters,
    absorb_allocator_counters,
    absorb_associative_memory,
    absorb_pager_stats,
    absorb_spacetime,
)
from repro.sim.spacetime import SpaceTimeAccount


class TestRegistry:
    def test_increment_and_value(self):
        counters = Counters()
        counters.increment("pager.faults")
        counters.increment("pager.faults", 4)
        assert counters.value("pager.faults") == 5
        assert counters.value("never.touched") == 0

    def test_record_is_last_write_wins(self):
        counters = Counters()
        counters.record("clock.cycles", 10)
        counters.record("clock.cycles", 99)
        assert counters.value("clock.cycles") == 99

    def test_snapshot_is_sorted_and_detached(self):
        counters = Counters()
        counters.increment("b", 2)
        counters.increment("a", 1)
        snap = counters.snapshot()
        assert list(snap) == ["a", "b"]
        snap["a"] = 1000
        assert counters.value("a") == 1

    def test_timer_accumulates_under_seconds_suffix(self):
        counters = Counters()
        with counters.timer("replay"):
            pass
        with counters.timer("replay"):
            pass
        snap = counters.snapshot()
        assert "replay_seconds" in snap
        assert snap["replay_seconds"] >= 0.0

    def test_merge_sums(self):
        left, right = Counters(), Counters()
        left.increment("x", 3)
        right.increment("x", 4)
        right.increment("y", 1)
        left.merge(right)
        assert left.value("x") == 7
        assert left.value("y") == 1

    def test_merge_snapshot_round_trips(self):
        source = Counters()
        source.increment("pager.faults", 5)
        with source.timer("replay"):
            pass
        target = Counters.from_snapshot(source.snapshot())
        assert target.snapshot() == source.snapshot()


class TestMergeSnapshotValidation:
    """Malformed worker snapshots must fail loudly, not skew totals."""

    def test_non_string_name_rejected(self):
        with pytest.raises(TypeError, match="must be a str"):
            Counters().merge_snapshot({3: 1})

    def test_non_numeric_value_rejected(self):
        with pytest.raises(TypeError, match="'pager.faults'"):
            Counters().merge_snapshot({"pager.faults": "7"})

    def test_boolean_value_rejected(self):
        """bool is an int subclass; a True that slipped into a snapshot
        is a bug upstream, not a count of one."""
        with pytest.raises(TypeError, match="must be a number"):
            Counters().merge_snapshot({"flag": True})

    def test_none_value_rejected(self):
        with pytest.raises(TypeError, match="must be a number"):
            Counters().merge_snapshot({"x": None})

    def test_error_leaves_no_partial_merge_visible(self):
        counters = Counters()
        with pytest.raises(TypeError):
            counters.merge_snapshot({"good": 1, "bad": "oops"})
        # the good entry before the bad one may have landed; what must
        # NOT happen is the bad entry merging silently
        assert counters.value("bad") == 0

    def test_floats_and_ints_both_merge(self):
        counters = Counters()
        counters.merge_snapshot({"a": 2, "b_seconds": 0.5})
        counters.merge_snapshot({"a": 3, "b_seconds": 0.25})
        assert counters.value("a") == 5
        assert counters.value("b_seconds") == 0.75


class TestNullCounters:
    def test_records_nothing(self):
        NULL_COUNTERS.increment("anything", 100)
        NULL_COUNTERS.record("gauge", 5)
        with NULL_COUNTERS.timer("t"):
            pass
        assert len(NULL_COUNTERS) == 0
        assert NULL_COUNTERS.snapshot() == {}

    def test_disabled_flag_supports_hot_path_guards(self):
        assert NULL_COUNTERS.enabled is False
        assert Counters().enabled is True

    def test_merge_into_null_rejected(self):
        with pytest.raises(ValueError):
            NULL_COUNTERS.merge(Counters())


class TestAdapters:
    def test_absorb_allocator(self):
        allocator = FreeListAllocator(capacity=1024, policy="first_fit")
        block = allocator.allocate(100)
        allocator.allocate(50)
        allocator.free(block)
        counters = Counters()
        absorb_allocator_counters(counters, allocator.counters)
        assert counters.value("alloc.requests") == 2
        assert counters.value("alloc.frees") == 1
        assert counters.value("alloc.words_allocated") == 150

    def test_absorb_pager(self):
        from repro.paging.pager import PagerStats

        stats = PagerStats()
        stats.accesses = 10
        stats.faults = 3
        counters = Counters()
        absorb_pager_stats(counters, stats)
        assert counters.value("pager.accesses") == 10
        assert counters.value("pager.faults") == 3

    def test_absorb_tlb(self):
        from repro.addressing.associative import AssociativeMemory

        tlb = AssociativeMemory(2)
        tlb.insert(1, 10)
        assert tlb.lookup(1) == 10
        assert tlb.lookup(2) is None
        counters = Counters()
        absorb_associative_memory(counters, tlb)
        assert counters.value("tlb.hits") == 1
        assert counters.value("tlb.misses") == 1

    def test_absorb_spacetime_accepts_account_or_breakdown(self):
        account = SpaceTimeAccount()
        account.accumulate(words=100, duration=5, waiting=False)
        account.accumulate(words=100, duration=3, waiting=True)
        via_account, via_breakdown = Counters(), Counters()
        absorb_spacetime(via_account, account)
        absorb_spacetime(via_breakdown, account.breakdown)
        assert via_account.snapshot() == via_breakdown.snapshot()
        assert via_account.value("spacetime.active") == 500
        assert via_account.value("spacetime.waiting") == 300

    def test_adapters_merge_across_subsystems(self):
        """Dotted prefixes keep one registry per run, not per subsystem."""
        allocator = FreeListAllocator(capacity=256, policy="best_fit")
        allocator.allocate(16)
        counters = Counters()
        absorb_allocator_counters(counters, allocator.counters)
        account = SpaceTimeAccount()
        account.accumulate(words=16, duration=4, waiting=False)
        absorb_spacetime(counters, account)
        names = set(counters.snapshot())
        assert {"alloc.requests", "spacetime.active"} <= names
