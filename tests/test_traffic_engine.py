"""The open-arrival engine: conservation laws, laziness, load behavior."""

import pytest

from repro.observe.telemetry.registry import TelemetryRegistry
from repro.traffic.engine import (
    DEFAULT_LOADS,
    build_points,
    generate_sessions,
    point_id,
    run_point_safely,
    run_traffic_point,
    simulate_traffic,
)


def tiny_point(offered=1.0, seed=0, **overrides):
    """One fast point: a few dozen sessions, well under a second."""
    sizing = dict(pool_frames=24, quotas=(3, 4), pages=32,
                  session_length=48, shared_pages=8, horizon=120)
    sizing.update(overrides)
    return build_points(loads=(offered,), seeds=(seed,), **sizing)[0]


class TestBuildPoints:
    def test_default_axis_is_three_loads(self):
        points = build_points()
        assert [p["offered"] for p in points] == list(DEFAULT_LOADS)
        assert len({p["point"] for p in points}) == 3

    def test_point_id_carries_every_axis(self):
        pid = point_id(tiny_point(offered=1.5, seed=7))
        assert "offered=1.5" in pid and "seed=7" in pid
        assert "arrivals=poisson" in pid and "policy=fcfs" in pid

    def test_rate_scales_linearly_with_offered_load(self):
        half = tiny_point(offered=0.5)
        double = tiny_point(offered=2.0)
        assert double["rate"] == pytest.approx(4 * half["rate"])

    def test_unknown_axis_values_rejected(self):
        with pytest.raises(ValueError, match="arrival"):
            build_points(arrivals="sawtooth")
        with pytest.raises(ValueError, match="drain"):
            build_points(policy="priority")
        with pytest.raises(ValueError, match="overrides"):
            build_points(bogus_knob=1)
        with pytest.raises(ValueError, match="offered"):
            build_points(loads=(0.0,))


class TestSessionGeneration:
    def test_stream_is_a_pure_function_of_the_spec(self):
        spec = tiny_point()
        assert generate_sessions(spec) == generate_sessions(spec)

    def test_quotas_rotate_and_lengths_jitter(self):
        sessions = generate_sessions(tiny_point())
        assert len(sessions) > 4
        assert {s.quota for s in sessions} == {3, 4}
        assert len({s.length for s in sessions}) > 1
        assert all(s.arrival <= t.arrival
                   for s, t in zip(sessions, sessions[1:]))


class TestConservation:
    def test_every_arrival_is_accounted_for(self):
        for offered in (0.5, 1.0, 1.5):
            result = simulate_traffic(tiny_point(offered=offered))
            assert result.arrivals == result.admitted + result.shed
            assert result.completed == result.admitted

    def test_materialization_equals_admission(self):
        """Queued and shed sessions never pay for traces or views."""
        result = simulate_traffic(tiny_point(offered=1.5))
        assert result.materialized == result.admitted
        assert result.shed > 0

    def test_refs_equal_the_admitted_sessions_lengths(self):
        spec = tiny_point()
        lengths = {s.sid: s.length for s in generate_sessions(spec)}
        result = simulate_traffic(spec)
        # Every admitted session replays its full trace; with zero shed
        # the served references are exactly the arrival stream's total.
        if result.shed == 0:
            assert result.refs == sum(lengths.values())
        else:
            assert result.refs <= sum(lengths.values())

    def test_pool_is_empty_after_drain(self, monkeypatch):
        """Completion releases every page and retires every view, so
        the engine's own pool ends with zero references and zero
        registered views — the conservation ledger fully unwound."""
        from repro.serve import pool as pool_module

        captured = []
        real = pool_module.SharedFramePool

        class CapturingPool(real):
            def __init__(self, *args, **kwargs):
                super().__init__(*args, **kwargs)
                captured.append(self)

        monkeypatch.setattr(pool_module, "SharedFramePool", CapturingPool)
        result = simulate_traffic(tiny_point(offered=1.5))
        assert result.completed == result.admitted
        (pool,) = captured
        assert pool.ref_total == 0
        assert not pool._views
        pool.check_invariants()


class TestLoadBehavior:
    def test_underload_has_no_queueing(self):
        result = simulate_traffic(tiny_point(offered=0.3))
        assert result.shed == 0
        assert result.queue_wait.count == result.admitted
        assert result.queue_wait.quantile(0.99) == 0.0

    def test_overload_queues_and_sheds(self):
        calm = simulate_traffic(tiny_point(offered=0.5))
        slammed = simulate_traffic(tiny_point(offered=1.6))
        assert slammed.shed > calm.shed
        assert slammed.queue_wait.quantile(0.99) > \
            calm.queue_wait.quantile(0.99)

    def test_both_queue_reasons_fire_at_saturation(self):
        """The acceptance criterion: watermark and quota refusals both
        exercised at offered load >= 1.0."""
        result = simulate_traffic(tiny_point(offered=1.5))
        assert result.queued_watermark > 0
        assert result.queued_quota > 0

    def test_overflow_cap_sheds_instead_of_growing(self):
        capped = simulate_traffic(tiny_point(offered=2.0, max_queue=2))
        assert capped.shed_overflow > 0
        assert capped.max_queue_depth <= 2

    def test_fault_waits_grow_with_device_pressure(self):
        fast = simulate_traffic(tiny_point(fetch_time=1))
        slow = simulate_traffic(tiny_point(fetch_time=6))
        assert slow.fault_wait.quantile(0.5) > fast.fault_wait.quantile(0.5)


class TestPointRecords:
    def test_record_is_flat_and_json_safe(self):
        import json

        record = run_traffic_point(tiny_point())
        assert record["schema"] == 1
        assert record["queue_wait_p99"] >= record["queue_wait_p50"] >= 0
        assert record["fault_wait_p99"] >= record["fault_wait_p50"] > 0
        assert "traffic.refs" in record["telemetry"]["counters"]
        json.dumps(record)

    def test_telemetry_changes_no_simulation_bits(self):
        from repro.traffic.engine import strip_nondeterministic

        spec = tiny_point()
        with_telemetry = run_traffic_point(spec)
        without = run_traffic_point({**spec, "telemetry": False})
        keys = set(strip_nondeterministic(without)) - {"telemetry"}
        for key in keys:
            assert with_telemetry[key] == without[key], key

    def test_errors_become_records_not_exceptions(self):
        record = run_point_safely({"point": "broken"})
        assert record["point"] == "broken"
        assert "error" in record

    def test_telemetry_counters_match_the_result(self):
        telemetry = TelemetryRegistry()
        result = simulate_traffic(tiny_point(), telemetry=telemetry)
        snapshot = telemetry.snapshot()
        assert snapshot["counters"]["traffic.refs"] == result.refs
        assert snapshot["counters"]["traffic.admitted"] == result.admitted
        histograms = snapshot["histograms"]
        assert histograms["traffic.fault_wait"]["count"] == \
            result.fault_wait.count
