"""Finite-size-scaling fits: the power law, the grouping, the study."""

import math

import pytest

from repro.sweep.engine import run_sweep
from repro.sweep.grid import SweepGrid
from repro.sweep.scaling import (
    PowerLawFit,
    axis_means,
    finite_size_scaling,
    fit_power_law,
    scaling_rows,
)


class TestFitPowerLaw:
    def test_exact_law_recovered_exactly(self):
        # y = 80 * x ** -0.5
        xs = [4.0, 16.0, 64.0, 256.0]
        ys = [80.0 * x ** -0.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(-0.5)
        assert fit.amplitude == pytest.approx(80.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.points == 4

    def test_rising_law_has_positive_exponent(self):
        fit = fit_power_law([1, 10, 100], [2.0, 20.0, 200.0])
        assert fit.exponent == pytest.approx(1.0)

    def test_non_positive_pairs_are_excluded(self):
        fit = fit_power_law([0.0, -1.0, 10.0, 100.0],
                            [5.0, 5.0, 50.0, 5.0])
        assert fit.points == 2

    def test_too_few_positive_pairs_rejected(self):
        with pytest.raises(ValueError, match="positive pairs"):
            fit_power_law([10.0], [1.0])
        with pytest.raises(ValueError, match="positive pairs"):
            fit_power_law([10.0, 10.0], [1.0, 2.0])   # one distinct x
        with pytest.raises(ValueError, match="positive pairs"):
            fit_power_law([1.0, 2.0], [0.0, -3.0])    # all filtered

    def test_misaligned_inputs_rejected(self):
        with pytest.raises(ValueError, match="align"):
            fit_power_law([1.0, 2.0], [1.0])

    def test_constant_metric_is_a_perfect_flat_law(self):
        """All-equal y: slope 0, and r² reports 1.0 rather than 0/0."""
        fit = fit_power_law([1.0, 10.0, 100.0], [7.0, 7.0, 7.0])
        assert fit.exponent == pytest.approx(0.0)
        assert fit.amplitude == pytest.approx(7.0)
        assert fit.r_squared == 1.0

    def test_noise_lowers_r_squared(self):
        xs = [1.0, 2.0, 4.0, 8.0, 16.0]
        clean = [10.0 * x ** -1.0 for x in xs]
        noisy = [y * factor for y, factor
                 in zip(clean, [1.0, 3.0, 0.3, 3.0, 0.3])]
        assert fit_power_law(xs, noisy).r_squared \
            < fit_power_law(xs, clean).r_squared

    def test_predict_inverts_the_fit(self):
        fit = PowerLawFit(exponent=-1.0, amplitude=100.0,
                          r_squared=1.0, points=3)
        assert fit.predict(10.0) == pytest.approx(10.0)
        with pytest.raises(ValueError, match="x > 0"):
            fit.predict(0.0)


class TestAxisMeans:
    def test_groups_and_sorts_by_axis_value(self):
        records = [
            {"capacity": 200, "frag": 0.2},
            {"capacity": 100, "frag": 0.5},
            {"capacity": 100, "frag": 0.7},
        ]
        assert axis_means(records, "frag", "capacity") \
            == [(100, pytest.approx(0.6)), (200, pytest.approx(0.2))]

    def test_records_missing_either_field_are_skipped(self):
        records = [{"capacity": 100, "frag": 0.5}, {"capacity": 200},
                   {"frag": 0.9}]
        assert axis_means(records, "frag", "capacity") == [(100, 0.5)]


def synthetic_campaign():
    """Two 'machines' with known laws, two seeds of ±10% noise."""
    records = []
    for machine, amplitude, exponent in (("fast", 50.0, -1.0),
                                         ("slow", 9.0, -0.5)):
        for capacity in (1_000, 4_000, 16_000, 64_000):
            base = amplitude * capacity ** exponent
            for noise in (0.9, 1.1):
                records.append({"machine": machine, "capacity": capacity,
                                "external_frag": base * noise})
    return records


class TestFiniteSizeScaling:
    def test_recovers_each_groups_law_from_noisy_records(self):
        fits = finite_size_scaling(synthetic_campaign())
        assert set(fits) == {"fast", "slow"}
        # The ±10% noise is symmetric per capacity, so the means sit
        # on the true law and the exponents come back nearly exact.
        assert fits["fast"].exponent == pytest.approx(-1.0, abs=0.02)
        assert fits["slow"].exponent == pytest.approx(-0.5, abs=0.02)
        assert fits["fast"].points == 4

    def test_unfittable_groups_are_omitted_not_invented(self):
        records = synthetic_campaign() + [
            {"machine": "dead", "capacity": 1_000, "external_frag": 0.0},
            {"machine": "dead", "capacity": 4_000, "external_frag": 0.0},
        ]
        fits = finite_size_scaling(records)
        assert "dead" not in fits

    def test_scaling_rows_shape(self):
        rows = scaling_rows(finite_size_scaling(synthetic_campaign()))
        assert [row[0] for row in rows] == ["fast", "slow"]
        for row in rows:
            name, exponent, amplitude, r_squared, points = row
            assert points == 4 and 0.9 < r_squared <= 1.0

    def test_campaign_fragmentation_falls_with_capacity(self):
        """The §SCALE study in miniature: in the fixed-workload regime
        (capacity >= 16000 pins the request-size distribution) external
        fragmentation decays as a power of capacity."""
        grid = SweepGrid.from_dict(dict(
            name="scale-mini", machines=("baseline",),
            replacement=("lru",), placement=("first_fit",),
            frames=(8,), capacities=(32_000, 128_000), seeds=(0, 1),
            length=400, pages=32, requests=300, mean_lifetime=60,
            programs=2, program_length=200))
        result = run_sweep(grid, workers=2)
        assert result.ok
        fits = finite_size_scaling(result.records)
        assert fits["baseline"].exponent < 0
        assert fits["baseline"].points == 2
        predicted = fits["baseline"].predict(32_000)
        measured = axis_means(result.records, "external_frag",
                              "capacity")[0][1]
        assert predicted == pytest.approx(measured, rel=1e-6)
