"""The telemetry non-interference pin: observation never changes the answer.

Two contracts, both over seeded workloads:

- **On/off bit-identity.**  Running replay or shared serving with a
  live registry produces exactly the result the uninstrumented run
  produces — 100 seeds for the replay kernel, a smaller sweep for the
  heavier serving tier.  Telemetry is read-only on the simulation.
- **Worker-count invariance.**  A sweep's merged registry holds the
  same deterministic instruments whether shards ran in one process or
  several; only ``*_seconds`` wall timings may differ, and the
  deterministic snapshot strips exactly those.
"""

import pytest

from repro.observe.telemetry import TelemetryRegistry
from repro.paging.replacement import make_policy
from repro.paging.simulate import simulate_trace
from repro.serve.replay import seeded_writes, simulate_shared, tenant_traces
from repro.workload.reference import phased_trace


def replay_result(seed, telemetry=None):
    trace = phased_trace(pages=64, length=400, working_set=8,
                         phase_length=50, locality=0.9, seed=seed)
    return simulate_trace(trace, 8, make_policy("lru"),
                          telemetry=telemetry)


def serve_result(seed, telemetry=None):
    traces, shared = tenant_traces(3, pages=32, length=300, seed=seed)
    writes = [seeded_writes(len(trace), fraction=0.2, seed=seed + index)
              for index, trace in enumerate(traces)]
    return simulate_shared(traces, 8, lambda _index: make_policy("lru"),
                           shared_pages=shared, writes=writes,
                           telemetry=telemetry)


class TestOnOffBitIdentity:
    @pytest.mark.parametrize("seed", range(100))
    def test_replay_is_unchanged_by_telemetry(self, seed):
        assert replay_result(seed, TelemetryRegistry()) \
            == replay_result(seed, None)

    @pytest.mark.parametrize("seed", range(20))
    def test_shared_serving_is_unchanged_by_telemetry(self, seed):
        on = serve_result(seed, TelemetryRegistry())
        off = serve_result(seed, None)
        assert on.tenants == off.tenants
        assert on.shares == off.shares
        assert on.cow_breaks == off.cow_breaks
        assert on.pool_stats == off.pool_stats

    @pytest.mark.parametrize("seed", range(10))
    def test_disabled_registry_matches_none(self, seed):
        disabled = TelemetryRegistry(enabled=False)
        assert replay_result(seed, disabled) == replay_result(seed, None)
        assert disabled.snapshot()["counters"] == {}

    def test_telemetry_instruments_match_the_result(self):
        """The registry's counters are the result's numbers, not a
        parallel accounting that could drift."""
        telemetry = TelemetryRegistry()
        result = replay_result(1967, telemetry)
        assert telemetry.counter_value("replay.references") \
            == result.references
        assert telemetry.counter_value("replay.faults") == result.faults
        assert telemetry.counter_value("replay.evictions") \
            == result.evictions


class TestTelemetryRerunDeterminism:
    @pytest.mark.parametrize("seed", range(10))
    def test_two_instrumented_runs_agree_exactly(self, seed):
        first, second = TelemetryRegistry(), TelemetryRegistry()
        replay_result(seed, first)
        replay_result(seed, second)
        assert first.deterministic_snapshot() \
            == second.deterministic_snapshot()

    @pytest.mark.parametrize("seed", range(5))
    def test_serve_registries_agree_exactly(self, seed):
        first, second = TelemetryRegistry(), TelemetryRegistry()
        serve_result(seed, first)
        serve_result(seed, second)
        assert first.deterministic_snapshot() \
            == second.deterministic_snapshot()


class TestSweepWorkerInvariance:
    def grid(self):
        from repro.sweep.grid import SweepGrid

        return SweepGrid.from_dict(dict(
            name="tele",
            machines=("baseline",),
            replacement=("lru", "fifo"),
            placement=("first_fit",),
            frames=(8,),
            capacities=(10_000,),
            seeds=(0, 1),
            length=300,
            pages=32,
            requests=150,
            mean_lifetime=60,
            programs=2,
            program_length=150,
        ))

    def test_merged_registry_is_worker_count_invariant(self):
        from repro.sweep.engine import run_sweep

        serial = run_sweep(self.grid(), workers=1)
        pooled = run_sweep(self.grid(), workers=2)
        assert serial.telemetry.deterministic_snapshot() \
            == pooled.telemetry.deterministic_snapshot()

    def test_shard_records_strip_to_equality(self):
        from repro.sweep.engine import run_sweep, strip_nondeterministic

        serial = run_sweep(self.grid(), workers=1)
        pooled = run_sweep(self.grid(), workers=2)
        assert [strip_nondeterministic(record)
                for record in serial.records] \
            == [strip_nondeterministic(record)
                for record in pooled.records]

    def test_merged_registry_actually_carries_instruments(self):
        """Guard against vacuous invariance: the sweep really does
        populate sketches across the worker boundary."""
        from repro.sweep.engine import run_sweep

        result = run_sweep(self.grid(), workers=2)
        snapshot = result.telemetry.deterministic_snapshot()
        assert snapshot["counters"]
        assert "replay.fault_gap" in snapshot["histograms"]
        assert "alloc.request_words" in snapshot["histograms"]
