"""Tests for the ATLAS keep-one-vacant discipline."""

import pytest

from repro.addressing import PageTable
from repro.clock import Clock
from repro.machines import atlas
from repro.memory import BackingStore, StorageLevel
from repro.paging import DemandPager, FrameTable, LruPolicy


def make_pager(frames=3, keep_vacant=True, latency=500):
    clock = Clock()
    pager = DemandPager(
        PageTable(page_size=128, pages=32),
        FrameTable(frames),
        BackingStore(
            StorageLevel("drum", 10**7, access_time=latency,
                         transfer_rate=1.0),
            clock=clock,
        ),
        LruPolicy(),
        clock,
        keep_one_vacant=keep_vacant,
    )
    return pager, clock


class TestKeepOneVacant:
    def test_frame_kept_vacant_after_each_fault(self):
        pager, _ = make_pager(frames=3)
        for page in range(6):
            pager.access_page(page)
            assert pager.frames.free_count >= 1

    def test_effective_capacity_is_one_less(self):
        pager, _ = make_pager(frames=3)
        for page in (0, 1, 0, 1, 0, 1):
            pager.access_page(page)
        # Two hot pages fit in the 2 usable frames: no refaults.
        assert pager.stats.faults == 2

    def test_preevicted_dirty_writeback_is_overlapped(self):
        vacant, vacant_clock = make_pager(frames=2, keep_vacant=True)
        demand, demand_clock = make_pager(frames=2, keep_vacant=False)
        for pager in (vacant, demand):
            pager.access_page(0, write=True)
            pager.access_page(1, write=True)
            pager.access_page(2, write=True)
        # Both wrote back dirty victims...
        assert vacant.stats.writebacks >= 1
        assert demand.stats.writebacks >= 1
        # ...but only the demand pager charged it to the program.
        assert vacant.stats.writeback_cycles == 0
        assert demand.stats.writeback_cycles > 0
        assert vacant_clock.now < demand_clock.now

    def test_images_still_reach_backing(self):
        pager, _ = make_pager(frames=2)
        pager.access_page(0, write=True)
        pager.access_page(1)   # pre-evicts dirty 0
        assert ("page", 0) in pager.backing

    def test_atlas_machine_uses_it(self):
        machine = atlas()
        assert machine.system.pager.keep_one_vacant

    def test_atlas_keeps_a_frame_free_under_load(self):
        machine = atlas()
        system = machine.system
        system.create("sweep", 512 * 40)
        for page in range(40):
            system.access("sweep", page * 512)
        assert system.pager.frames.free_count >= 1
