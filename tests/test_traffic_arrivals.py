"""Arrival processes: seeded, sorted, in-horizon, mean-preserving."""

import pytest

from repro.traffic.arrivals import (
    ARRIVAL_PROCESSES,
    diurnal_arrivals,
    make_arrivals,
    onoff_arrivals,
    poisson_arrivals,
)


@pytest.mark.parametrize("kind", sorted(ARRIVAL_PROCESSES))
class TestEveryShape:
    def test_seeded_and_reproducible(self, kind):
        first = make_arrivals(kind, rate=0.4, horizon=500, seed=11)
        second = make_arrivals(kind, rate=0.4, horizon=500, seed=11)
        assert first == second

    def test_different_seeds_differ(self, kind):
        assert make_arrivals(kind, 0.4, 500, seed=1) != \
            make_arrivals(kind, 0.4, 500, seed=2)

    def test_sorted_integer_ticks_inside_horizon(self, kind):
        ticks = make_arrivals(kind, rate=0.4, horizon=500, seed=3)
        assert ticks == sorted(ticks)
        assert all(isinstance(t, int) for t in ticks)
        assert all(0 <= t < 500 for t in ticks)

    def test_long_run_mean_near_rate(self, kind):
        """All three shapes deliver the same offered load; only the
        clumping differs.  A 20k-tick run at rate 0.5 should land
        within 15% of 10k arrivals for every shape."""
        ticks = make_arrivals(kind, rate=0.5, horizon=20_000, seed=5)
        assert 0.85 * 10_000 <= len(ticks) <= 1.15 * 10_000

    def test_bad_rate_and_horizon_rejected(self, kind):
        with pytest.raises(ValueError, match="rate"):
            make_arrivals(kind, rate=0.0, horizon=100, seed=0)
        with pytest.raises(ValueError, match="horizon"):
            make_arrivals(kind, rate=0.5, horizon=0, seed=0)


class TestShapeSpecifics:
    def test_unknown_kind_lists_choices(self):
        with pytest.raises(ValueError, match="poisson"):
            make_arrivals("sawtooth", rate=0.5, horizon=100, seed=0)

    def test_onoff_is_clumpier_than_poisson(self):
        """Same mean, different variance: the ON/OFF source concentrates
        arrivals, so its per-100-tick counts spread wider."""
        def spread(ticks, horizon, bucket=100):
            counts = [0] * (horizon // bucket)
            for t in ticks:
                counts[t // bucket] += 1
            mean = sum(counts) / len(counts)
            return sum((c - mean) ** 2 for c in counts) / len(counts)

        horizon = 20_000
        smooth = spread(poisson_arrivals(0.5, horizon, seed=9), horizon)
        bursty = spread(onoff_arrivals(0.5, horizon, seed=9), horizon)
        assert bursty > smooth

    def test_onoff_validates_burst_shape(self):
        with pytest.raises(ValueError, match="burst_ticks"):
            onoff_arrivals(0.5, 100, seed=0, burst_ticks=0.0)

    def test_diurnal_trough_sheds_and_crest_concentrates(self):
        """One full period: the quarter around the crest must out-arrive
        the quarter around the trough."""
        period = 400.0
        ticks = diurnal_arrivals(0.5, horizon=40_000, seed=13, period=period)
        crest = sum(1 for t in ticks if (t % period) < period / 4)
        trough = sum(
            1 for t in ticks if period / 2 <= (t % period) < 3 * period / 4
        )
        assert crest > 2 * trough

    def test_diurnal_validates_period(self):
        with pytest.raises(ValueError, match="period"):
            diurnal_arrivals(0.5, 100, seed=0, period=0.0)
