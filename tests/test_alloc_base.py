"""Tests for the shared allocator utilities."""

import pytest

from repro.alloc.base import (
    Allocation,
    AllocatorCounters,
    check_free_known,
    coalesce,
)
from repro.errors import InvalidFree


class TestAllocation:
    def test_end(self):
        assert Allocation(10, 5).end == 15

    def test_overlap_detection(self):
        a = Allocation(0, 10)
        assert a.overlaps(Allocation(9, 5))
        assert not a.overlaps(Allocation(10, 5))
        assert Allocation(9, 5).overlaps(a)

    def test_validation(self):
        with pytest.raises(ValueError):
            Allocation(-1, 5)
        with pytest.raises(ValueError):
            Allocation(0, 0)

    def test_frozen_and_hashable(self):
        a = Allocation(0, 10)
        assert a == Allocation(0, 10)
        assert hash(a) == hash(Allocation(0, 10))
        with pytest.raises(AttributeError):
            a.size = 20


class TestCoalesce:
    def test_merges_adjacent(self):
        assert coalesce([(0, 10), (10, 5)]) == [(0, 15)]

    def test_keeps_gaps(self):
        assert coalesce([(0, 10), (11, 5)]) == [(0, 10), (11, 5)]

    def test_unsorted_input(self):
        assert coalesce([(10, 5), (0, 10)]) == [(0, 15)]

    def test_chain_merge(self):
        assert coalesce([(0, 1), (1, 1), (2, 1)]) == [(0, 3)]

    def test_empty(self):
        assert coalesce([]) == []


class TestCheckFreeKnown:
    def test_accepts_known(self):
        live = {0: Allocation(0, 10)}
        check_free_known(Allocation(0, 10), live, "test")

    def test_rejects_unknown_address(self):
        with pytest.raises(InvalidFree):
            check_free_known(Allocation(5, 10), {}, "test")

    def test_rejects_size_mismatch(self):
        live = {0: Allocation(0, 10)}
        with pytest.raises(InvalidFree):
            check_free_known(Allocation(0, 5), live, "test")


class TestCounters:
    def test_failure_undoes_optimistic_words(self):
        counters = AllocatorCounters()
        counters.record_request(100)
        counters.record_failure(100)
        assert counters.words_allocated == 0
        assert counters.requests == 1
        assert counters.failures == 1
