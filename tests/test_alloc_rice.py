"""Tests for the Rice inactive-block-chain allocator (Appendix A.4)."""

import pytest

from repro.alloc import Allocation, RiceAllocator
from repro.errors import InvalidFree, OutOfMemory


class TestSequentialPlacement:
    def test_segments_placed_sequentially(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(99)
        b = allocator.allocate(49)
        assert a.address == 0
        assert b.address == 100    # 99 + 1 back-reference word

    def test_back_reference_overhead_included(self):
        allocator = RiceAllocator(1000, back_reference_words=1)
        block = allocator.allocate(10)
        assert block.size == 11

    def test_zero_overhead_variant(self):
        allocator = RiceAllocator(1000, back_reference_words=0)
        assert allocator.allocate(10).size == 10

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            RiceAllocator(100).allocate(0)


class TestInactiveChain:
    def test_chain_search_is_freed_order(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(99)    # 0..100
        b = allocator.allocate(99)    # 100..200
        allocator.allocate(99)        # keeps the pointer forward
        allocator.free(a)
        allocator.free(b)             # chain: [b, a]
        block = allocator.allocate(99)
        assert block.address == b.address   # head of chain, not lowest address

    def test_leftover_replaces_block_in_chain(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(99)    # gross 100
        allocator.allocate(99)
        allocator.free(a)
        small = allocator.allocate(39)  # gross 40 from the 100-word block
        assert small.address == 0
        assert (40, 60) in allocator.holes()

    def test_exact_fit_removes_chain_entry(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(99)
        allocator.allocate(99)
        allocator.free(a)
        allocator.allocate(99)
        assert allocator.chain_length == 0

    def test_virgin_storage_used_when_chain_insufficient(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(49)    # 0..50
        allocator.allocate(49)        # 50..100
        allocator.free(a)
        big = allocator.allocate(199)
        assert big.address == 100     # bump pointer, not the 50-word hole


class TestCombining:
    def test_adjacent_blocks_combine(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(49)
        b = allocator.allocate(49)
        allocator.allocate(49)
        allocator.free(a)
        allocator.free(b)
        assert allocator.chain_length == 2
        merges = allocator.combine_adjacent()
        assert merges == 1
        assert allocator.chain_length == 1
        assert (0, 100) in allocator.holes()

    def test_allocate_combines_when_chain_fails(self):
        allocator = RiceAllocator(300)
        a = allocator.allocate(99)
        b = allocator.allocate(99)
        allocator.allocate(99)        # storage now full
        allocator.free(a)
        allocator.free(b)
        # Neither chain entry alone fits 150 gross=151, combined they do.
        block = allocator.allocate(150)
        assert block.address == 0

    def test_combine_returns_space_to_bump_pointer(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(99)
        allocator.free(a)
        allocator.combine_adjacent()
        # The freed block was adjacent to virgin storage: chain is empty.
        assert allocator.chain_length == 0
        assert allocator.allocate(499).address == 0

    def test_combine_on_empty_chain(self):
        assert RiceAllocator(100).combine_adjacent() == 0


class TestReplacement:
    def test_iterative_replacement_releases_until_fit(self):
        allocator = RiceAllocator(300)
        segments = [allocator.allocate(99) for _ in range(3)]  # 300 words
        replaced = []
        block = allocator.allocate_with_replacement(
            150,
            victims=list(segments),
            on_replace=replaced.append,
        )
        # Victims are taken in order until 151 gross words are contiguous:
        # freeing segment 0 gives 100, freeing 1 gives 200 combined.
        assert [v.address for v in replaced] == [0, 100]
        assert block.address == 0

    def test_replacement_not_needed_when_space_exists(self):
        allocator = RiceAllocator(300)
        sacrificial = allocator.allocate(99)
        replaced = []
        allocator.allocate_with_replacement(
            99, victims=[sacrificial], on_replace=replaced.append
        )
        assert replaced == []

    def test_replacement_exhaustion_raises(self):
        allocator = RiceAllocator(100)
        segment = allocator.allocate(50)
        with pytest.raises(OutOfMemory):
            allocator.allocate_with_replacement(500, victims=[segment])

    def test_replacement_rounds_counted(self):
        allocator = RiceAllocator(300)
        segments = [allocator.allocate(99) for _ in range(3)]
        allocator.allocate_with_replacement(150, victims=list(segments))
        assert allocator.replacement_rounds == 2


class TestBookkeeping:
    def test_double_free_rejected(self):
        allocator = RiceAllocator(100)
        block = allocator.allocate(10)
        allocator.free(block)
        with pytest.raises(InvalidFree):
            allocator.free(block)

    def test_unknown_free_rejected(self):
        with pytest.raises(InvalidFree):
            RiceAllocator(100).free(Allocation(0, 10))

    def test_accounting_balances(self):
        allocator = RiceAllocator(500)
        a = allocator.allocate(99)
        allocator.allocate(49)
        allocator.free(a)
        assert allocator.used_words + allocator.free_words == 500

    def test_search_steps_counted(self):
        allocator = RiceAllocator(1000)
        a = allocator.allocate(9)
        b = allocator.allocate(9)
        allocator.allocate(9)
        allocator.free(a)
        allocator.free(b)
        allocator.allocate(200)   # walks both chain entries, then bumps
        assert allocator.counters.search_steps >= 2
