"""End-to-end CLI tests: trace → analyze, and trace-diff."""

import io
import json

import pytest

from repro.observe.analysis.cli import (
    build_analyze_parser,
    build_diff_parser,
    main_analyze,
    main_diff,
    run_analyze,
    run_diff,
)
from repro.observe.cli import build_parser as build_trace_parser
from repro.observe.cli import run_trace


@pytest.fixture()
def trace_file(tmp_path):
    """A real JSONL trace written by ``python -m repro trace``."""
    path = tmp_path / "trace.jsonl"
    args = build_trace_parser().parse_args([
        "phased", "--length", "2000", "--pages", "64", "--frames", "8",
        "--output", str(path),
    ])
    assert run_trace(args, stream=io.StringIO()) == 0
    return path


class TestAnalyze:
    def test_end_to_end_report(self, trace_file):
        out = io.StringIO()
        args = build_analyze_parser().parse_args([str(trace_file)])
        assert run_analyze(args, stream=out) == 0
        report = out.getvalue()
        assert "trace analysis" in report
        assert "events by kind" in report
        assert "windowed series" in report
        assert "interval summaries" in report
        for series in ("fault_rate", "resident", "spacetime"):
            assert series in report
        assert "residency (fault→evict)" in report

    def test_explicit_window_respected(self, trace_file, capsys):
        assert main_analyze([str(trace_file), "--window", "250"]) == 0
        assert "window=250" in capsys.readouterr().out

    def test_export_json(self, trace_file, tmp_path, capsys):
        export = tmp_path / "analysis.json"
        assert main_analyze([str(trace_file),
                             "--export-json", str(export)]) == 0
        payload = json.loads(export.read_text())
        assert payload["events"] > 0
        assert "fault_rate" in payload["series"]
        assert payload["kind_counts"]["fault"] == sum(
            payload["series"]["faults"]["values"]
        )
        assert set(payload["residency"]) == {"count", "open", "percentiles"}

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main_analyze([str(tmp_path / "absent.jsonl")])

    def test_nonpositive_window_rejected(self, trace_file):
        with pytest.raises(SystemExit, match="--window"):
            main_analyze([str(trace_file), "--window", "0"])

    def test_package_cli_routes_analyze(self, trace_file, capsys):
        from repro.__main__ import main

        assert main(["analyze", str(trace_file)]) == 0
        assert "trace analysis" in capsys.readouterr().out


class TestTraceDiff:
    def test_identical_traces_exit_zero(self, trace_file, tmp_path, capsys):
        copy = tmp_path / "copy.jsonl"
        copy.write_text(trace_file.read_text())
        assert main_diff([str(trace_file), str(copy)]) == 0
        report = capsys.readouterr().out
        assert "trace diff" in report
        assert "divergence index" not in report

    def test_divergent_traces_exit_nonzero(self, trace_file, tmp_path):
        lines = trace_file.read_text().splitlines()
        record = json.loads(lines[5])
        record["time"] = record["time"] + 999
        lines[5] = json.dumps(record)
        other = tmp_path / "other.jsonl"
        other.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        args = build_diff_parser().parse_args([str(trace_file), str(other)])
        assert run_diff(args, stream=out) == 1
        report = out.getvalue()
        assert "divergence index" in report
        assert "5" in report

    def test_shorter_trace_reports_early_end(self, trace_file, tmp_path):
        short = tmp_path / "short.jsonl"
        lines = trace_file.read_text().splitlines()
        short.write_text("\n".join(lines[:10]) + "\n")
        out = io.StringIO()
        args = build_diff_parser().parse_args([str(trace_file), str(short)])
        assert run_diff(args, stream=out) == 1
        assert "(trace ended)" in out.getvalue()

    def test_missing_file_rejected(self, trace_file, tmp_path):
        with pytest.raises(SystemExit, match="no such trace"):
            main_diff([str(trace_file), str(tmp_path / "absent.jsonl")])

    def test_package_cli_routes_trace_diff(self, trace_file, tmp_path, capsys):
        from repro.__main__ import main

        copy = tmp_path / "copy.jsonl"
        copy.write_text(trace_file.read_text())
        assert main(["trace-diff", str(trace_file), str(copy)]) == 0
        assert "trace diff" in capsys.readouterr().out


class TestJsonFormat:
    """``--format json``: machine-readable output for both commands."""

    def test_analyze_json_is_parseable_and_complete(self, trace_file):
        out = io.StringIO()
        args = build_analyze_parser().parse_args(
            [str(trace_file), "--format", "json"]
        )
        assert run_analyze(args, stream=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["trace"] == str(trace_file)
        assert payload["kind_counts"]
        assert "fault_rate" in payload["series"]

    def test_analyze_json_matches_export_json(self, trace_file, tmp_path):
        exported = tmp_path / "analytics.json"
        out = io.StringIO()
        args = build_analyze_parser().parse_args(
            [str(trace_file), "--format", "json",
             "--export-json", str(exported)]
        )
        assert run_analyze(args, stream=out) == 0
        printed = json.loads(out.getvalue())
        written = json.loads(exported.read_text())
        del printed["trace"]
        assert printed == written

    def test_diff_json_identical_traces(self, trace_file, tmp_path):
        copy = tmp_path / "copy.jsonl"
        copy.write_text(trace_file.read_text())
        out = io.StringIO()
        args = build_diff_parser().parse_args(
            [str(trace_file), str(copy), "--format", "json"]
        )
        assert run_diff(args, stream=out) == 0
        payload = json.loads(out.getvalue())
        assert payload["identical"] is True
        assert payload["divergence_index"] is None
        assert all(delta == 0 for delta in payload["deltas"].values())

    def test_diff_json_divergent_traces_exit_one(self, trace_file,
                                                 tmp_path):
        lines = trace_file.read_text().splitlines()
        record = json.loads(lines[5])
        record["time"] = record["time"] + 999
        lines[5] = json.dumps(record)
        other = tmp_path / "other.jsonl"
        other.write_text("\n".join(lines) + "\n")
        out = io.StringIO()
        args = build_diff_parser().parse_args(
            [str(trace_file), str(other), "--format", "json"]
        )
        assert run_diff(args, stream=out) == 1
        payload = json.loads(out.getvalue())
        assert payload["identical"] is False
        assert payload["divergence_index"] == 5
        assert payload["a_at_divergence"] is not None

    def test_table_stays_the_default(self, trace_file, capsys):
        assert main_analyze([str(trace_file)]) == 0
        out = capsys.readouterr().out
        with pytest.raises(json.JSONDecodeError):
            json.loads(out)
