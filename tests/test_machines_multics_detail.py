"""Deeper tests for the MULTICS dual-page-size system."""

import pytest

from repro.advice import will_need
from repro.errors import MissingSegment
from repro.machines import multics
from repro.machines.multics import MAX_SEGMENTS, MulticsDualPageSystem


class TestLifecycle:
    def test_destroy_small_segment(self):
        system = multics().system
        system.create("s", 200)
        system.access("s", 0)
        system.destroy("s")
        with pytest.raises(KeyError):
            system.access("s", 0)

    def test_destroy_large_segment_releases_frames(self):
        system = multics().system
        system.create("big", 10_000)
        system.access("big", 0)
        system.access("big", 5_000)
        resident_before = system._pagers["large"].frames.resident_count
        system.destroy("big")
        assert system._pagers["large"].frames.resident_count < resident_before

    def test_segment_numbers_recycled_after_destroy(self):
        system = multics().system
        system.create("a", 100)
        system.destroy("a")
        system.create("a", 100)   # the name is reusable
        system.access("a", 99)

    def test_routing_boundary(self):
        system = multics().system
        system.create("at", 1_024)
        system.create("over", 1_025)
        assert system._side["at"] == "small"
        assert system._side["over"] == "large"

    def test_duplicate_create_rejected(self):
        system = multics().system
        system.create("s", 100)
        with pytest.raises(ValueError):
            system.create("s", 100)


class TestAdviceRouting:
    def test_advice_for_unknown_segment_ignored(self):
        system = multics().system
        system.advise(will_need("ghost"))   # silently dropped

    def test_keep_resident_small_segment(self):
        from repro.advice import keep_resident
        system = multics().system
        system.create("pinned", 500)
        system.access("pinned", 0)
        system.advise(keep_resident("pinned"))
        # Flood the small region.
        for index in range(600):
            name = f"flood{index}"
            system.create(name, 1_000)
            system.access(name, 0)
        key = system.naming.key("pinned")
        small = system._pagers["small"]
        assert any(unit[0] == key for unit in small.frames.resident_pages())


class TestStats:
    def test_dual_region_stats_merge(self):
        system = multics().system
        system.create("small", 300)
        system.create("large", 5_000)
        system.access("small", 0)
        system.access("large", 0)
        stats = system.stats()
        assert stats.accesses == 2
        assert stats.faults == 2
        assert stats.internal_waste_words > 0

    def test_page_size_of(self):
        system = multics().system
        system.create("tiny", 64)
        system.create("huge", 100_000)
        assert system.page_size_of("tiny") == 64
        assert system.page_size_of("huge") == 1_024

    def test_small_pages_bound_waste(self):
        """Per small segment, waste < 64 words (one small frame)."""
        system = multics().system
        for index, size in enumerate((65, 100, 1_000)):
            system.create(f"s{index}", size)
        assert system.internal_waste_words() < 3 * 64
