"""Tests for segment descriptor tables (B5000 PRT style)."""

import pytest

from repro.addressing import AssociativeMemory, SegmentTable
from repro.errors import BoundViolation, MissingSegment, SegmentFault


class TestDeclare:
    def test_declare_and_lookup(self):
        table = SegmentTable()
        table.declare("code", 100)
        assert table.descriptor("code").extent == 100

    def test_double_declare_rejected(self):
        table = SegmentTable()
        table.declare("code", 100)
        with pytest.raises(ValueError):
            table.declare("code", 50)

    def test_nonpositive_extent_rejected(self):
        with pytest.raises(ValueError):
            SegmentTable().declare("code", 0)

    def test_machine_maximum_enforced(self):
        """B5000: segments have a maximum size of 1024 words."""
        table = SegmentTable(max_segment_extent=1024)
        table.declare("ok", 1024)
        with pytest.raises(ValueError):
            table.declare("too-big", 1025)

    def test_symbolic_and_integer_names_both_work(self):
        table = SegmentTable()
        table.declare("symbolic", 10)
        table.declare(3, 10)
        assert "symbolic" in table and 3 in table


class TestTranslate:
    def test_fault_before_placement(self):
        table = SegmentTable()
        table.declare("s", 10)
        with pytest.raises(SegmentFault):
            table.translate_pair("s", 0)

    def test_translate_after_place(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.place("s", base=500)
        assert table.translate_pair("s", 7).address == 507

    def test_missing_segment(self):
        with pytest.raises(MissingSegment):
            SegmentTable().translate_pair("ghost", 0)

    def test_subscript_check(self):
        """The paper: illegal subscripting intercepted automatically."""
        table = SegmentTable()
        table.declare("array", 10)
        table.place("array", base=0)
        with pytest.raises(BoundViolation):
            table.translate_pair("array", 10)

    def test_negative_item_rejected(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.place("s", 0)
        with pytest.raises(BoundViolation):
            table.translate_pair("s", -1)

    def test_mapping_cycles(self):
        table = SegmentTable(table_access_cycles=1)
        table.declare("s", 10)
        table.place("s", 0)
        assert table.translate_pair("s", 0).mapping_cycles == 1
        assert table.mapping_cycles_total == 1

    def test_fault_counter(self):
        table = SegmentTable()
        table.declare("s", 10)
        with pytest.raises(SegmentFault):
            table.translate_pair("s", 0)
        assert table.faults == 1


class TestDynamicSegments:
    def test_destroy(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.destroy("s")
        assert "s" not in table

    def test_destroy_missing(self):
        with pytest.raises(MissingSegment):
            SegmentTable().destroy("ghost")

    def test_resize(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.resize("s", 20)
        assert table.descriptor("s").extent == 20

    def test_resize_respects_machine_maximum(self):
        table = SegmentTable(max_segment_extent=100)
        table.declare("s", 10)
        with pytest.raises(ValueError):
            table.resize("s", 101)

    def test_grown_segment_accepts_new_items(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.place("s", 0)
        table.resize("s", 20)
        assert table.translate_pair("s", 15).address == 15


class TestSensorsAndResidency:
    def test_write_sets_modified(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.place("s", 0)
        table.translate_pair("s", 0, write=True)
        assert table.descriptor("s").modified

    def test_displace_returns_state_and_clears(self):
        table = SegmentTable()
        table.declare("s", 10)
        table.place("s", 400)
        table.translate_pair("s", 1, write=True)
        snapshot = table.displace("s")
        assert snapshot.base == 400 and snapshot.modified
        assert not table.descriptor("s").present

    def test_resident_segments(self):
        table = SegmentTable()
        table.declare("a", 10)
        table.declare("b", 10)
        table.place("a", 0)
        assert table.resident_segments() == ["a"]

    def test_len(self):
        table = SegmentTable()
        table.declare("a", 10)
        table.declare("b", 10)
        assert len(table) == 2


class TestWithAssociativeMemory:
    def test_descriptor_caching(self):
        """B8500: recently accessed PRT elements retained associatively."""
        tlb = AssociativeMemory(4)
        table = SegmentTable(associative_memory=tlb)
        table.declare("s", 10)
        table.place("s", 100)
        assert not table.translate_pair("s", 0).associative_hit
        hit = table.translate_pair("s", 5)
        assert hit.associative_hit and hit.address == 105 and hit.mapping_cycles == 0

    def test_cached_descriptor_still_bound_checks(self):
        tlb = AssociativeMemory(4)
        table = SegmentTable(associative_memory=tlb)
        table.declare("s", 10)
        table.place("s", 100)
        table.translate_pair("s", 0)
        with pytest.raises(BoundViolation):
            table.translate_pair("s", 10)

    def test_displace_invalidates_cache(self):
        tlb = AssociativeMemory(4)
        table = SegmentTable(associative_memory=tlb)
        table.declare("s", 10)
        table.place("s", 100)
        table.translate_pair("s", 0)
        table.displace("s")
        with pytest.raises(SegmentFault):
            table.translate_pair("s", 0)

    def test_destroy_invalidates_cache(self):
        tlb = AssociativeMemory(4)
        table = SegmentTable(associative_memory=tlb)
        table.declare("s", 10)
        table.place("s", 100)
        table.translate_pair("s", 0)
        table.destroy("s")
        with pytest.raises(MissingSegment):
            table.translate_pair("s", 0)
