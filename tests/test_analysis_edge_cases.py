"""Analysis edge cases: empty, tiny, unmatched, and damaged traces."""

import pytest

from repro.observe import Evict, Fault, Free, JsonlSink, Tracer
from repro.observe.analysis import EventStream, analyze_events
from repro.observe.analysis.cli import analyze_file


def write_trace(path, events):
    with JsonlSink(path) as sink:
        tracer = Tracer([sink])
        for event in events:
            tracer.emit(event)


class TestEmptyAndTiny:
    def test_empty_trace_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        analytics = analyze_file(path)
        assert analytics.events == 0
        assert analytics.span == 0
        assert analytics.series == {}
        assert analytics.residency_summary().count == 0
        assert analytics.lifetime_summary().count == 0

    def test_single_event_trace(self, tmp_path):
        path = tmp_path / "one.jsonl"
        write_trace(path, [Fault(time=7, unit=3)])
        analytics = analyze_file(path)
        assert analytics.events == 1
        assert (analytics.first_time, analytics.last_time) == (7, 7)
        assert analytics.series["faults"].values == [1.0]
        # The lone fault opens a span of zero visible extent.
        summary = analytics.residency_summary()
        assert (summary.count, summary.open_count) == (1, 1)
        assert summary.maximum == 0


class TestUnmatchedEvents:
    def test_never_evicted_fault_stays_open(self):
        analytics = analyze_events(
            [Fault(time=0, unit=1), Fault(time=10, unit=2),
             Evict(time=12, unit=2)],
            window=100,
        )
        open_spans = [s for s in analytics.residency_spans if s.open]
        assert [s.unit for s in open_spans] == [1]
        # Open spans measure to the trace end: 12 - 0.
        assert analytics.residency_summary().maximum == 12

    def test_evict_without_fault_counted(self):
        analytics = analyze_events([Evict(time=3, unit=9)], window=10)
        assert analytics.unmatched_evicts == 1
        assert analytics.residency_spans == []

    def test_free_without_place_counted(self):
        analytics = analyze_events([Free(time=3, address=64, size=32)],
                                   window=10)
        assert analytics.unmatched_frees == 1
        assert analytics.block_lifetimes == []

    def test_duplicate_fault_keeps_first_open_time(self):
        analytics = analyze_events(
            [Fault(time=0, unit=1), Fault(time=5, unit=1),
             Evict(time=8, unit=1)],
            window=100,
        )
        (span,) = analytics.residency_spans
        assert (span.start, span.end) == (0, 8)


class TestDamagedJsonl:
    GOOD = '{"event":"fault","time":0,"unit":1,"write":false,"program":null}'

    def test_corrupt_lines_skipped_and_counted(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        path.write_text(
            self.GOOD + "\n"
            "{not json}\n"
            '{"event":"warp","time":1}\n'      # unknown kind
            + self.GOOD + "\n"
        )
        stream = EventStream(path)
        assert [e.kind for e in stream] == ["fault", "fault"]
        assert stream.corrupt_lines == 2
        assert stream.lines == 4

    def test_truncated_final_line(self, tmp_path):
        path = tmp_path / "truncated.jsonl"
        path.write_text(self.GOOD + "\n" + self.GOOD[: len(self.GOOD) // 2])
        stream = EventStream(path)
        assert len(list(stream)) == 1
        assert stream.corrupt_lines == 1

    def test_blank_lines_ignored_entirely(self, tmp_path):
        path = tmp_path / "blanks.jsonl"
        path.write_text("\n" + self.GOOD + "\n\n")
        stream = EventStream(path)
        assert len(list(stream)) == 1
        assert stream.corrupt_lines == 0
        assert stream.lines == 1

    def test_strict_mode_raises_with_location(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        path.write_text(self.GOOD + "\nnot json\n")
        with pytest.raises(ValueError, match=r"damaged\.jsonl:2"):
            list(EventStream(path, strict=True))

    def test_analyze_file_reports_corrupt_count(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        path.write_text(self.GOOD + "\ngarbage\n")
        analytics = analyze_file(path)
        assert analytics.events == 1
        assert analytics.corrupt_lines == 1

    def test_counters_reset_between_passes(self, tmp_path):
        path = tmp_path / "damaged.jsonl"
        path.write_text(self.GOOD + "\ngarbage\n")
        stream = EventStream(path)
        list(stream)
        list(stream)
        assert stream.corrupt_lines == 1
        assert stream.events == 1
