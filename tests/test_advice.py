"""Tests for predictive information: directives, advised pager, ACSI-MATIC."""

import pytest

from repro.addressing import PageTable
from repro.advice import (
    Advice,
    AdviceKind,
    AdvisedPager,
    AdvisedReplacementPolicy,
    ProgramDescription,
    keep_resident,
    will_need,
    wont_need,
)
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.paging import DemandPager, FrameTable, LruPolicy


class TestDirectives:
    def test_shorthand_constructors(self):
        assert will_need("p").kind is AdviceKind.WILL_NEED
        assert wont_need("p").kind is AdviceKind.WONT_NEED
        assert keep_resident("p").kind is AdviceKind.KEEP_RESIDENT

    def test_str(self):
        assert str(will_need(3)) == "will_need(3)"

    def test_frozen(self):
        advice = will_need("p")
        with pytest.raises(AttributeError):
            advice.unit = "q"


class TestAdvisedReplacementPolicy:
    def test_discard_hint_preferred(self):
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("b", 5)
        policy.hint_discard("b")
        # LRU would pick a; the hint overrides.
        assert policy.choose_victim(["a", "b"], 6) == "b"
        assert policy.hints_honoured == 1

    def test_hint_retired_by_real_access(self):
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.hint_discard("a")
        policy.on_access("a", 5)   # advice was wrong: page is live again
        assert policy.choose_victim(["a", "b"], 6) == "b"

    def test_lock_protects(self):
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.lock("a")
        assert policy.choose_victim(["a", "b"], 2) == "b"

    def test_all_locked_falls_back(self):
        """Advice must never wedge the system."""
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.lock("a")
        assert policy.choose_victim(["a"], 1) == "a"

    def test_unlock(self):
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.lock("a")
        policy.unlock("a")
        assert policy.choose_victim(["a", "b"], 2) == "a"

    def test_reset_clears_advice(self):
        policy = AdvisedReplacementPolicy(LruPolicy())
        policy.on_load("a", 0)
        policy.lock("a")
        policy.hint_discard("a")
        policy.reset()
        assert not policy.locked and not policy.discard_hints

    def test_name_reflects_base(self):
        assert AdvisedReplacementPolicy(LruPolicy()).name == "advised-lru"


def make_advised(frames=4, latency=1000):
    clock = Clock()
    table = PageTable(page_size=512, pages=32)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=latency, transfer_rate=1.0),
        clock=clock,
    )
    pager = DemandPager(table, FrameTable(frames), backing, LruPolicy(), clock)
    return AdvisedPager.wrap(pager), clock


class TestAdvisedPager:
    def test_wrap_decorates_policy(self):
        advised, _ = make_advised()
        assert isinstance(advised.pager.policy, AdvisedReplacementPolicy)

    def test_plain_policy_rejected_without_wrap(self):
        clock = Clock()
        table = PageTable(page_size=512, pages=4)
        backing = BackingStore(
            StorageLevel("d", 10**6, access_time=10), clock=clock
        )
        pager = DemandPager(table, FrameTable(2), backing, LruPolicy(), clock)
        with pytest.raises(TypeError):
            AdvisedPager(pager)

    def test_will_need_prefetches_without_wait(self):
        advised, clock = make_advised()
        before = clock.now
        advised.advise(will_need(3))
        assert clock.now == before        # overlapped
        assert 3 in advised.pager.frames
        advised.access_page(3)
        assert advised.stats.faults == 0  # the advice paid off

    def test_will_need_when_full_only_displaces_hinted(self):
        advised, _ = make_advised(frames=2)
        advised.access_page(0)
        advised.access_page(1)
        advised.advise(will_need(2))
        assert 2 not in advised.pager.frames   # nothing hinted: ignored
        advised.advise(wont_need(0))
        advised.advise(will_need(2))
        assert 2 in advised.pager.frames
        assert 0 not in advised.pager.frames

    def test_wont_need_prioritizes_victim(self):
        advised, _ = make_advised(frames=2)
        advised.access_page(0)
        advised.access_page(1)
        advised.access_page(0)      # LRU victim would be 1
        advised.advise(wont_need(0))
        advised.access_page(2)
        assert 0 not in advised.pager.frames
        assert 1 in advised.pager.frames

    def test_keep_resident_survives_pressure(self):
        advised, _ = make_advised(frames=2)
        advised.access_page(0)
        advised.advise(keep_resident(0))
        for page in (1, 2, 3, 4):
            advised.access_page(page)
        assert 0 in advised.pager.frames

    def test_advice_about_nonexistent_page_ignored(self):
        advised, _ = make_advised()
        advised.advise(will_need(99))   # past the 32-page table
        assert advised.prefetches_started == 0

    def test_advice_counted(self):
        advised, _ = make_advised()
        advised.advise(will_need(1))
        advised.advise(wont_need(1))
        assert advised.advice_received == 2


class TestProgramDescription:
    def test_medium_prediction(self):
        description = ProgramDescription("payroll")
        description.set_medium("master", "drum")
        assert description.preferred_medium("master") == "drum"
        assert description.preferred_medium("other") == "core"

    def test_overlay_rules(self):
        description = ProgramDescription("p")
        description.forbid_overlay("phase2", "phase1")
        description.permit_overlay("phase3", "phase1")
        assert not description.may_overlay("phase2", "phase1")
        assert description.may_overlay("phase3", "phase1")
        assert description.may_overlay("unstated", "phase1")   # default allow

    def test_replacement_candidates_respect_rules(self):
        description = ProgramDescription("p")
        for segment, group in (("a", "g1"), ("b", "g2"), ("c", "g3")):
            description.assign_group(segment, group)
        description.assign_group("incoming", "gX")
        description.forbid_overlay("gX", "g2")
        candidates = description.replacement_candidates(
            "incoming", ["a", "b", "c"]
        )
        assert candidates == ["a", "c"]

    def test_ungrouped_segments_always_candidates(self):
        description = ProgramDescription("p")
        description.assign_group("incoming", "gX")
        assert description.replacement_candidates("incoming", ["loose"]) == ["loose"]

    def test_descriptions_vary_dynamically(self):
        description = ProgramDescription("p")
        description.set_medium("s", "core")
        description.set_medium("s", "drum")   # revised at run time
        assert description.preferred_medium("s") == "drum"
        assert description.revisions == 2

    def test_rules_listing(self):
        description = ProgramDescription("p")
        description.forbid_overlay("a", "b")
        rules = description.rules()
        assert len(rules) == 1
        assert rules[0].overlayer == "a" and not rules[0].allowed
