"""Tests for the segmented matrix (the B5000 multidimensional-array trick)."""

import pytest

from repro.addressing import SegmentTable
from repro.alloc import FreeListAllocator
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.paging import ClockPolicy
from repro.segmentation import SegmentedMatrix, SegmentManager


def make_manager(capacity=24_000, max_segment=1_024):
    clock = Clock()
    return SegmentManager(
        table=SegmentTable(max_segment_extent=max_segment),
        allocator=FreeListAllocator(capacity, policy="best_fit"),
        backing=BackingStore(
            StorageLevel("drum", 10**8, access_time=200, transfer_rate=1.0),
            clock=clock,
        ),
        policy=ClockPolicy(),
        clock=clock,
    )


class TestTheB5000Claim:
    def test_matrix_larger_than_any_segment_is_declarable(self):
        """1024x1024 words under a 1024-word segment limit."""
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=1_024, cols=1_024)
        assert matrix.apparent_words == 1_024 * 1_024
        matrix.access(1_000, 1_000)
        matrix.access(0, 0, write=True)

    def test_single_vector_beyond_the_limit_is_not(self):
        """The limitation is on contiguous naming..."""
        manager = make_manager()
        with pytest.raises(ValueError):
            manager.create("vector", 1_025)

    def test_matrix_row_beyond_the_limit_is_not_either(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            SegmentedMatrix(manager, "M", rows=4, cols=1_025)

    def test_matrix_larger_than_working_storage(self):
        """...and not on apparently accessible information."""
        manager = make_manager(capacity=24_000)
        matrix = SegmentedMatrix(manager, "M", rows=1_024, cols=1_024)
        assert matrix.apparent_words > manager.allocator.capacity
        for row in range(0, 1_024, 128):
            matrix.access(row, row % 1_024)
        # Only the touched rows (plus the dope vector) occupy core.
        assert len(matrix.resident_rows()) <= 8


class TestMechanics:
    def test_two_references_per_element(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=8, cols=8)
        matrix.access(2, 3)
        assert manager.stats.accesses == 2   # dope vector + row
        assert matrix.dope_references == 1

    def test_rows_created_lazily(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=100, cols=100)
        matrix.access(5, 5)
        assert len(manager.table) == 2   # dope vector + one row

    def test_bound_checks(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=4, cols=4)
        with pytest.raises(IndexError):
            matrix.access(4, 0)
        with pytest.raises(IndexError):
            matrix.access(0, 4)

    def test_elements_of_a_row_are_contiguous(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=4, cols=16)
        first = matrix.access(1, 0)
        last = matrix.access(1, 15)
        assert last - first == 15

    def test_different_rows_need_not_be_adjacent(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=4, cols=16)
        a = matrix.access(0, 0)
        b = matrix.access(1, 0)
        assert a != b

    def test_destroy_releases_everything(self):
        manager = make_manager()
        matrix = SegmentedMatrix(manager, "M", rows=8, cols=64)
        for row in range(8):
            matrix.access(row, 0)
        matrix.destroy()
        assert manager.allocator.used_words == 0
        assert len(manager.table) == 0

    def test_row_sweep_under_pressure_replaces_rows(self):
        manager = make_manager(capacity=3_000)
        matrix = SegmentedMatrix(manager, "M", rows=16, cols=1_000)
        for row in range(16):
            matrix.access(row, 500)
        assert manager.stats.replacements > 0
        # The matrix remains fully usable afterwards.
        matrix.access(0, 999, write=True)

    def test_shape_validation(self):
        manager = make_manager()
        with pytest.raises(ValueError):
            SegmentedMatrix(manager, "M", rows=0, cols=4)
        with pytest.raises(ValueError):
            SegmentedMatrix(manager, "M", rows=2_000, cols=4)   # dope too big
