"""Tests for the exception hierarchy (the trap taxonomy)."""

import pytest

from repro.errors import (
    AddressingError,
    AllocationError,
    BoundViolation,
    ConfigurationError,
    InvalidFree,
    MissingSegment,
    OutOfMemory,
    PageFault,
    ReproError,
    SegmentFault,
    StorageTrap,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (BoundViolation, PageFault, SegmentFault, MissingSegment,
                    OutOfMemory, InvalidFree, ConfigurationError):
            assert issubclass(cls, ReproError)

    def test_traps_are_addressing_errors(self):
        """Page and segment faults are the 'trapping invalid accesses'
        facility: addressing events, not allocation failures."""
        assert issubclass(PageFault, StorageTrap)
        assert issubclass(SegmentFault, StorageTrap)
        assert issubclass(StorageTrap, AddressingError)
        assert not issubclass(PageFault, AllocationError)

    def test_allocation_errors_are_not_traps(self):
        assert issubclass(OutOfMemory, AllocationError)
        assert not issubclass(OutOfMemory, AddressingError)


class TestPayloads:
    def test_bound_violation_carries_context(self):
        error = BoundViolation(150, 99, "segment 'array'")
        assert error.name == 150
        assert error.limit == 99
        assert "segment 'array'" in str(error)

    def test_page_fault_carries_page(self):
        error = PageFault(7)
        assert error.page == 7
        assert "7" in str(error)

    def test_segment_fault_carries_segment(self):
        error = SegmentFault("code")
        assert error.segment == "code"

    def test_missing_segment_carries_name(self):
        error = MissingSegment(("group", 3))
        assert error.segment == ("group", 3)

    def test_out_of_memory_carries_request(self):
        error = OutOfMemory(512, "largest hole 100")
        assert error.requested == 512
        assert "largest hole 100" in str(error)

    def test_catching_traps_distinctly_from_errors(self):
        """The demand-fetch pattern: traps are caught and serviced,
        genuine errors propagate."""
        def faulty():
            raise PageFault(3)

        serviced = False
        try:
            faulty()
        except StorageTrap:
            serviced = True
        assert serviced

        with pytest.raises(BoundViolation):
            try:
                raise BoundViolation(10, 5)
            except StorageTrap:   # pragma: no cover - must not catch
                pass
