"""Tests for the exception hierarchy (the trap taxonomy)."""

import pickle

import pytest

from repro.errors import (
    AddressingError,
    AllocationError,
    BoundViolation,
    ConfigurationError,
    InvalidFree,
    MissingSegment,
    OutOfMemory,
    PageFault,
    ReproError,
    SegmentFault,
    StorageTrap,
)


class TestHierarchy:
    def test_everything_is_a_repro_error(self):
        for cls in (BoundViolation, PageFault, SegmentFault, MissingSegment,
                    OutOfMemory, InvalidFree, ConfigurationError):
            assert issubclass(cls, ReproError)

    def test_traps_are_addressing_errors(self):
        """Page and segment faults are the 'trapping invalid accesses'
        facility: addressing events, not allocation failures."""
        assert issubclass(PageFault, StorageTrap)
        assert issubclass(SegmentFault, StorageTrap)
        assert issubclass(StorageTrap, AddressingError)
        assert not issubclass(PageFault, AllocationError)

    def test_allocation_errors_are_not_traps(self):
        assert issubclass(OutOfMemory, AllocationError)
        assert not issubclass(OutOfMemory, AddressingError)


class TestPayloads:
    def test_bound_violation_carries_context(self):
        error = BoundViolation(150, 99, "segment 'array'")
        assert error.name == 150
        assert error.limit == 99
        assert "segment 'array'" in str(error)

    def test_page_fault_carries_page(self):
        error = PageFault(7)
        assert error.page == 7
        assert "7" in str(error)

    def test_segment_fault_carries_segment(self):
        error = SegmentFault("code")
        assert error.segment == "code"

    def test_missing_segment_carries_name(self):
        error = MissingSegment(("group", 3))
        assert error.segment == ("group", 3)

    def test_out_of_memory_carries_request(self):
        error = OutOfMemory(512, "largest hole 100")
        assert error.requested == 512
        assert "largest hole 100" in str(error)

    def test_catching_traps_distinctly_from_errors(self):
        """The demand-fetch pattern: traps are caught and serviced,
        genuine errors propagate."""
        def faulty():
            raise PageFault(3)

        serviced = False
        try:
            faulty()
        except StorageTrap:
            serviced = True
        assert serviced

        with pytest.raises(BoundViolation):
            try:
                raise BoundViolation(10, 5)
            except StorageTrap:   # pragma: no cover - must not catch
                pass


class TestPickling:
    """Exceptions must survive a process boundary (the sweep pool)."""

    def round_trip(self, error):
        return pickle.loads(pickle.dumps(error))

    def test_parameterized_exceptions_round_trip(self):
        from repro.errors import InvariantViolation, TransientFault

        cases = [
            BoundViolation(150, 99, "segment 'array'"),
            PageFault(7),
            PageFault(7, process="editor"),
            SegmentFault("code"),
            MissingSegment(("group", 3)),
            OutOfMemory(512),
            OutOfMemory(512, "largest hole 100"),
            TransientFault("drum", "read"),
            InvariantViolation("free_list_sorted", "out of order"),
        ]
        for error in cases:
            clone = self.round_trip(error)
            assert type(clone) is type(error)
            assert str(clone) == str(error)

    def test_payload_attributes_survive(self):
        clone = self.round_trip(OutOfMemory(512, "largest hole 100"))
        assert clone.requested == 512
        bound = self.round_trip(BoundViolation(150, 99, "ctx"))
        assert (bound.name, bound.limit) == (150, 99)

    def test_unpicklable_subject_degrades_to_repr(self):
        from repro.errors import InvariantViolation

        error = InvariantViolation("holes_sorted", "bad", subject=object())
        clone = self.round_trip(error)
        assert isinstance(clone.subject, str)
        assert "object" in clone.subject
