"""Cross-module property-based tests.

These pin down invariants that only hold when several components
cooperate correctly: compaction moving real data, the pager respecting
its frame budget, OPT's optimality against realizable policies, and the
segment manager surviving arbitrary create/access/destroy interleavings.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.addressing import PageTable, SegmentTable
from repro.alloc import FreeListAllocator, compact
from repro.clock import Clock
from repro.errors import OutOfMemory
from repro.memory import BackingStore, PhysicalMemory, StorageLevel
from repro.paging import (
    BeladyOptimalPolicy,
    DemandPager,
    FrameTable,
    LruPolicy,
    make_policy,
    simulate_trace,
)
from repro.segmentation import SegmentManager


class TestCompactionPreservesData:
    @given(
        sizes=st.lists(st.integers(min_value=1, max_value=40), min_size=2,
                       max_size=20),
        free_mask=st.lists(st.booleans(), min_size=2, max_size=20),
    )
    @settings(max_examples=60, deadline=None)
    def test_survivor_contents_identical_after_compaction(self, sizes, free_mask):
        memory = PhysicalMemory(1_024)
        allocator = FreeListAllocator(1_024)
        blocks = []
        for index, size in enumerate(sizes):
            try:
                block = allocator.allocate(size)
            except OutOfMemory:
                break
            memory.write_block(
                block.address, [(index, offset) for offset in range(size)]
            )
            blocks.append((index, block))
        survivors = []
        for position, (index, block) in enumerate(blocks):
            if free_mask[position % len(free_mask)]:
                allocator.free(block)
            else:
                survivors.append((index, block))
        relocations = {}
        compact(memory=memory, allocator=allocator,
                on_relocate=lambda old, new: relocations.update(
                    {old.address: new.address}))
        for index, block in survivors:
            address = relocations.get(block.address, block.address)
            expected = [(index, offset) for offset in range(block.size)]
            assert memory.read_block(address, block.size) == expected
        allocator.check_invariants()


class TestPagerBudget:
    @given(trace=st.lists(st.integers(min_value=0, max_value=20),
                          min_size=1, max_size=150),
           frames=st.integers(min_value=1, max_value=6))
    @settings(max_examples=50, deadline=None)
    def test_residency_never_exceeds_frames(self, trace, frames):
        clock = Clock()
        pager = DemandPager(
            PageTable(page_size=64, pages=32),
            FrameTable(frames),
            BackingStore(StorageLevel("d", 10**7, access_time=10),
                         clock=clock),
            LruPolicy(),
            clock,
        )
        for page in trace:
            pager.access_page(page, write=(page % 3 == 0))
            assert pager.frames.resident_count <= frames
        # The page table and the frame table agree about residency.
        assert (
            set(pager.page_table.resident_pages())
            == set(pager.frames.resident_pages())
        )
        assert pager.stats.accesses == len(trace)
        assert pager.stats.faults <= pager.stats.accesses


class TestOptimalityProperty:
    @given(trace=st.lists(st.integers(min_value=0, max_value=9),
                          min_size=1, max_size=120),
           frames=st.integers(min_value=1, max_value=5),
           rival=st.sampled_from(["fifo", "lru", "clock", "random", "lfu",
                                  "atlas", "m44"]))
    @settings(max_examples=80, deadline=None)
    def test_opt_never_loses(self, trace, frames, rival):
        opt_faults = simulate_trace(
            trace, frames, BeladyOptimalPolicy(trace)
        ).faults
        rival_faults = simulate_trace(trace, frames, make_policy(rival)).faults
        assert opt_faults <= rival_faults

    @given(trace=st.lists(st.integers(min_value=0, max_value=9),
                          min_size=1, max_size=120))
    @settings(max_examples=40, deadline=None)
    def test_fault_floor_is_distinct_page_count(self, trace):
        faults = simulate_trace(
            trace, 10, BeladyOptimalPolicy(trace)
        ).faults
        assert faults == len(set(trace))


def segment_workload():
    """Steps: (op, segment index, size-or-offset)."""
    return st.lists(
        st.tuples(
            st.sampled_from(["create", "access", "write", "destroy"]),
            st.integers(min_value=0, max_value=7),
            st.integers(min_value=1, max_value=120),
        ),
        min_size=1,
        max_size=80,
    )


class TestSegmentManagerChaos:
    @given(steps=segment_workload())
    @settings(max_examples=60, deadline=None)
    def test_arbitrary_interleavings_stay_consistent(self, steps):
        clock = Clock()
        manager = SegmentManager(
            table=SegmentTable(),
            allocator=FreeListAllocator(512, policy="best_fit"),
            backing=BackingStore(
                StorageLevel("d", 10**7, access_time=10), clock=clock
            ),
            policy=LruPolicy(),
            clock=clock,
        )
        extents: dict[str, int] = {}
        for op, index, number in steps:
            name = f"s{index}"
            if op == "create" and name not in extents:
                if number <= 256:   # segments must fit half of storage
                    manager.create(name, number)
                    extents[name] = number
            elif op in ("access", "write") and name in extents:
                try:
                    manager.access(
                        name, number % extents[name], write=(op == "write")
                    )
                except OutOfMemory:
                    pass   # legitimately unservable at this instant
            elif op == "destroy" and name in extents:
                manager.destroy(name)
                del extents[name]
            # Core invariants after every step:
            allocator = manager.allocator
            assert allocator.used_words + allocator.free_words == 512
            for resident in manager.resident_segments():
                assert resident in extents
        # Every allocator block belongs to a live resident segment.
        assert len(manager.allocator.allocations()) == len(
            manager.resident_segments()
        )
