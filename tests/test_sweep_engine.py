"""The engine's contracts: determinism, resume, damage tolerance."""

import json

import pytest

from repro.sweep.engine import (
    NONDETERMINISTIC_FIELDS,
    heartbeat_path,
    marginals,
    read_results,
    run_sweep,
    strip_nondeterministic,
    write_heartbeat,
)
from repro.sweep.grid import SweepGrid
from repro.sweep.shard import run_shard


def tiny_grid(**overrides):
    """Four fast shards: enough to exercise ordering and resume."""
    base = dict(
        name="tiny",
        machines=("baseline",),
        replacement=("lru", "fifo"),
        placement=("first_fit",),
        frames=(8,),
        capacities=(10_000,),
        seeds=(0, 1),
        length=400,
        pages=32,
        requests=200,
        mean_lifetime=60,
        programs=2,
        program_length=200,
    )
    base.update(overrides)
    return SweepGrid.from_dict(base)


def comparable(result):
    return [strip_nondeterministic(record) for record in result.records]


class TestDeterminism:
    def test_worker_count_does_not_change_results(self):
        """The tentpole contract: 1 worker and 4 workers, bit-identical
        order-normalized records and identical merged counters."""
        serial = run_sweep(tiny_grid(), workers=1)
        pooled = run_sweep(tiny_grid(), workers=4)
        assert comparable(serial) == comparable(pooled)
        assert serial.counters.snapshot() == pooled.counters.snapshot()

    def test_repeat_runs_are_bit_identical(self):
        first = run_sweep(tiny_grid(), workers=2)
        second = run_sweep(tiny_grid(), workers=2)
        assert comparable(first) == comparable(second)

    def test_shards_are_independent(self):
        """Any single shard run alone matches its in-sweep record."""
        grid = tiny_grid()
        full = run_sweep(grid, workers=1)
        shard = list(grid.shards())[2]
        alone = run_shard(shard.spec())
        matching = [r for r in full.records if r["shard"] == shard.id]
        assert [strip_nondeterministic(alone)] == [
            strip_nondeterministic(record) for record in matching
        ]

    def test_wall_time_is_the_only_tolerated_field(self):
        assert NONDETERMINISTIC_FIELDS == ("wall_s",)
        record = {"shard": "x", "wall_s": 1.0, "faults": 3}
        assert strip_nondeterministic(record) == {"shard": "x", "faults": 3}

    def test_base_seed_changes_results(self):
        a = run_sweep(tiny_grid(), workers=1)
        b = run_sweep(tiny_grid(base_seed=7), workers=1)
        assert comparable(a) != comparable(b)


class TestCheckpointing:
    def test_records_appended_as_sorted_json(self, tmp_path):
        path = tmp_path / "results.jsonl"
        result = run_sweep(tiny_grid(), workers=1, results_path=path)
        lines = path.read_text().splitlines()
        assert len(lines) == result.grid.size
        for line in lines:
            record = json.loads(line)
            assert line == json.dumps(record, sort_keys=True)

    def test_resume_skips_every_completed_shard(self, tmp_path):
        path = tmp_path / "results.jsonl"
        first = run_sweep(tiny_grid(), workers=2, results_path=path)
        again = run_sweep(tiny_grid(), workers=2, results_path=path,
                          resume=True)
        assert first.executed == 4 and first.skipped == 0
        assert again.executed == 0 and again.skipped == 4
        assert comparable(first) == comparable(again)
        assert first.counters.snapshot() == again.counters.snapshot()
        # Nothing new was appended.
        assert len(path.read_text().splitlines()) == 4

    def test_partial_file_resumes_only_the_missing_shards(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:2]) + "\n")
        resumed = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert resumed.skipped == 2 and resumed.executed == 2
        assert len(resumed.records) == 4

    def test_resume_ignores_other_grids_records(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(name="other"), workers=1, results_path=path)
        resumed = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert resumed.skipped == 0 and resumed.executed == 4

    def test_corrupt_lines_are_counted_not_fatal(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        with open(path, "a") as handle:
            handle.write("{broken\n[1, 2]\n")
        records, corrupt = read_results(path, sweep="tiny")
        assert len(records) == 4 and corrupt == 2
        resumed = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert resumed.executed == 0 and resumed.corrupt_lines == 2

    def test_without_resume_everything_re_executes(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        again = run_sweep(tiny_grid(), workers=1, results_path=path)
        assert again.executed == 4 and again.skipped == 0
        assert len(path.read_text().splitlines()) == 8


class TestFailures:
    def test_failed_shard_is_reported_not_checkpointed(self, tmp_path,
                                                       monkeypatch):
        from repro.sweep import engine

        real = engine.run_shard_safely

        def flaky(spec):
            if spec["seed"] == 1:
                return {"shard": spec["shard"], "error": "Boom: injected"}
            return real(spec)

        monkeypatch.setattr(engine, "run_shard_safely", flaky)
        path = tmp_path / "results.jsonl"
        result = run_sweep(tiny_grid(), workers=1, results_path=path)
        assert not result.ok
        assert len(result.failures) == 2
        assert len(path.read_text().splitlines()) == 2
        # A later resume re-runs exactly the failed shards.
        monkeypatch.setattr(engine, "run_shard_safely", real)
        retried = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert retried.ok
        assert retried.executed == 2 and retried.skipped == 2

    def test_exceptions_become_error_records(self):
        from repro.sweep.shard import run_shard_safely

        record = run_shard_safely({"shard": "machine=nowhere"})
        assert record["shard"] == "machine=nowhere"
        assert "error" in record

    def test_zero_workers_rejected(self):
        with pytest.raises(ValueError, match="workers"):
            run_sweep(tiny_grid(), workers=0)


class TestHeartbeat:
    def test_campaign_publishes_progress(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        beat = json.loads(heartbeat_path(path).read_text())
        assert beat["sweep"] == "tiny"
        assert beat["done"] == beat["total"] == 4
        assert beat["failed"] == 0
        assert "telemetry" in beat

    def test_replace_failure_leaves_no_tmp_litter(self, tmp_path,
                                                  monkeypatch):
        """Heartbeats are best-effort, but a persistently failing
        os.replace must not leak one .tmp per beat into the results
        directory — the failure-injection test for the cleanup path."""
        from repro.sweep import engine

        def broken_replace(src, dst):
            raise OSError("injected: target vanished")

        monkeypatch.setattr(engine.os, "replace", broken_replace)
        path = tmp_path / "results.jsonl"
        result = run_sweep(tiny_grid(), workers=1, results_path=path)
        assert result.ok                        # the campaign is unharmed
        assert len(result.records) == 4
        assert not heartbeat_path(path).exists()
        litter = [p.name for p in tmp_path.iterdir()
                  if p.name.endswith(".tmp")]
        assert litter == []

    def test_unwritable_directory_is_swallowed_and_clean(self, tmp_path):
        from repro.observe.telemetry.registry import TelemetryRegistry

        target = tmp_path / "absent" / "beat.json"
        write_heartbeat(target, "tiny", 1, 4, 0, TelemetryRegistry())
        assert not target.exists()
        assert not (tmp_path / "absent").exists()

    def test_successful_beat_replaces_atomically(self, tmp_path):
        from repro.observe.telemetry.registry import TelemetryRegistry

        target = tmp_path / "beat.json"
        write_heartbeat(target, "tiny", 1, 4, 0, TelemetryRegistry())
        write_heartbeat(target, "tiny", 2, 4, 1, TelemetryRegistry())
        beat = json.loads(target.read_text())
        assert beat["done"] == 2 and beat["failed"] == 1
        assert [p.name for p in tmp_path.iterdir()] == ["beat.json"]


class TestMarginals:
    def test_groups_by_axis_value(self):
        result = run_sweep(tiny_grid(), workers=1)
        rows = marginals(result.records, "replacement")
        assert [row[0] for row in rows] == ["fifo", "lru"]
        assert all(row[1] == 2 for row in rows)

    def test_failure_count_is_a_total(self):
        rows = marginals(
            [
                {"machine": "a", "alloc_failures": 2, "fault_rate": 0.5},
                {"machine": "a", "alloc_failures": 3, "fault_rate": 0.5},
            ],
            "machine",
        )
        assert rows[0][7] == 5
