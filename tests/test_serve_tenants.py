"""Tenant views: the FrameTable-shaped window onto a shared pool.

Covers the view's occupancy interface, quota discipline, content-key
resolution (CoW breaks are permanent), forking, the two pager hooks
(``peek_cached`` / ``note_write``), and the symbolic-segment share-key
rule from the namespace layer.
"""

import pytest

from repro.addressing import PageTable
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.namespace import SymbolicallySegmentedNameSpace, segment_share_key
from repro.paging import DemandPager, FrameTable, LruPolicy
from repro.serve import SharedFramePool, TenantView, default_share_key


class TestKeyResolution:
    def test_shared_prefix_then_private(self):
        key_for = default_share_key("t0", shared_pages=4)
        assert key_for(0) == ("shared", 0)
        assert key_for(3) == ("shared", 3)
        assert key_for(4) == ("t0", 4)

    def test_views_agree_on_shared_disagree_on_private(self):
        pool = SharedFramePool(8)
        a = TenantView(pool, "a", shared_pages=2)
        b = TenantView(pool, "b", shared_pages=2)
        assert a.key_for(1) == b.key_for(1)
        assert a.key_for(5) != b.key_for(5)

    def test_is_shared_key(self):
        view = TenantView(SharedFramePool(4), "t0", shared_pages=2)
        assert view.is_shared_key(("shared", 1))
        assert not view.is_shared_key(("t0", 5))
        assert not view.is_shared_key(7)


class TestFrameTableInterface:
    def test_acquire_release_round_trip(self):
        pool = SharedFramePool(4)
        view = TenantView(pool, "t0")
        frame = view.acquire(3)
        assert 3 in view
        assert view.frame_of(3) == frame
        assert view.owner(frame) == 3
        assert view.resident_pages() == [3]
        view.release(3)
        assert 3 not in view
        assert view.resident_count == 0

    def test_quota_bounds_residency(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", quota=2)
        view.acquire(0)
        view.acquire(1)
        assert view.is_full()
        assert view.free_count == 0
        with pytest.raises(ValueError, match="quota"):
            view.acquire(2)

    def test_double_acquire_raises(self):
        view = TenantView(SharedFramePool(4), "t0")
        view.acquire(0)
        with pytest.raises(ValueError, match="already resident"):
            view.acquire(0)

    def test_release_of_absent_page_raises(self):
        with pytest.raises(KeyError, match="not resident"):
            TenantView(SharedFramePool(4), "t0").release(9)

    def test_two_tenants_same_shared_page_one_frame(self):
        pool = SharedFramePool(4)
        a = TenantView(pool, "a", shared_pages=4)
        b = TenantView(pool, "b", shared_pages=4)
        frame_a = a.acquire(0)
        frame_b, hit = b.acquire_detail(0)
        assert frame_a == frame_b
        assert hit == "share"
        assert pool.resident_count == 1
        # Each view answers for the frame with its own local page.
        assert a.owner(frame_a) == 0
        assert b.owner(frame_a) == 0


class TestCoW:
    def test_write_to_shared_page_breaks(self):
        pool = SharedFramePool(4)
        a = TenantView(pool, "a", shared_pages=4)
        b = TenantView(pool, "b", shared_pages=4)
        shared = a.acquire(0)
        b.acquire(0)
        private = b.note_write(0)
        assert private is not None and private != shared
        assert a.frame_of(0) == shared       # the reader is undisturbed
        assert b.frame_of(0) == private
        assert pool.ref_count(("shared", 0)) == 1

    def test_write_to_private_page_is_a_no_op(self):
        view = TenantView(SharedFramePool(4), "t0", shared_pages=2)
        view.acquire(3)                      # private: key ("t0", 3)
        assert view.note_write(3) is None
        assert view.stats.cow_breaks == 0

    def test_break_survives_eviction_and_refault(self):
        pool = SharedFramePool(8)
        a = TenantView(pool, "a", shared_pages=4)
        b = TenantView(pool, "b", shared_pages=4)
        a.acquire(0)
        b.acquire(0)
        b.note_write(0)
        broken = b.key_for(0)
        b.release(0)                         # evicted...
        _, hit = b.acquire_detail(0)         # ...and refaulted
        assert b.key_for(0) == broken        # still the private copy
        assert hit == "dedup"                # its bytes were still cached
        assert pool.ref_count(("shared", 0)) == 1   # never re-shared

    def test_write_of_nonresident_page_raises(self):
        with pytest.raises(KeyError, match="not resident"):
            TenantView(SharedFramePool(4), "t0", shared_pages=2).note_write(0)

    def test_peek_cached_sees_shares_and_cached_content(self):
        pool = SharedFramePool(4)
        a = TenantView(pool, "a", shared_pages=4)
        b = TenantView(pool, "b", shared_pages=4)
        assert not b.peek_cached(0)
        a.acquire(0)
        assert b.peek_cached(0)              # a share: no fetch owed
        a.release(0)
        assert b.peek_cached(0)              # zero-ref but still cached


class TestFork:
    def test_child_shares_parent_mapping(self):
        pool = SharedFramePool(8)
        parent = TenantView(pool, "parent", shared_pages=2)
        frame = parent.acquire(0)
        child = parent.fork("child")
        assert child.acquire(0) == frame
        assert pool.ref_count(("shared", 0)) == 2

    def test_child_private_pages_are_its_own(self):
        pool = SharedFramePool(8)
        parent = TenantView(pool, "parent", shared_pages=2)
        parent.acquire(5)
        child = parent.fork("child")
        _, hit = child.acquire_detail(5)
        assert hit is None                   # distinct private content
        assert pool.resident_count == 2

    def test_parent_cow_breaks_are_not_inherited(self):
        pool = SharedFramePool(8)
        parent = TenantView(pool, "parent", shared_pages=2)
        parent.acquire(0)
        parent.note_write(0)
        child = parent.fork("child")
        assert child.key_for(0) == ("shared", 0)

    def test_custom_share_key_is_resalted(self):
        pool = SharedFramePool(8)
        space = SymbolicallySegmentedNameSpace()
        lib, = space.create_group("lib", [512])
        heap, = space.create_group("heap", [256])
        parent = TenantView(
            pool, "parent", share_key=segment_share_key("parent", {"lib"})
        )
        child = parent.fork("child")
        assert child.key_for(lib) == parent.key_for(lib) == ("shared", lib)
        assert parent.key_for(heap) == ("parent", heap)
        assert child.key_for(heap) == ("child", heap)

    def test_forked_namespace_names_stay_stable(self):
        space = SymbolicallySegmentedNameSpace()
        names = space.create_group("lib", [128, 256])
        forked = space.fork()
        for name in names:
            assert name in forked
            assert forked.address(name, 0) == space.address(name, 0)
        forked.create_group("scratch", [64])
        assert ("scratch", 0) in forked
        assert ("scratch", 0) not in space   # divergence after the fork


class TestQuotaSemantics:
    """Quota charges *logical* residency — one unit per resident local
    page, regardless of physical sharing (see the TenantView docstring).
    The traffic tier's admission ledger sums quotas against the pool, so
    these semantics are load-bearing for its overcommit arithmetic."""

    def test_shared_hit_still_charges_a_unit(self):
        pool = SharedFramePool(8)
        a = TenantView(pool, "a", quota=2, shared_pages=4)
        b = TenantView(pool, "b", quota=2, shared_pages=4)
        a.acquire(0)
        b.acquire(0)                         # physically free (a share)...
        b.acquire(1)
        assert pool.resident_count == 2      # two frames pinned in total
        assert b.resident_count == 2         # ...but logically full
        assert b.is_full()
        with pytest.raises(ValueError, match="quota"):
            b.acquire(2)

    def test_dedup_hit_still_charges_a_unit(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", quota=1, shared_pages=4)
        view.acquire(0)
        view.release(0)                      # zero-ref, content cached
        _, hit = view.acquire_detail(0)
        assert hit == "dedup"
        assert view.resident_count == 1
        assert view.is_full()

    def test_release_refunds_exactly_one_unit(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", quota=2, shared_pages=4)
        view.acquire(0)
        view.acquire(1)
        view.release(0)
        assert view.resident_count == 1
        assert not view.is_full()
        view.acquire(2)                      # the refunded unit is usable

    def test_cow_break_is_charge_neutral(self):
        pool = SharedFramePool(8)
        a = TenantView(pool, "a", quota=1, shared_pages=4)
        b = TenantView(pool, "b", quota=1, shared_pages=4)
        a.acquire(0)
        b.acquire(0)
        assert b.is_full()
        b.note_write(0)                      # new frame, same logical page
        assert b.resident_count == 1
        assert b.is_full()

    def test_quota_sum_can_exceed_physical_frames(self):
        """The overcommit bet: three tenants, quota 2 each, over a
        4-frame pool — all full, yet only 2 frames pinned."""
        pool = SharedFramePool(4)
        views = [
            TenantView(pool, f"t{i}", quota=2, shared_pages=4)
            for i in range(3)
        ]
        for view in views:
            view.acquire(0)
            view.acquire(1)
        assert all(view.is_full() for view in views)
        assert pool.resident_count == 2
        pool.check_invariants()


class TestShareKeyAliasing:
    """A share_key must map each tenant page to a distinct key; an
    aliasing map would give two local pages one frame and break the
    quota/residency bookkeeping silently."""

    def test_aliasing_share_key_is_rejected(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", share_key=lambda page: ("shared", 0))
        view.acquire(0)
        with pytest.raises(ValueError, match="already mapped"):
            view.acquire(1)

    def test_error_names_the_colliding_page_and_tenant(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "alias", share_key=lambda page: "same")
        view.acquire(7)
        with pytest.raises(ValueError, match=r"page 7.*tenant alias"):
            view.acquire(8)

    def test_rejection_leaves_no_partial_state(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", share_key=lambda page: ("k", page % 2))
        view.acquire(0)
        with pytest.raises(ValueError, match="already mapped"):
            view.acquire(2)
        assert view.resident_pages() == [0]
        assert pool.ref_total == 1
        pool.check_invariants()

    def test_honest_share_keys_are_unaffected(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0", shared_pages=2)
        for page in range(4):
            view.acquire(page)
        assert view.resident_count == 4


class TestUnregisterView:
    def test_empty_view_leaves_the_ledger(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0")
        view.acquire(0)
        view.release(0)
        pool.unregister_view(view)
        pool.check_invariants()
        # The retired view no longer shadows the conservation sums.
        other = TenantView(pool, "t1")
        other.acquire(0)
        pool.check_invariants()

    def test_resident_view_is_refused(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0")
        view.acquire(0)
        with pytest.raises(ValueError, match="t0"):
            pool.unregister_view(view)

    def test_unknown_view_is_refused(self):
        pool = SharedFramePool(8)
        stranger = TenantView(SharedFramePool(8), "elsewhere")
        with pytest.raises(ValueError, match="not registered"):
            pool.unregister_view(stranger)

    def test_double_unregister_is_refused(self):
        pool = SharedFramePool(8)
        view = TenantView(pool, "t0")
        pool.unregister_view(view)
        with pytest.raises(ValueError, match="not registered"):
            pool.unregister_view(view)


def make_pager(frames, latency=500, **view_kwargs):
    clock = Clock()
    table = PageTable(page_size=128, pages=32)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=latency, transfer_rate=1.0),
        clock=clock,
    )
    if view_kwargs:
        pool = view_kwargs.pop("pool")
        frame_source = TenantView(pool, quota=frames, **view_kwargs)
    else:
        frame_source = FrameTable(frames)
    pager = DemandPager(table, frame_source, backing, LruPolicy(), clock)
    return pager, clock


class TestPagerIntegration:
    REFS = [(0, False), (1, True), (2, False), (0, False), (3, True),
            (1, False), (4, False), (0, True), (2, False), (5, False),
            (1, True), (0, False)]

    def test_unshared_view_is_bit_identical_to_frame_table(self):
        base, base_clock = make_pager(3)
        pool = SharedFramePool(3)
        served, served_clock = make_pager(3, pool=pool, tenant="t0")
        for page, write in self.REFS:
            base.access_page(page, write=write)
            served.access_page(page, write=write)
        assert served.stats == base.stats
        assert served_clock.now == base_clock.now

    def test_pager_skips_fetch_for_shared_content(self):
        pool = SharedFramePool(8)
        warm, _ = make_pager(4, pool=pool, tenant="warm", shared_pages=32)
        cold, cold_clock = make_pager(4, pool=pool, tenant="cold",
                                      shared_pages=32)
        for page in (0, 1, 2, 3):
            warm.access_page(page)
        before = cold_clock.now
        for page in (0, 1, 2, 3):
            cold.access_page(page)
        # All four faults attached to resident frames: no transfer time
        # (the clock moves only by mapping overhead, never by a fetch).
        assert cold.stats.faults == 4
        assert cold.stats.fetch_wait_cycles == 0
        assert cold_clock.now - before < 500
        assert pool.stats.shares == 4

    def test_pager_write_breaks_cow_and_remaps(self):
        pool = SharedFramePool(8)
        reader, _ = make_pager(4, pool=pool, tenant="reader", shared_pages=32)
        writer, _ = make_pager(4, pool=pool, tenant="writer", shared_pages=32)
        reader.access_page(0)
        writer.access_page(0)
        assert pool.stats.shares == 1
        writer.access_page(0, write=True)
        assert pool.stats.cow_breaks == 1
        entry = writer.page_table.entry(0)
        # The page table follows the view to the new private frame.
        assert entry.frame == writer.frames.frame_of(0)
        assert entry.frame != reader.frames.frame_of(0)
