"""The streaming trace analyzer: windowed series and integrals."""

import pytest

from repro.observe import Evict, Fault, Free, MapLookup, Place
from repro.observe.analysis import (
    RUN,
    TraceAnalyzer,
    analyze_events,
    pick_window,
)


def paging_events():
    """Fault/evict shape (simulate_trace emits no paging ``place``)."""
    return [
        Fault(time=0, unit=1),
        Fault(time=2, unit=2),
        Evict(time=5, unit=1),
        Fault(time=6, unit=3),
    ]


class TestFaultSeries:
    def test_counts_per_window(self):
        analytics = analyze_events(paging_events(), window=4)
        assert analytics.series["faults"].values == [2.0, 1.0]

    def test_fault_rate_is_count_over_window(self):
        analytics = analyze_events(paging_events(), window=4)
        assert analytics.series["fault_rate"].values == [0.5, 0.25]

    def test_series_sum_matches_kind_count(self):
        analytics = analyze_events(paging_events(), window=3)
        assert sum(analytics.series["faults"].values) == (
            analytics.kind_counts["fault"]
        )

    def test_empty_windows_zero_filled(self):
        events = [Fault(time=0, unit=1), Fault(time=25, unit=2)]
        analytics = analyze_events(events, window=5)
        assert analytics.series["faults"].values == [1, 0, 0, 0, 0, 1]


class TestResidentGauge:
    def test_resident_at_window_close(self):
        analytics = analyze_events(paging_events(), window=4)
        # Window 0 closes after the fault at t=2 (two resident); window 1
        # sees the evict then another fault (still two).
        assert analytics.series["resident"].values == [2.0, 2.0]

    def test_gauge_carries_forward_through_quiet_windows(self):
        events = [Fault(time=0, unit=1), Fault(time=1, unit=2),
                  Evict(time=22, unit=1)]
        analytics = analyze_events(events, window=5)
        assert analytics.series["resident"].values == [2, 2, 2, 2, 1]

    def test_paging_place_counts_as_arrival(self):
        events = [Place(time=0, unit=7, where=3),      # size None: a page
                  Evict(time=4, unit=7)]
        analytics = analyze_events(events, window=10)
        assert analytics.residency_spans[0].duration() == 4
        assert analytics.series["resident"].values == [0.0]


class TestBlockOccupancy:
    def test_used_free_and_holes(self):
        events = [
            Place(time=0, unit=0, where=0, size=100),
            Place(time=1, unit=200, where=200, size=50),
            Free(time=10, address=0, size=100),
        ]
        analytics = analyze_events(events, window=8)
        # Window 0 closes with both blocks live: the 100..200 gap.
        # Window 1 closes after the free: only 200..250 is live, so the
        # space below high water is one 200-word hole.
        assert analytics.series["used_words"].values == [150.0, 50.0]
        assert analytics.series["holes"].values == [1.0, 1.0]
        assert analytics.series["free_words"].values == [100.0, 200.0]

    def test_adjacent_blocks_make_no_hole(self):
        events = [
            Place(time=0, unit=0, where=0, size=64),
            Place(time=1, unit=64, where=64, size=64),
        ]
        analytics = analyze_events(events, window=10)
        assert analytics.series["holes"].values == [0.0]
        assert analytics.series["free_words"].values == [0.0]

    def test_block_lifetime_paired(self):
        events = [
            Place(time=2, unit=0, where=0, size=32),
            Free(time=9, address=0, size=32),
        ]
        analytics = analyze_events(events, window=100)
        (span,) = analytics.block_lifetimes
        assert (span.start, span.end, span.size) == (2, 9, 32)


class TestSpaceTime:
    def test_integral_is_resident_times_elapsed(self):
        # 0..2: one unit (2), 2..5: two units (6), 5..6: one unit (1).
        analytics = analyze_events(paging_events(), window=4)
        assert analytics.series["spacetime"].final() == 9.0

    def test_per_program_split(self):
        events = [
            Fault(time=0, unit=1, program="alpha"),
            Fault(time=0, unit=2, program="beta"),
            Evict(time=4, unit=1, program="alpha"),
            Evict(time=10, unit=2, program="beta"),
        ]
        analytics = analyze_events(events, window=100)
        assert analytics.spacetime_by_program["alpha"].final() == 4.0
        assert analytics.spacetime_by_program["beta"].final() == 10.0
        # The run-wide series integrates both: 2x4 + 1x6.
        assert analytics.series["spacetime"].final() == 14.0

    def test_run_key_absent_from_program_split(self):
        analytics = analyze_events(paging_events(), window=4)
        assert RUN not in analytics.spacetime_by_program


class TestAnalyzerProtocol:
    def test_rejects_nonpositive_window(self):
        with pytest.raises(ValueError, match="window"):
            TraceAnalyzer(window=0)

    def test_accept_after_finish_rejected(self):
        analyzer = TraceAnalyzer(window=4)
        analyzer.finish()
        with pytest.raises(ValueError, match="finished"):
            analyzer.accept(Fault(time=0, unit=1))

    def test_finish_is_idempotent(self):
        analyzer = TraceAnalyzer(window=4)
        for event in paging_events():
            analyzer.accept(event)
        assert analyzer.finish() is analyzer.finish()

    def test_regressing_clock_clamped_forward(self):
        events = [Fault(time=10, unit=1), Fault(time=3, unit=2),
                  Fault(time=12, unit=3)]
        analytics = analyze_events(events, window=100)
        assert analytics.first_time == 10
        assert analytics.last_time == 12
        # The clamped event integrates no negative time.
        assert analytics.series["spacetime"].final() == 2 * 2.0

    def test_usable_as_tracer_sink(self):
        from repro.observe import Tracer

        analyzer = TraceAnalyzer(window=4)
        tracer = Tracer([analyzer])
        tracer.emit(Fault(time=0, unit=1))
        tracer.emit(Evict(time=3, unit=1))
        analytics = analyzer.finish()
        assert analytics.events == 2
        assert analytics.residency_spans[0].duration() == 3

    def test_other_kinds_counted_but_not_folded(self):
        events = [MapLookup(time=0, unit=1, associative_hit=True),
                  MapLookup(time=9, unit=2, associative_hit=False)]
        analytics = analyze_events(events, window=4)
        assert analytics.kind_counts == {"map_lookup": 2}
        assert analytics.series["resident"].values == [0, 0, 0]


class TestPickWindow:
    def test_about_target_windows(self):
        window = pick_window(0, 60_000, target=60)
        assert 50 <= 60_000 // window <= 60

    def test_tiny_span_floors_at_one(self):
        assert pick_window(5, 5) == 1
        assert pick_window(0, 30, target=60) == 1
