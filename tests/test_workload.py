"""Tests for workload generators."""

import pytest

from repro.workload import (
    AllocationRequest,
    cyclic_trace,
    exponential_requests,
    matrix_traversal_trace,
    overlay_phases_trace,
    phased_trace,
    random_trace,
    request_schedule,
    sequential_trace,
    uniform_requests,
    zipf_trace,
)


class TestReferenceTraces:
    def test_sequential(self):
        assert sequential_trace(3, sweeps=2) == [0, 1, 2, 0, 1, 2]

    def test_cyclic(self):
        assert cyclic_trace(3, 7) == [0, 1, 2, 0, 1, 2, 0]

    def test_random_is_seeded(self):
        assert random_trace(10, 50, seed=1) == random_trace(10, 50, seed=1)
        assert random_trace(10, 50, seed=1) != random_trace(10, 50, seed=2)

    def test_random_within_range(self):
        assert all(0 <= p < 10 for p in random_trace(10, 200, seed=0))

    def test_zipf_skews_to_low_pages(self):
        trace = zipf_trace(50, 5000, skew=1.5, seed=0)
        low = sum(1 for p in trace if p < 10)
        assert low > len(trace) / 2

    def test_zipf_zero_skew_is_roughly_uniform(self):
        trace = zipf_trace(10, 5000, skew=0.0, seed=0)
        counts = [trace.count(p) for p in range(10)]
        assert min(counts) > 300

    def test_phased_locality(self):
        trace = phased_trace(
            pages=100, length=1000, working_set=5, phase_length=200,
            locality=1.0, seed=3,
        )
        # With locality 1.0, each 200-reference phase touches ≤5 pages.
        for start in range(0, 1000, 200):
            phase = set(trace[start : start + 200])
            assert len(phase) <= 5

    def test_phased_is_seeded(self):
        a = phased_trace(20, 100, seed=7)
        b = phased_trace(20, 100, seed=7)
        assert a == b

    def test_validation(self):
        with pytest.raises(ValueError):
            sequential_trace(0)
        with pytest.raises(ValueError):
            cyclic_trace(3, 0)
        with pytest.raises(ValueError):
            phased_trace(10, 100, working_set=11)
        with pytest.raises(ValueError):
            phased_trace(10, 100, locality=1.5)
        with pytest.raises(ValueError):
            zipf_trace(10, 10, skew=-1)


class TestPrograms:
    def test_row_major_walks_pages_once(self):
        trace = matrix_traversal_trace(rows=8, cols=64, page_size=64, order="row")
        # Sequential: page changes only forward.
        assert trace == sorted(trace)
        assert set(trace) == set(range(8))

    def test_column_major_strides(self):
        trace = matrix_traversal_trace(rows=8, cols=64, page_size=64, order="col")
        # The first 8 references (one column) touch 8 different pages.
        assert len(set(trace[:8])) == 8

    def test_order_validation(self):
        with pytest.raises(ValueError):
            matrix_traversal_trace(2, 2, order="diagonal")

    def test_overlay_phases_touch_own_pages_plus_root(self):
        trace = overlay_phases_trace(
            phases=3, pages_per_phase=4, shared_pages=1,
            references_per_phase=100, seed=0,
        )
        first_phase = set(trace[:100])
        assert first_phase <= {0, 1, 2, 3, 4}
        last_phase = set(trace[200:])
        assert last_phase <= {0, 9, 10, 11, 12}

    def test_overlay_validation(self):
        with pytest.raises(ValueError):
            overlay_phases_trace(0, 1)
        with pytest.raises(ValueError):
            overlay_phases_trace(1, 1, shared_pages=-1)


class TestAllocationRequests:
    def test_uniform_sizes_in_range(self):
        requests = uniform_requests(100, 10, 50, mean_lifetime=20, seed=0)
        assert all(10 <= r.size <= 50 for r in requests)
        assert all(r.lifetime >= 1 for r in requests)

    def test_arrivals_spaced(self):
        requests = uniform_requests(5, 1, 2, mean_lifetime=3, interarrival=7)
        assert [r.arrival for r in requests] == [0, 7, 14, 21, 28]

    def test_exponential_mean_roughly_right(self):
        requests = exponential_requests(2000, mean_size=40, mean_lifetime=30,
                                        seed=1)
        mean = sum(r.size for r in requests) / len(requests)
        assert 30 < mean < 50

    def test_exponential_cap(self):
        requests = exponential_requests(500, mean_size=100, mean_lifetime=10,
                                        max_size=120, seed=2)
        assert max(r.size for r in requests) <= 120

    def test_seeded(self):
        a = exponential_requests(50, 10, 10, seed=5)
        b = exponential_requests(50, 10, 10, seed=5)
        assert a == b

    def test_request_validation(self):
        with pytest.raises(ValueError):
            AllocationRequest(arrival=-1, size=1, lifetime=1)
        with pytest.raises(ValueError):
            AllocationRequest(arrival=0, size=0, lifetime=1)
        with pytest.raises(ValueError):
            AllocationRequest(arrival=0, size=1, lifetime=0)

    def test_departure(self):
        assert AllocationRequest(arrival=5, size=1, lifetime=10).departure == 15


class TestRequestSchedule:
    def test_interleaves_in_time_order(self):
        requests = [
            AllocationRequest(arrival=0, size=10, lifetime=5),
            AllocationRequest(arrival=2, size=20, lifetime=10),
        ]
        events = list(request_schedule(requests))
        times = [t for t, _, _ in events]
        assert times == sorted(times)
        assert [a for _, a, _ in events] == [
            "allocate", "allocate", "free", "free"
        ]

    def test_free_before_allocate_at_same_instant(self):
        requests = [
            AllocationRequest(arrival=0, size=10, lifetime=5),
            AllocationRequest(arrival=5, size=20, lifetime=5),
        ]
        events = list(request_schedule(requests))
        at_five = [(action, r.size) for t, action, r in events if t == 5]
        assert at_five == [("free", 10), ("allocate", 20)]

    def test_generator_validation(self):
        with pytest.raises(ValueError):
            uniform_requests(0, 1, 2, 3)
        with pytest.raises(ValueError):
            uniform_requests(1, 5, 2, 3)
        with pytest.raises(ValueError):
            exponential_requests(1, 0, 3)


class TestExplicitRng:
    """Generators accept a shared ``rng`` that wins over ``seed``."""

    def test_rng_matches_equivalent_seed(self):
        import random

        assert random_trace(16, 50, rng=random.Random(7)) == random_trace(
            16, 50, seed=7
        )
        assert zipf_trace(16, 50, rng=random.Random(7)) == zipf_trace(
            16, 50, seed=7
        )
        assert phased_trace(16, 50, rng=random.Random(7)) == phased_trace(
            16, 50, seed=7
        )
        assert overlay_phases_trace(3, 4, rng=random.Random(7)) == (
            overlay_phases_trace(3, 4, seed=7)
        )
        assert uniform_requests(5, 1, 9, 3, rng=random.Random(7)) == (
            uniform_requests(5, 1, 9, 3, seed=7)
        )
        assert exponential_requests(5, 10, 3, rng=random.Random(7)) == (
            exponential_requests(5, 10, 3, seed=7)
        )

    def test_rng_takes_precedence_over_seed(self):
        import random

        with_rng = random_trace(16, 50, seed=999, rng=random.Random(7))
        assert with_rng == random_trace(16, 50, seed=7)

    def test_shared_rng_advances_between_calls(self):
        import random

        rng = random.Random(7)
        first = random_trace(16, 50, rng=rng)
        second = random_trace(16, 50, rng=rng)
        assert first != second   # the stream continued, not restarted
