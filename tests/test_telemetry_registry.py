"""TelemetryRegistry: instrument lifecycle, snapshots, merge, null form."""

import pickle

import pytest

from repro.observe.telemetry.registry import (
    NULL_TELEMETRY,
    TelemetryRegistry,
    WALL_CLOCK_SUFFIX,
    as_telemetry,
)
from repro.observe.telemetry.sketch import LogHistogram
from repro.observe.telemetry.spans import NULL_SPAN


class TestInstruments:
    def test_counter_is_idempotent(self):
        registry = TelemetryRegistry()
        first = registry.counter("replay.refs")
        first.increment(3)
        assert registry.counter("replay.refs") is first
        assert registry.counter_value("replay.refs") == 3

    def test_counter_cannot_decrease(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError, match="cannot decrease"):
            registry.counter("x").increment(-1)

    def test_gauge_is_last_write_wins(self):
        registry = TelemetryRegistry()
        registry.gauge("pool.resident").set(5)
        registry.gauge("pool.resident").set(2)
        assert registry.gauge_value("pool.resident") == 2

    def test_histogram_records_unit_on_first_use(self):
        registry = TelemetryRegistry()
        registry.histogram("alloc.request_words", unit="words").observe(8)
        assert registry.unit("alloc.request_words") == "words"
        assert registry.unit("never.registered") == ""

    def test_name_is_one_kind_only(self):
        registry = TelemetryRegistry()
        registry.counter("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.gauge("x")
        with pytest.raises(ValueError, match="already registered"):
            registry.histogram("x")

    def test_bad_names_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(TypeError):
            registry.counter("")
        with pytest.raises(TypeError):
            registry.gauge(None)

    def test_unread_instruments_read_as_zero(self):
        registry = TelemetryRegistry()
        assert registry.counter_value("no.such") == 0
        assert registry.gauge_value("no.such") == 0
        assert registry.histogram_sketch("no.such") is None


class TestSpans:
    def test_wall_clock_span_requires_seconds_suffix(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError, match=WALL_CLOCK_SUFFIX):
            registry.span("pool.acquire")

    def test_wall_clock_span_records_durations(self):
        registry = TelemetryRegistry()
        span = registry.span("pool.acquire_seconds")
        with span:
            pass
        sketch = registry.histogram_sketch("pool.acquire_seconds")
        assert sketch.count == 1
        assert registry.unit("pool.acquire_seconds") == "seconds"

    def test_injected_clock_needs_no_suffix(self):
        registry = TelemetryRegistry()
        ticks = iter(range(0, 100, 7))
        span = registry.span("fault.cycles", clock=lambda: next(ticks))
        with span:
            pass
        assert registry.histogram_sketch("fault.cycles").maximum == 7


class TestDisabledRegistry:
    def test_instruments_are_noops(self):
        registry = TelemetryRegistry(enabled=False)
        registry.counter("x").increment(5)
        registry.gauge("y").set(2)
        registry.histogram("z").observe(1)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {}
        assert snapshot["gauges"] == {}
        assert snapshot["histograms"] == {}

    def test_span_is_the_null_span(self):
        registry = TelemetryRegistry(enabled=False)
        span = registry.span("anything.goes")
        assert span is NULL_SPAN
        with span:
            pass
        assert not span

    def test_bool_reflects_enabled(self):
        assert TelemetryRegistry()
        assert not TelemetryRegistry(enabled=False)

    def test_null_telemetry_cannot_be_enabled(self):
        assert not NULL_TELEMETRY.enabled
        with pytest.raises(AttributeError, match="cannot be enabled"):
            NULL_TELEMETRY.enabled = True

    def test_as_telemetry_normalizes(self):
        assert as_telemetry(None) is NULL_TELEMETRY
        registry = TelemetryRegistry()
        assert as_telemetry(registry) is registry


class TestSnapshots:
    def filled(self):
        registry = TelemetryRegistry()
        registry.counter("replay.faults").increment(7)
        registry.gauge("pool.resident").set(12)
        registry.histogram("replay.fault_gap", unit="refs").observe_many(
            [1, 4, 64]
        )
        ticks = iter(range(0, 1000, 5))
        with registry.span("shard.wall_seconds",
                           clock=lambda: next(ticks)):
            pass
        return registry

    def test_snapshot_is_json_and_pickle_safe(self):
        import json

        snapshot = self.filled().snapshot()
        assert json.loads(json.dumps(snapshot)) == snapshot
        assert pickle.loads(pickle.dumps(snapshot)) == snapshot

    def test_snapshot_sections_are_sorted(self):
        registry = TelemetryRegistry()
        registry.counter("b").increment()
        registry.counter("a").increment()
        assert list(registry.snapshot()["counters"]) == ["a", "b"]

    def test_deterministic_snapshot_strips_wall_clock(self):
        snapshot = self.filled().deterministic_snapshot()
        names = [name for section in snapshot.values()
                 for name in section]
        assert "shard.wall_seconds" not in names
        assert "replay.faults" in snapshot["counters"]
        assert "replay.fault_gap" in snapshot["histograms"]

    def test_merge_snapshot_sums_maxes_and_merges(self):
        first, second = self.filled(), self.filled()
        second.gauge("pool.resident").set(30)
        parent = TelemetryRegistry()
        parent.merge_snapshot(first.snapshot())
        parent.merge_snapshot(second.snapshot())
        assert parent.counter_value("replay.faults") == 14
        assert parent.gauge_value("pool.resident") == 30
        assert parent.histogram_sketch("replay.fault_gap").count == 6
        assert parent.unit("replay.fault_gap") == "refs"

    def test_merge_order_does_not_matter(self):
        first, second = self.filled(), self.filled()
        second.counter("extra").increment(2)
        ab = TelemetryRegistry()
        ab.merge_snapshot(first.snapshot())
        ab.merge_snapshot(second.snapshot())
        ba = TelemetryRegistry()
        ba.merge_snapshot(second.snapshot())
        ba.merge_snapshot(first.snapshot())
        assert ab.deterministic_snapshot() == ba.deterministic_snapshot()

    def test_from_snapshot_round_trips(self):
        registry = self.filled()
        clone = TelemetryRegistry.from_snapshot(registry.snapshot())
        assert clone.snapshot() == registry.snapshot()

    def test_unknown_section_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry"):
            TelemetryRegistry().merge_snapshot({"surprise": {}})

    def test_mistyped_counter_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(TypeError, match="must be an int"):
            registry.merge_snapshot({"counters": {"x": "7"}})
        with pytest.raises(TypeError, match="must be an int"):
            registry.merge_snapshot({"counters": {"x": True}})

    def test_mistyped_gauge_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(TypeError, match="must be a number"):
            registry.merge_snapshot({"gauges": {"x": [1]}})

    def test_malformed_histogram_rejected(self):
        registry = TelemetryRegistry()
        with pytest.raises(ValueError, match="malformed"):
            registry.merge_snapshot({"histograms": {"x": {"bad": 1}}})

    def test_merged_histogram_is_exact(self):
        """Registry-level fan-in inherits the sketch's exact merge."""
        whole = LogHistogram()
        parent = TelemetryRegistry()
        for shard_values in ([1, 2, 3], [100, 200], [0, 7]):
            worker = TelemetryRegistry()
            sketch = worker.histogram("gap")
            for value in shard_values:
                sketch.observe(value)
                whole.observe(value)
            parent.merge_snapshot(worker.snapshot())
        assert (parent.histogram_sketch("gap").to_dict()
                == whole.to_dict())
