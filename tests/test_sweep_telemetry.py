"""The sweep ↔ telemetry seam: shard registries, heartbeat, --live CLI."""

import io
import json

import pytest

from repro.observe.telemetry import TelemetryRegistry
from repro.sweep.engine import (
    deterministic_telemetry,
    heartbeat_path,
    run_sweep,
    strip_nondeterministic,
    write_heartbeat,
)
from repro.sweep.grid import SweepGrid
from repro.sweep.shard import run_shard


def tiny_grid(**overrides):
    base = dict(
        name="tele-seam",
        machines=("baseline",),
        replacement=("lru",),
        placement=("first_fit",),
        frames=(8,),
        capacities=(10_000,),
        seeds=(0,),
        length=300,
        pages=32,
        requests=150,
        mean_lifetime=60,
        programs=2,
        program_length=150,
    )
    base.update(overrides)
    return SweepGrid.from_dict(base)


class TestShardTelemetry:
    def spec(self, **overrides):
        spec = next(iter(tiny_grid().shards())).spec()
        spec.update(overrides)
        return spec

    def test_record_carries_a_snapshot(self):
        record = run_shard(self.spec())
        snapshot = record["telemetry"]
        # The replay leg's 300 references, plus the serve leg's tenant
        # replays folded in under the same prefix.
        assert snapshot["counters"]["replay.references"] >= 300
        assert "replay.fault_gap" in snapshot["histograms"]
        assert "alloc.request_words" in snapshot["histograms"]
        assert "serve.tenant_faults" in snapshot["histograms"]

    def test_shard_leg_spans_are_recorded(self):
        snapshot = run_shard(self.spec())["telemetry"]
        for leg in ("sweep.shard_seconds", "sweep.replay_seconds",
                    "sweep.churn_seconds", "sweep.serve_seconds"):
            assert snapshot["histograms"][leg]["count"] == 1

    def test_telemetry_false_omits_the_snapshot(self):
        record = run_shard(self.spec(telemetry=False))
        assert "telemetry" not in record

    def test_telemetry_does_not_change_the_shard_record(self):
        on = run_shard(self.spec())
        off = run_shard(self.spec(telemetry=False))
        on_comparable = {key: value for key, value in on.items()
                         if key not in ("telemetry", "wall_s")}
        off_comparable = {key: value for key, value in off.items()
                          if key != "wall_s"}
        assert on_comparable == off_comparable

    def test_snapshot_is_json_serializable(self):
        record = run_shard(self.spec())
        assert json.loads(json.dumps(record["telemetry"])) \
            == record["telemetry"]


class TestDeterministicTelemetry:
    def test_strips_seconds_from_every_section(self):
        registry = TelemetryRegistry()
        registry.counter("replay.faults").increment(2)
        with registry.span("leg.wall_seconds"):
            pass
        stripped = deterministic_telemetry(
            json.loads(json.dumps(registry.snapshot()))
        )
        assert "leg.wall_seconds" not in stripped["histograms"]
        assert "leg.wall_seconds" not in stripped["units"]
        assert stripped["counters"] == {"replay.faults": 2}

    def test_matches_the_registry_method(self):
        registry = TelemetryRegistry()
        registry.histogram("gap").observe_many([1, 2])
        with registry.span("x_seconds"):
            pass
        assert deterministic_telemetry(registry.snapshot()) \
            == registry.deterministic_snapshot()

    def test_strip_nondeterministic_reduces_not_drops(self):
        record = run_shard(
            next(iter(tiny_grid().shards())).spec()
        )
        stripped = strip_nondeterministic(record)
        assert "wall_s" not in stripped
        assert "telemetry" in stripped
        assert "sweep.shard_seconds" \
            not in stripped["telemetry"]["histograms"]
        assert "replay.fault_gap" in stripped["telemetry"]["histograms"]


class TestSweepResultTelemetry:
    def test_merged_registry_sums_the_shards(self):
        grid = tiny_grid(seeds=(0, 1))
        result = run_sweep(grid, workers=1)
        per_shard = [run_shard(shard.spec()) for shard in grid.shards()]
        expected = TelemetryRegistry()
        for record in per_shard:
            expected.merge_snapshot(record["telemetry"])
        assert result.telemetry.deterministic_snapshot() \
            == expected.deterministic_snapshot()

    def test_resume_folds_prior_telemetry_back_in(self, tmp_path):
        results = tmp_path / "results.jsonl"
        grid = tiny_grid(seeds=(0, 1))
        full = run_sweep(grid, workers=1, results_path=results)
        resumed = run_sweep(grid, workers=1, results_path=results,
                            resume=True)
        assert resumed.executed == 0
        assert resumed.skipped == 2
        assert resumed.telemetry.deterministic_snapshot() \
            == full.telemetry.deterministic_snapshot()


class TestHeartbeat:
    def test_path_sits_next_to_the_results_file(self, tmp_path):
        results = tmp_path / "campaign.jsonl"
        assert heartbeat_path(results) \
            == tmp_path / "campaign.jsonl.telemetry.json"

    def test_sweep_writes_a_live_heartbeat(self, tmp_path):
        results = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=results)
        payload = json.loads(heartbeat_path(results).read_text())
        assert payload["sweep"] == "tele-seam"
        assert payload["done"] == payload["total"] == 1
        assert payload["failed"] == 0
        assert payload["telemetry"]["counters"]["replay.references"] >= 300

    def test_write_is_atomic_no_tmp_left_behind(self, tmp_path):
        target = tmp_path / "hb.json"
        write_heartbeat(target, "g", 1, 2, 0, TelemetryRegistry())
        assert target.exists()
        assert not list(tmp_path.glob("*.tmp"))

    def test_unwritable_path_is_swallowed(self, tmp_path):
        missing_dir = tmp_path / "no" / "such" / "dir" / "hb.json"
        write_heartbeat(missing_dir, "g", 1, 2, 0, TelemetryRegistry())

    def test_heartbeat_feeds_top(self, tmp_path):
        from repro.observe.telemetry.cli import run_top

        results = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=results)
        out = io.StringIO()
        assert run_top(["--once", "--snapshot",
                        str(heartbeat_path(results))], stream=out) == 0
        text = out.getvalue()
        assert "sweep=tele-seam" in text
        assert "replay.fault_gap" in text


class TestSweepLiveCli:
    def test_live_flag_renders_frames_without_a_tty(self, tmp_path,
                                                    capsys):
        from repro.sweep.cli import main

        results = tmp_path / "live.jsonl"
        assert main(["--quick", "--live", "--workers", "1",
                     "--results", str(results), "--seeds", "0",
                     "--machines", "baseline", "--replacement", "lru",
                     "--frames", "8", "--no-report"]) == 0
        out = capsys.readouterr().out
        assert "sweep --live" in out
        assert "merged shard telemetry" in out
        assert "\x1b[" not in out      # plain-text fallback, no ANSI
