"""Tests for the simulated clock."""

import pytest

from repro.clock import Clock, StopWatch


class TestClock:
    def test_starts_at_zero(self):
        assert Clock().now == 0

    def test_starts_at_given_time(self):
        assert Clock(start=42).now == 42

    def test_rejects_negative_start(self):
        with pytest.raises(ValueError):
            Clock(start=-1)

    def test_advance_accumulates(self):
        clock = Clock()
        clock.advance(3)
        clock.advance(4)
        assert clock.now == 7

    def test_advance_by_zero_is_allowed(self):
        clock = Clock()
        clock.advance(0)
        assert clock.now == 0

    def test_advance_rejects_negative(self):
        clock = Clock()
        with pytest.raises(ValueError):
            clock.advance(-1)

    def test_advance_to_absolute_time(self):
        clock = Clock()
        clock.advance_to(100)
        assert clock.now == 100

    def test_advance_to_rejects_past(self):
        clock = Clock(start=50)
        with pytest.raises(ValueError):
            clock.advance_to(49)

    def test_advance_to_current_time_is_noop(self):
        clock = Clock(start=50)
        clock.advance_to(50)
        assert clock.now == 50

    def test_reset(self):
        clock = Clock()
        clock.advance(99)
        clock.reset()
        assert clock.now == 0

    def test_repr_mentions_now(self):
        clock = Clock()
        clock.advance(5)
        assert "5" in repr(clock)


class TestStopWatch:
    def test_elapsed_tracks_clock(self):
        clock = Clock()
        watch = StopWatch(clock)
        clock.advance(10)
        assert watch.elapsed == 10

    def test_elapsed_starts_at_zero(self):
        assert StopWatch(Clock()).elapsed == 0

    def test_restart_returns_elapsed_and_rebases(self):
        clock = Clock()
        watch = StopWatch(clock)
        clock.advance(7)
        assert watch.restart() == 7
        clock.advance(3)
        assert watch.elapsed == 3

    def test_watch_started_mid_simulation(self):
        clock = Clock()
        clock.advance(100)
        watch = StopWatch(clock)
        clock.advance(1)
        assert watch.elapsed == 1
