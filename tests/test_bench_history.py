"""The bench trajectory: history records, comparison, regression gate."""

import copy
import json

import pytest

from repro import bench


def canned_report(scale=1.0, quick=True):
    """A run_suite-shaped report with deterministic throughputs."""
    return {
        "schema": 1,
        "created": "2026-08-06T00:00:00+00:00",
        "quick": quick,
        "replay": {
            "references": 60_000, "frames": 24, "pages": 256,
            "policies": {
                "lru": {
                    "faults": 100, "reference_s": 1.0, "fast_s": 0.1,
                    "speedup": 10.0,
                    "reference_refs_per_s": int(60_000 * scale),
                    "fast_refs_per_s": int(600_000 * scale),
                },
            },
        },
        "alloc": {
            "requests": 2_000, "capacity": 80_000, "mean_lifetime": 400,
            "policies": {
                "best_fit": {
                    "failures": 0, "linear_s": 0.5, "indexed_s": 0.05,
                    "speedup": 10.0, "ops": 4_000,
                    "linear_ops_per_s": int(8_000 * scale),
                    "indexed_ops_per_s": int(80_000 * scale),
                },
            },
        },
    }


class TestHistoryRecord:
    def test_flattens_every_throughput_metric(self):
        record = bench.history_record(canned_report(), rev="abc1234")
        assert record["schema"] == 1
        assert record["rev"] == "abc1234"
        assert record["quick"] is True
        assert record["created"] == "2026-08-06T00:00:00+00:00"
        assert record["metrics"] == {
            "replay.lru.reference_refs_per_s": 60_000,
            "replay.lru.fast_refs_per_s": 600_000,
            "alloc.best_fit.linear_ops_per_s": 8_000,
            "alloc.best_fit.indexed_ops_per_s": 80_000,
        }

    def test_append_and_read_round_trip(self, tmp_path):
        path = tmp_path / "history.jsonl"
        first = bench.history_record(canned_report(), rev="aaa")
        second = bench.history_record(canned_report(scale=1.1), rev="bbb")
        bench.append_history(first, path)
        bench.append_history(second, path)
        assert bench.read_history(path) == [first, second]

    def test_read_skips_damaged_lines(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = bench.history_record(canned_report())
        path.write_text(
            "not json\n"
            + json.dumps(good) + "\n"
            + '{"schema": 1, "no_metrics": true}\n'
        )
        assert bench.read_history(path) == [good]

    def test_read_missing_file_is_empty(self, tmp_path):
        assert bench.read_history(tmp_path / "absent.jsonl") == []

    def test_last_comparable_matches_size_class(self):
        quick = bench.history_record(canned_report(quick=True))
        full = bench.history_record(canned_report(quick=False))
        records = [full, quick, full]
        assert bench.last_comparable(records, quick=True) is quick
        assert bench.last_comparable(records, quick=False) is records[-1]
        assert bench.last_comparable([quick], quick=False) is None


class TestCompareRecords:
    def test_regression_past_threshold_flagged(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report(scale=0.8))
        regressions = bench.compare_records(current, baseline, threshold=0.15)
        assert len(regressions) == 4
        assert all(row["change"] == -0.2 for row in regressions)
        assert regressions[0]["baseline"] > regressions[0]["current"]

    def test_sub_threshold_noise_ignored(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report(scale=0.9))
        assert bench.compare_records(current, baseline, threshold=0.15) == []

    def test_improvement_never_flagged(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report(scale=2.0))
        assert bench.compare_records(current, baseline) == []

    def test_new_metrics_skipped(self):
        baseline = bench.history_record(canned_report())
        del baseline["metrics"]["replay.lru.fast_refs_per_s"]
        current = bench.history_record(canned_report(scale=0.5))
        flagged = {
            row["metric"]
            for row in bench.compare_records(current, baseline)
        }
        assert "replay.lru.fast_refs_per_s" not in flagged
        assert len(flagged) == 3


class TestCliRegressionGate:
    @pytest.fixture()
    def fake_suite(self, monkeypatch):
        """Replace the real timing suite with the canned report."""
        state = {"scale": 1.0}

        def fake_run_suite(quick=False, trace_file=None):
            return copy.deepcopy(canned_report(scale=state["scale"],
                                               quick=quick))

        monkeypatch.setattr(bench, "run_suite", fake_run_suite)
        return state

    def run_main(self, tmp_path, extra=()):
        history = tmp_path / "history.jsonl"
        return bench.main([
            "--quick", "--no-write", "--history", str(history), *extra,
        ]), history

    def test_injected_regression_exits_nonzero(self, tmp_path, fake_suite,
                                               capsys):
        baseline = bench.history_record(canned_report(scale=1.0))
        history = tmp_path / "history.jsonl"
        bench.append_history(baseline, history)
        fake_suite["scale"] = 0.8       # 20% slower than recorded
        status = bench.main([
            "--quick", "--no-write", "--history", str(history), "--compare",
        ])
        assert status == 1
        assert "REGRESSION" in capsys.readouterr().out

    def test_steady_throughput_exits_zero(self, tmp_path, fake_suite, capsys):
        baseline = bench.history_record(canned_report(scale=1.0))
        history = tmp_path / "history.jsonl"
        bench.append_history(baseline, history)
        status = bench.main([
            "--quick", "--no-write", "--history", str(history), "--compare",
        ])
        assert status == 0
        assert "no regressions past 15%" in capsys.readouterr().out

    def test_first_run_has_no_baseline(self, tmp_path, fake_suite, capsys):
        status, history = self.run_main(tmp_path, extra=("--compare",))
        assert status == 0
        assert "recording this one as the baseline" in capsys.readouterr().out
        # The run itself was still recorded for next time.
        assert len(bench.read_history(history)) == 1

    def test_every_run_appends_to_history(self, tmp_path, fake_suite):
        _, history = self.run_main(tmp_path)
        status, _ = self.run_main(tmp_path)
        assert status == 0
        records = bench.read_history(history)
        assert len(records) == 2
        assert all(record["quick"] for record in records)

    def test_no_history_flag_skips_the_append(self, tmp_path, fake_suite):
        _, history = self.run_main(tmp_path, extra=("--no-history",))
        assert not history.exists()

    def test_full_history_never_compared_against_quick(self, tmp_path,
                                                       fake_suite, capsys):
        full_baseline = bench.history_record(canned_report(quick=False))
        history = tmp_path / "history.jsonl"
        bench.append_history(full_baseline, history)
        fake_suite["scale"] = 0.5       # would regress against full sizes
        status = bench.main([
            "--quick", "--no-write", "--history", str(history), "--compare",
        ])
        assert status == 0
        assert "no comparable quick run" in capsys.readouterr().out

    def test_bad_threshold_rejected(self, tmp_path, fake_suite):
        with pytest.raises(SystemExit, match="--threshold"):
            bench.main(["--quick", "--no-write", "--threshold", "1.5"])


def test_git_revision_shape():
    rev = bench.git_revision()
    assert rev is None or (isinstance(rev, str) and 4 <= len(rev) <= 40)
