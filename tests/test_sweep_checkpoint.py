"""The hardened checkpoint seam: torn lines, interrupts, terminal beats.

The campaign's one durable artifact is ``SWEEP_results.jsonl``; these
tests pin the three ways it used to go wrong — a torn line under
interrupt, a resume that re-ran healthy shards after damage, and a
heartbeat that kept followers polling a dead campaign forever.
"""

import io
import json
import os

import pytest

from repro.observe.telemetry.dashboard import TERMINAL_STATES
from repro.sweep.checkpoint import (
    CheckpointWriter,
    canonical_lines,
    strip_nondeterministic,
)
from repro.sweep.engine import heartbeat_path, read_results, run_sweep
from repro.sweep.grid import SweepGrid


def tiny_grid(**overrides):
    base = dict(
        name="tiny",
        machines=("baseline",),
        replacement=("lru", "fifo"),
        placement=("first_fit",),
        frames=(8,),
        capacities=(10_000,),
        seeds=(0, 1),
        length=400,
        pages=32,
        requests=200,
        mean_lifetime=60,
        programs=2,
        program_length=200,
    )
    base.update(overrides)
    return SweepGrid.from_dict(base)


class TestCheckpointWriter:
    def test_each_record_is_one_sorted_json_line(self, tmp_path):
        path = tmp_path / "results.jsonl"
        with CheckpointWriter(path) as writer:
            line = writer.append({"b": 2, "a": 1, "shard": "s"})
        assert line == json.dumps({"a": 1, "b": 2, "shard": "s"},
                                  sort_keys=True) + "\n"
        assert path.read_text() == line

    def test_each_record_is_exactly_one_os_write(self, tmp_path,
                                                 monkeypatch):
        """The torn-line fix by construction: serialize to one string,
        hand the kernel one write.  No second call, no userspace buffer
        to flush, no window for a half-line."""
        calls = []
        real_write = os.write

        def counting_write(fd, data):
            calls.append(bytes(data))
            return real_write(fd, data)

        writer = CheckpointWriter(tmp_path / "results.jsonl")
        monkeypatch.setattr(os, "write", counting_write)
        writer.append({"shard": "a", "value": 1})
        writer.append({"shard": "b", "value": 2})
        monkeypatch.undo()
        writer.close()
        assert len(calls) == 2
        for data in calls:
            assert data.endswith(b"\n") and data.count(b"\n") == 1

    def test_closed_writer_refuses_appends(self, tmp_path):
        writer = CheckpointWriter(tmp_path / "results.jsonl")
        writer.close()
        with pytest.raises(ValueError, match="closed"):
            writer.append({"shard": "s"})
        writer.close()   # idempotent

    def test_concurrent_appenders_interleave_at_line_boundaries(
            self, tmp_path):
        """O_APPEND: two writers on one file, alternating — every line
        must parse, none may interleave mid-record."""
        path = tmp_path / "results.jsonl"
        with CheckpointWriter(path) as one, CheckpointWriter(path) as two:
            for index in range(20):
                (one if index % 2 else two).append(
                    {"shard": f"s{index:02d}", "payload": "x" * 200})
        lines = path.read_text().splitlines()
        assert len(lines) == 20
        assert {json.loads(line)["shard"] for line in lines} \
            == {f"s{index:02d}" for index in range(20)}


class TestInterruptInjection:
    @pytest.mark.parametrize("stop_after", [1, 2, 3])
    def test_interrupt_never_leaves_a_torn_line(self, tmp_path,
                                                stop_after):
        """Satellite of the seam: kill the campaign (^C) inside the
        progress callback after N shards — the record the callback was
        told about is already durable, and ``read_results`` sees N
        whole lines and zero corruption."""
        path = tmp_path / "results.jsonl"

        def interrupter(done, total, record):
            if done >= stop_after:
                raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(tiny_grid(), workers=1, results_path=path,
                      progress=interrupter)
        records, corrupt = read_results(path, sweep="tiny")
        assert corrupt == 0
        assert len(records) == stop_after
        # And the resumed campaign finishes exactly the remainder.
        resumed = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert resumed.skipped == stop_after
        assert resumed.executed == 4 - stop_after

    def test_interrupted_campaign_writes_an_aborted_heartbeat(
            self, tmp_path):
        path = tmp_path / "results.jsonl"

        def interrupter(done, total, record):
            raise KeyboardInterrupt

        with pytest.raises(KeyboardInterrupt):
            run_sweep(tiny_grid(), workers=1, results_path=path,
                      progress=interrupter)
        beat = json.loads(heartbeat_path(path).read_text())
        assert beat["state"] == "aborted"


class TestTerminalHeartbeat:
    def test_finished_campaign_stamps_finished(self, tmp_path):
        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        beat = json.loads(heartbeat_path(path).read_text())
        assert beat["state"] == "finished"
        assert beat["done"] == beat["total"] == 4

    def test_terminal_states_are_the_published_pair(self):
        assert set(TERMINAL_STATES) == {"finished", "aborted"}

    def test_failed_shards_still_finish_the_campaign(self, tmp_path,
                                                     monkeypatch):
        """'finished' means the coordinator ran to completion — failed
        shards are in the failure list, not grounds for 'aborted'."""
        from repro.sweep import engine

        monkeypatch.setattr(
            engine, "run_shard_safely",
            lambda spec: {"shard": spec["shard"], "error": "Boom"})
        path = tmp_path / "results.jsonl"
        result = run_sweep(tiny_grid(), workers=1, results_path=path)
        assert not result.ok
        beat = json.loads(heartbeat_path(path).read_text())
        assert beat["state"] == "finished"
        assert beat["failed"] == 4

    def test_top_snapshot_stops_following_a_terminal_beat(self, tmp_path):
        """The stale-heartbeat bugfix: without a terminal marker,
        ``top --snapshot`` (no --once) followed a dead campaign's file
        forever.  On a terminal state it renders the marker and
        returns."""
        from repro.observe.telemetry.cli import run_top

        path = tmp_path / "results.jsonl"
        run_sweep(tiny_grid(), workers=1, results_path=path)
        stream = io.StringIO()
        status = run_top(
            ["--snapshot", str(heartbeat_path(path))], stream=stream)
        assert status == 0   # returned — did not spin on a dead file
        out = stream.getvalue()
        assert "campaign finished" in out
        assert "state=finished" in out

    def test_top_snapshot_still_renders_running_beats_once(self, tmp_path):
        from repro.observe.telemetry.cli import run_top

        beat = tmp_path / "beat.json"
        beat.write_text(json.dumps({
            "sweep": "tiny", "done": 1, "total": 4, "failed": 0,
            "state": "running", "telemetry": {},
        }))
        stream = io.StringIO()
        status = run_top(["--snapshot", str(beat), "--once"],
                         stream=stream)
        assert status == 0
        assert "campaign" not in stream.getvalue().splitlines()[-1]


class TestResumeAfterCorruption:
    def truncate_last_line(self, path):
        """Tear the trailing record the way a crash mid-write would."""
        text = path.read_text()
        lines = text.splitlines(keepends=True)
        torn = lines[-1][: len(lines[-1]) // 2]
        path.write_text("".join(lines[:-1]) + torn)
        return json.loads(lines[-1])["shard"]

    def test_resume_re_executes_exactly_the_torn_shard(self, tmp_path):
        path = tmp_path / "results.jsonl"
        fresh = run_sweep(tiny_grid(), workers=1, results_path=path)
        torn_shard = self.truncate_last_line(path)

        resumed = run_sweep(tiny_grid(), workers=1, results_path=path,
                            resume=True)
        assert resumed.corrupt_lines == 1
        assert resumed.skipped == 3
        assert resumed.executed == 1
        assert len(resumed.records) == 4
        # Determinism makes the repair invisible: the re-executed
        # shard reproduces its torn record bit for bit.
        assert canonical_lines(resumed.records) \
            == canonical_lines(fresh.records)
        assert torn_shard in {r["shard"] for r in resumed.records}

    def test_cli_summary_surfaces_the_corrupt_count(self, tmp_path,
                                                    capsys):
        from repro.sweep.cli import main

        path = tmp_path / "results.jsonl"
        argv = ["--name", "tiny", "--quick", "--machines", "baseline",
                "--replacement", "lru", "fifo",
                "--placement", "first_fit", "--frames", "8",
                "--capacities", "10000", "--seeds", "0",
                "--workers", "1", "--results", str(path)]
        assert main(argv) == 0
        capsys.readouterr()
        self.truncate_last_line(path)
        assert main([*argv, "--resume"]) == 0
        out = capsys.readouterr().out
        assert "corrupt result lines" in out
        assert "may be damaged" in out


class TestCanonicalLines:
    def test_sorted_stripped_and_key_ordered(self):
        records = [
            {"shard": "b", "wall_s": 9.9, "value": 2},
            {"shard": "a", "wall_s": 0.1, "value": 1},
        ]
        lines = canonical_lines(records)
        assert lines == [
            json.dumps({"shard": "a", "value": 1}, sort_keys=True),
            json.dumps({"shard": "b", "value": 2}, sort_keys=True),
        ]

    def test_telemetry_keeps_only_its_deterministic_part(self):
        record = {
            "shard": "a",
            "telemetry": {"spans": {"sweep.churn_seconds": 0.5,
                                    "sweep.ops": 12}},
        }
        stripped = strip_nondeterministic(record)
        assert stripped["telemetry"] == {"spans": {"sweep.ops": 12}}

    def test_completion_order_cannot_leak_into_the_bytes(self):
        records = [{"shard": f"s{i}", "wall_s": float(i)}
                   for i in range(5)]
        assert canonical_lines(records) \
            == canonical_lines(list(reversed(records)))
