"""Tests for global (shared-pool) replacement in the multiprogramming sim."""

import pytest

from repro.paging import LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import cyclic_trace, phased_trace


def spec(name, trace, frames=4):
    return ProgramSpec(name, trace, frames, LruPolicy())


def shared_sim(specs, frames, fetch_time=300, quantum=50):
    return MultiprogrammingSimulator(
        specs, RoundRobinScheduler(quantum), fetch_time=fetch_time,
        shared_frames=frames, shared_policy=LruPolicy(),
    )


class TestConstruction:
    def test_both_or_neither(self):
        with pytest.raises(ValueError):
            MultiprogrammingSimulator(
                [spec("p", [0])], RoundRobinScheduler(10), fetch_time=1,
                shared_frames=4,
            )
        with pytest.raises(ValueError):
            MultiprogrammingSimulator(
                [spec("p", [0])], RoundRobinScheduler(10), fetch_time=1,
                shared_policy=LruPolicy(),
            )

    def test_positive_pool(self):
        with pytest.raises(ValueError):
            shared_sim([spec("p", [0])], frames=0)


class TestSharedPoolBehaviour:
    def test_completes_and_accounts(self):
        trace = phased_trace(pages=8, length=200, working_set=3, seed=2)
        summary = shared_sim(
            [spec("a", trace), spec("b", trace)], frames=10
        ).run()
        assert all(p.references == 200 for p in summary.programs)
        assert summary.makespan == summary.cpu_busy + summary.cpu_idle

    def test_pool_capacity_respected(self):
        trace = cyclic_trace(pages=6, length=100)
        simulator = shared_sim([spec("a", trace), spec("b", trace)], frames=5)
        simulator.run()
        assert simulator._pool.resident_count <= 5

    def test_programs_steal_frames_from_each_other(self):
        """Global replacement: a big program can displace a small one.

        Under a global FIFO pool the small program's long-resident pages
        are evicted by the big program's sweep regardless of how hot they
        are — frame theft, the hazard local partitions avoid.
        """
        from repro.paging import FifoPolicy

        small = spec("small", cyclic_trace(pages=2, length=20_000))
        big = spec("big", cyclic_trace(pages=12, length=400))
        summary = MultiprogrammingSimulator(
            [small, big], RoundRobinScheduler(30), fetch_time=300,
            shared_frames=8, shared_policy=FifoPolicy(),
        ).run()
        by_name = {p.name: p for p in summary.programs}
        # More than its 2 cold faults: its pages were stolen.
        assert by_name["small"].faults > 2

    def test_partition_protects_the_small_program(self):
        """The same mix under partitioning: no theft, cold faults only."""
        small = ProgramSpec("small", cyclic_trace(pages=2, length=400), 2,
                            LruPolicy())
        big = ProgramSpec("big", cyclic_trace(pages=12, length=400), 6,
                          LruPolicy())
        summary = MultiprogrammingSimulator(
            [small, big], RoundRobinScheduler(30), fetch_time=300,
        ).run()
        by_name = {p.name: p for p in summary.programs}
        assert by_name["small"].faults == 2

    def test_departure_releases_pool_frames(self):
        short = spec("short", cyclic_trace(pages=2, length=10))
        long = spec("long", cyclic_trace(pages=4, length=400))
        simulator = shared_sim([short, long], frames=6)
        simulator.run()
        resident_owners = {unit[0] for unit in simulator._pool.resident_pages()}
        assert "short" not in resident_owners

    def test_occupancy_tracked_externally(self):
        trace = cyclic_trace(pages=3, length=50)
        simulator = shared_sim([spec("a", trace)], frames=4)
        summary = simulator.run()
        # Space-time accumulated through the shared-pool counter.
        assert summary.programs[0].space_time.total > 0

    def test_right_sized_pool_matches_partitions(self):
        """With room for every working set, both modes see cold faults."""
        traces = [cyclic_trace(pages=3, length=120) for _ in range(2)]
        shared = shared_sim(
            [spec(f"p{i}", t) for i, t in enumerate(traces)], frames=6
        ).run()
        assert sum(p.faults for p in shared.programs) == 6   # cold only
