"""Tests for the single-level page table (Figure 2)."""

import pytest

from repro.addressing import AssociativeMemory, PageTable
from repro.errors import BoundViolation, PageFault


def make_table(page_size=512, pages=8, **kwargs):
    return PageTable(page_size=page_size, pages=pages, **kwargs)


class TestConstruction:
    def test_rejects_non_power_of_two_page_size(self):
        with pytest.raises(ValueError):
            PageTable(page_size=500, pages=4)

    def test_rejects_nonpositive_pages(self):
        with pytest.raises(ValueError):
            PageTable(page_size=512, pages=0)

    def test_extent(self):
        assert make_table(page_size=512, pages=8).extent == 4096


class TestSplit:
    def test_split_by_bit_fields(self):
        table = make_table(page_size=512, pages=8)
        assert table.split(0) == (0, 0)
        assert table.split(511) == (0, 511)
        assert table.split(512) == (1, 0)
        assert table.split(1537) == (3, 1)

    def test_split_page_size_one(self):
        table = PageTable(page_size=1, pages=4)
        assert table.split(3) == (3, 0)


class TestTranslation:
    def test_fault_when_not_present(self):
        table = make_table()
        with pytest.raises(PageFault) as exc_info:
            table.translate(600)
        assert exc_info.value.page == 1

    def test_translate_after_map(self):
        table = make_table(page_size=512, pages=8)
        table.map(page=1, frame=5)
        result = table.translate(512 + 17)
        assert result.address == 5 * 512 + 17

    def test_scattered_frames_give_contiguous_names(self):
        """FIG1: contiguous names, discontiguous addresses."""
        table = make_table(page_size=512, pages=4)
        for page, frame in enumerate([7, 2, 5, 0]):
            table.map(page, frame)
        addresses = [table.translate(name).address for name in (0, 512, 1024, 1536)]
        assert addresses == [7 * 512, 2 * 512, 5 * 512, 0]

    def test_bound_violation_past_extent(self):
        table = make_table(page_size=512, pages=2)
        with pytest.raises(BoundViolation):
            table.translate(1024)

    def test_negative_name_rejected(self):
        with pytest.raises(BoundViolation):
            make_table().translate(-1)

    def test_mapping_cycles_charged_per_walk(self):
        table = make_table(table_access_cycles=2)
        table.map(0, 0)
        result = table.translate(0)
        assert result.mapping_cycles == 2
        assert table.mapping_cycles_total == 2

    def test_fault_counter(self):
        table = make_table()
        for _ in range(3):
            with pytest.raises(PageFault):
                table.translate(0)
        assert table.faults == 3


class TestSensors:
    def test_read_sets_referenced_only(self):
        table = make_table()
        table.map(0, 0)
        table.translate(5)
        entry = table.entry(0)
        assert entry.referenced and not entry.modified

    def test_write_sets_modified(self):
        table = make_table()
        table.map(0, 0)
        table.translate(5, write=True)
        assert table.entry(0).modified

    def test_map_clears_sensors(self):
        table = make_table()
        table.map(0, 0)
        table.translate(0, write=True)
        table.map(0, 1)
        entry = table.entry(0)
        assert not entry.referenced and not entry.modified

    def test_unmap_returns_final_state(self):
        table = make_table()
        table.map(0, 3)
        table.translate(0, write=True)
        snapshot = table.unmap(0)
        assert snapshot.modified
        assert snapshot.frame == 3
        assert not table.entry(0).present


class TestWithAssociativeMemory:
    def test_hit_skips_table_walk(self):
        tlb = AssociativeMemory(4)
        table = make_table(associative_memory=tlb)
        table.map(0, 2)
        first = table.translate(0)
        second = table.translate(1)
        assert not first.associative_hit and first.mapping_cycles == 1
        assert second.associative_hit and second.mapping_cycles == 0
        assert second.address == 2 * 512 + 1

    def test_unmap_invalidates_tlb(self):
        tlb = AssociativeMemory(4)
        table = make_table(associative_memory=tlb)
        table.map(0, 2)
        table.translate(0)
        table.unmap(0)
        with pytest.raises(PageFault):
            table.translate(0)

    def test_hit_still_updates_sensors(self):
        tlb = AssociativeMemory(4)
        table = make_table(associative_memory=tlb)
        table.map(0, 2)
        table.translate(0)
        table.entry(0).clear_sensors()
        table.translate(0, write=True)   # associative hit
        assert table.entry(0).modified


class TestResidency:
    def test_resident_pages(self):
        table = make_table(pages=4)
        table.map(1, 0)
        table.map(3, 1)
        assert table.resident_pages() == [1, 3]

    def test_entry_bounds(self):
        with pytest.raises(BoundViolation):
            make_table(pages=4).entry(4)
