"""The shared frame pool: the serving contract, operation by operation.

Each test pins one clause of ``docs/SERVING.md``: how acquires are
satisfied (miss / share / dedup revival), what release does at zero
references, how CoW breaks move references, when reclaim happens, and
the conservation ledger the whole tier is audited against.
"""

import pytest

from repro.errors import OutOfMemory
from repro.observe.sinks import RingBufferSink
from repro.observe.tracer import Tracer
from repro.serve import SharedFramePool


class TestAcquire:
    def test_first_acquire_is_a_miss(self):
        pool = SharedFramePool(4)
        frame, hit = pool.acquire(("shared", 0))
        assert hit is None
        assert pool.ref_count(("shared", 0)) == 1
        assert pool.frame_of(("shared", 0)) == frame
        assert pool.owner(frame) == ("shared", 0)

    def test_second_acquire_is_a_share(self):
        pool = SharedFramePool(4)
        frame, _ = pool.acquire(("shared", 0))
        again, hit = pool.acquire(("shared", 0))
        assert hit == "share"
        assert again == frame
        assert pool.ref_count(("shared", 0)) == 2
        assert pool.resident_count == 1   # one frame, two references

    def test_reacquire_after_release_is_a_dedup_hit(self):
        pool = SharedFramePool(4)
        frame, _ = pool.acquire(("shared", 0))
        pool.release(("shared", 0))
        revived, hit = pool.acquire(("shared", 0))
        assert hit == "dedup"
        assert revived == frame            # the very same frame came back
        assert pool.cached_count == 0

    def test_stats_track_each_kind(self):
        pool = SharedFramePool(4)
        pool.acquire("a")
        pool.acquire("a")
        pool.release("a")
        pool.release("a")
        pool.acquire("a")
        stats = pool.stats
        assert (stats.acquires, stats.shares, stats.dedup_hits) == (3, 1, 1)
        assert stats.hits == 2
        assert stats.dedup_ratio == pytest.approx(2 / 3)


class TestReleaseAndReclaim:
    def test_release_at_zero_caches_not_frees(self):
        pool = SharedFramePool(4)
        pool.acquire("a")
        pool.release("a")
        assert pool.ref_count("a") == 0
        assert pool.is_cached("a")
        assert not pool.is_resident("a")
        assert pool.cached_keys() == ["a"]
        assert pool.free_count == 3        # the frame is cached, not free

    def test_release_unknown_content_raises(self):
        with pytest.raises(KeyError, match="not in the pool"):
            SharedFramePool(2).release("ghost")

    def test_over_release_raises(self):
        pool = SharedFramePool(2)
        pool.acquire("a")
        pool.release("a")
        with pytest.raises(ValueError, match="refcount underflow"):
            pool.release("a")

    def test_pressure_reclaims_least_recently_freed(self):
        pool = SharedFramePool(2)
        pool.acquire("old")
        pool.acquire("new")
        pool.release("old")
        pool.release("new")
        pool.acquire("third")              # must reclaim "old", not "new"
        assert not pool.is_cached("old")
        assert pool.is_cached("new")
        assert pool.stats.reclaims == 1

    def test_forget_drops_the_cache_entry(self):
        pool = SharedFramePool(2)
        pool.acquire("stale")
        pool.forget("stale")
        assert not pool.is_cached("stale")
        assert pool.free_count == 2
        _, hit = pool.acquire("stale")
        assert hit is None                 # no revival: the content is gone

    def test_exhaustion_raises_out_of_memory(self):
        pool = SharedFramePool(2)
        pool.acquire("a")
        pool.acquire("b")
        assert pool.is_exhausted()
        with pytest.raises(OutOfMemory):
            pool.acquire("c")


class TestCoWBreak:
    def test_break_moves_one_reference(self):
        pool = SharedFramePool(4)
        shared, _ = pool.acquire(("shared", 0))
        pool.acquire(("shared", 0))
        private = pool.cow_break(("shared", 0), ("t1", "cow", 0, 1))
        assert private != shared
        assert pool.ref_count(("shared", 0)) == 1
        assert pool.ref_count(("t1", "cow", 0, 1)) == 1
        assert pool.ref_total == 2         # conservation: still two refs

    def test_sole_holder_break_caches_the_original(self):
        pool = SharedFramePool(4)
        pool.acquire(("shared", 0))
        pool.cow_break(("shared", 0), ("t0", "cow", 0, 1))
        # The clean shared content stays revivable for other tenants.
        assert pool.is_cached(("shared", 0))
        assert pool.ref_count(("shared", 0)) == 0

    def test_break_of_nonresident_content_raises(self):
        pool = SharedFramePool(4)
        with pytest.raises(KeyError, match="not resident"):
            pool.cow_break(("shared", 9), ("t0", "cow", 9, 1))

    def test_refused_break_rolls_back_cleanly(self):
        # Found by the fuzz walk: a break that cannot claim a private
        # frame must undo its refcount decrement, or a reference leaks.
        pool = SharedFramePool(2)
        pool.acquire(("shared", 0))
        pool.acquire(("shared", 0))          # two holders pin frame 1 of 2
        pool.acquire("filler")               # ...and the other is pinned too
        with pytest.raises(OutOfMemory):
            pool.cow_break(("shared", 0), ("t1", "cow", 0, 1))
        assert pool.ref_count(("shared", 0)) == 2
        pool.check_invariants()

    def test_sole_holder_break_under_pressure_reuses_own_frame(self):
        pool = SharedFramePool(2)
        pool.acquire(("shared", 0))
        pool.acquire("filler")
        # Fully pinned, but the writer is the sole holder: its own frame
        # becomes reclaimable mid-break, so the break succeeds in place.
        frame = pool.cow_break(("shared", 0), ("t0", "cow", 0, 1))
        assert frame == pool.frame_of(("t0", "cow", 0, 1))
        assert not pool.is_cached(("shared", 0))   # reclaimed, not revivable
        pool.check_invariants()

    def test_break_onto_existing_private_key_raises(self):
        pool = SharedFramePool(4)
        pool.acquire(("shared", 0))
        pool.acquire(("t0", "p"))
        with pytest.raises(ValueError, match="already exists"):
            pool.cow_break(("shared", 0), ("t0", "p"))


class TestEvents:
    def make_traced(self, frames=4):
        ring = RingBufferSink(32)
        return SharedFramePool(frames, tracer=Tracer([ring])), ring

    def test_share_dedup_and_break_emit(self):
        pool, ring = self.make_traced()
        pool.acquire(("shared", 0), program="t0")     # miss: silent
        pool.acquire(("shared", 0), program="t1")     # share
        pool.cow_break(("shared", 0), ("t1", "cow", 0, 1), program="t1")
        pool.release(("shared", 0))
        pool.acquire(("shared", 0), program="t0")     # dedup revival
        kinds = [event.kind for event in ring.events()]
        assert kinds == ["share", "cow_break", "dedup_hit"]
        share = ring.events()[0]
        assert share.unit == ("shared", 0)
        assert share.refs == 2
        assert share.program == "t1"

    def test_external_clock_stamps_events(self):
        pool, ring = self.make_traced()
        pool.now = 41
        pool.acquire("a")
        pool.acquire("a")
        assert ring.events()[0].time == 41


class TestInvariants:
    def test_healthy_pool_checks_clean(self):
        pool = SharedFramePool(4)
        pool.acquire("a")
        pool.acquire("a")
        pool.acquire("b")
        pool.release("b")
        pool.check_invariants()

    def test_partition_always_holds(self):
        pool = SharedFramePool(3)
        pool.acquire("a")
        pool.acquire("b")
        pool.release("a")
        assert (pool.resident_count + pool.cached_count + pool.free_count
                == pool.frame_count)

    def test_corrupt_refcount_is_caught(self):
        pool = SharedFramePool(4)
        pool.acquire("a")
        pool._refs.incr("phantom")        # a reference with no frame
        with pytest.raises(AssertionError, match="has no frame"):
            pool.check_invariants()

    def test_corrupt_free_list_is_caught(self):
        pool = SharedFramePool(4)
        pool.acquire("a")
        pool._free.append(pool.frame_of("a"))   # free a pinned frame
        with pytest.raises(AssertionError):
            pool.check_invariants()
