"""The sharing-degree axis: grid plumbing, the serve leg, the report.

The sweep is how the sharing-degree figure family (``EXPERIMENTS.md``)
gets produced, so the axis has to thread all the way through: grid
validation → shard ids (resume keys) → the serve leg's record fields →
the marginal table the CLI prints.
"""

import pytest

from repro.sweep.cli import AXES, MARGINAL_HEADERS, build_parser, resolve_grid
from repro.sweep.engine import marginals, run_sweep
from repro.sweep.grid import SweepGrid, quick_grid
from repro.sweep.shard import run_shard


def tiny_grid(**overrides):
    base = dict(
        name="tiny-sharing",
        machines=("baseline",),
        replacement=("lru",),
        placement=("best_fit",),
        frames=(8,),
        capacities=(20_000,),
        sharing=(1, 2),
        seeds=(0,),
        length=200,
        pages=16,
        requests=40,
        program_length=150,
    )
    base.update(overrides)
    return SweepGrid(**base)


class TestGridAxis:
    def test_sharing_multiplies_grid_size(self):
        assert tiny_grid().size == 2
        assert tiny_grid(sharing=(1, 2, 4)).size == 3

    def test_sharing_defaults_to_degree_one(self):
        grid = quick_grid()
        assert grid.sharing == (1,)

    def test_shard_ids_carry_the_degree(self):
        ids = [shard.id for shard in tiny_grid().shards()]
        assert any("/sharing=1/" in shard_id for shard_id in ids)
        assert any("/sharing=2/" in shard_id for shard_id in ids)
        assert len(set(ids)) == len(ids)

    def test_nonpositive_degree_rejected(self):
        with pytest.raises(ValueError, match="sharing degree"):
            tiny_grid(sharing=(0,))

    def test_empty_or_duplicate_axis_rejected(self):
        with pytest.raises(ValueError):
            tiny_grid(sharing=())
        with pytest.raises(ValueError):
            tiny_grid(sharing=(2, 2))

    def test_round_trips_through_dict(self):
        grid = tiny_grid(sharing=(1, 4))
        assert SweepGrid.from_dict(grid.to_dict()).sharing == (1, 4)


class TestServeLeg:
    def shard_record(self, sharing):
        shard = next(
            s for s in tiny_grid(sharing=(sharing,)).shards()
        )
        return run_shard(shard.spec())

    def test_record_carries_the_serve_fields(self):
        record = self.shard_record(2)
        for field in ("serve_faults", "serve_fetches", "serve_fetch_rate",
                      "serve_shares", "serve_dedup_hits", "serve_cow_breaks",
                      "serve_dedup_ratio", "serve_spacetime_shared",
                      "serve_spacetime_private", "serve_spacetime_saving"):
            assert field in record
        assert record["sharing"] == 2

    def test_degree_one_has_nothing_shared(self):
        record = self.shard_record(1)
        assert record["serve_shares"] == 0
        assert record["serve_spacetime_saving"] == 0.0
        assert record["serve_fetches"] <= record["serve_faults"]

    def test_sharing_saves_fetches_and_spacetime(self):
        solo = self.shard_record(1)
        shared = self.shard_record(3)
        assert shared["serve_shares"] + shared["serve_dedup_hits"] > 0
        assert shared["serve_cow_breaks"] > 0
        assert shared["serve_dedup_ratio"] > solo["serve_dedup_ratio"]
        assert shared["serve_spacetime_saving"] > 0
        assert (shared["serve_spacetime_shared"]
                < shared["serve_spacetime_private"])

    def test_serve_counters_merge_into_the_campaign(self):
        result = run_sweep(tiny_grid(sharing=(2,)), workers=1)
        snapshot = result.counters.snapshot()
        assert snapshot.get("serve.acquires", 0) > 0


class TestReport:
    def test_sharing_is_a_reported_axis(self):
        assert "sharing" in AXES
        assert "dedup ratio" in MARGINAL_HEADERS
        assert "st saving" in MARGINAL_HEADERS

    def test_marginal_rows_match_the_headers(self):
        result = run_sweep(tiny_grid(), workers=1)
        rows = marginals(result.records, "sharing")
        assert [row[0] for row in rows] == [1, 2]
        assert all(len(row) == len(MARGINAL_HEADERS) for row in rows)
        # Degree 2 deduplicates; degree 1 cannot.
        by_degree = {row[0]: row for row in rows}
        dedup_column = MARGINAL_HEADERS.index("dedup ratio")
        assert by_degree[1][dedup_column] == 0.0
        assert by_degree[2][dedup_column] > 0.0

    def test_cli_sharing_flag_overrides_the_grid(self):
        options = build_parser().parse_args(
            ["--quick", "--sharing", "1", "4", "--name", "smoke-sharing"]
        )
        grid = resolve_grid(options)
        assert grid.sharing == (1, 4)
        assert grid.name == "smoke-sharing"

    def test_checked_shard_runs_the_serve_leg_audited(self):
        shard = next(s for s in tiny_grid(sharing=(2,)).shards())
        record = run_shard(shard.spec(checked=True))
        assert record["checked"] is True
        assert record["serve_shares"] >= 0
