"""Fastpath and reference replay must report identical aggregate counters.

The batched kernels (``repro.fastpath.replay``) skip the per-access loop,
so they cannot increment counters event by event; instead they absorb
their ``SimulationResult`` totals.  The reference loop increments inline
as each fault/eviction happens.  These are two independent accounting
mechanisms, and this suite pins them to each other across 100 seeds —
the observability half of the fastpath bit-identity contract.
"""

from __future__ import annotations

import pytest

from repro.observe import Counters, RingBufferSink, Tracer
from repro.paging import make_policy, simulate_trace
from repro.workload import phased_trace, random_trace, zipf_trace

SEEDS = range(100)
FAST_POLICIES = ("lru", "fifo", "clock", "opt")

REPLAY_NAMES = (
    "replay.references", "replay.faults", "replay.cold_faults",
    "replay.evictions",
)


def make_trace(seed):
    generator = (phased_trace, random_trace, zipf_trace)[seed % 3]
    return generator(pages=48, length=400, seed=seed)


def run(trace, policy_name, frames, fast):
    if policy_name == "opt":
        policy = make_policy("opt", trace=trace)
    else:
        policy = make_policy(policy_name)
    counters = Counters()
    result = simulate_trace(
        trace, frames=frames, policy=policy, fast=fast, counters=counters,
    )
    return result, counters.snapshot()


@pytest.mark.parametrize("policy_name", FAST_POLICIES)
def test_counter_totals_identical_across_100_seeds(policy_name):
    for seed in SEEDS:
        trace = make_trace(seed)
        frames = 4 + seed % 13
        fast_result, fast_counts = run(trace, policy_name, frames, fast=True)
        ref_result, ref_counts = run(trace, policy_name, frames, fast=False)
        assert fast_counts == ref_counts, (
            f"counter divergence: policy={policy_name} seed={seed} "
            f"frames={frames}"
        )
        assert fast_result.faults == ref_result.faults


def test_counters_cover_every_replay_name():
    trace = make_trace(7)
    _, counts = run(trace, "lru", frames=8, fast=True)
    assert set(counts) == set(REPLAY_NAMES)
    assert counts["replay.references"] == len(trace)
    assert counts["replay.cold_faults"] <= counts["replay.faults"]


def test_enabled_tracer_forces_reference_loop_with_same_counters():
    """Tracing needs per-event resolution, so the kernel is bypassed —
    but the counter totals must not change."""
    trace = make_trace(11)
    ring = RingBufferSink(8192)
    traced_counters = Counters()
    traced = simulate_trace(
        trace, frames=8, policy=make_policy("lru"), fast=True,
        tracer=Tracer([ring]), counters=traced_counters,
    )
    _, kernel_counts = run(trace, "lru", frames=8, fast=True)
    assert traced_counters.snapshot() == kernel_counts
    faults = [e for e in ring.events() if e.kind == "fault"]
    evicts = [e for e in ring.events() if e.kind == "evict"]
    assert len(faults) == traced.faults
    assert len(evicts) == traced.evictions


def test_counters_accumulate_across_runs():
    """One registry can hold a whole experiment: totals sum over calls."""
    trace = make_trace(3)
    counters = Counters()
    a = simulate_trace(trace, frames=6, policy=make_policy("fifo"),
                       counters=counters)
    b = simulate_trace(trace, frames=12, policy=make_policy("fifo"),
                       counters=counters)
    assert counters.value("replay.references") == 2 * len(trace)
    assert counters.value("replay.faults") == a.faults + b.faults
