"""Event taxonomy: construction, serialization, lossless round-trip."""

from __future__ import annotations

import pytest

from repro.observe import (
    EVENT_TYPES,
    Advice,
    Clean,
    Compact,
    CoWBreak,
    DedupHit,
    Evict,
    Fault,
    Free,
    MapLookup,
    Place,
    Share,
    event_from_dict,
)

ALL_EVENTS = [
    Fault(time=3, unit=7, write=True, program="alpha"),
    Place(time=4, unit=7, where=2, size=512, policy="lru",
          prefetch=False, program="alpha"),
    Evict(time=9, unit=1, writeback=True, overlapped=False, program="beta"),
    Free(time=5, address=1024, size=96),
    Compact(time=6, moves=3, words_moved=288, holes_before=4, holes_after=1),
    Clean(time=7, unit=4, words=1024),
    MapLookup(time=2, unit=(1, 7), mapping_cycles=1, associative_hit=False),
    Advice(time=8, directive="release", unit=(0, 3)),
    Share(time=10, unit=("shared", 3), where=5, refs=2, program="beta"),
    DedupHit(time=11, unit=("shared", 3), where=5, program="beta"),
    CoWBreak(time=12, unit=("shared", 3), where=6, source=5, refs=1,
             program="beta"),
]


def test_registry_covers_every_event_type():
    assert set(EVENT_TYPES) == {
        "fault", "place", "evict", "free", "compact", "clean", "map_lookup",
        "advice", "share", "dedup_hit", "cow_break",
    }
    for kind, cls in EVENT_TYPES.items():
        assert cls.kind == kind


@pytest.mark.parametrize("event", ALL_EVENTS, ids=lambda e: e.kind)
def test_round_trip_is_lossless(event):
    payload = event.to_dict()
    assert payload["event"] == event.kind
    revived = event_from_dict(payload)
    assert revived == event
    assert type(revived) is type(event)


def test_segment_page_units_survive_json():
    """JSON turns tuples into lists; deserialization must revive them."""
    import json

    event = MapLookup(time=1, unit=(2, 9), mapping_cycles=2,
                      associative_hit=False)
    wire = json.loads(json.dumps(event.to_dict()))
    assert wire["unit"] == [2, 9]
    assert event_from_dict(wire).unit == (2, 9)


def test_events_are_immutable():
    fault = Fault(time=0, unit=1)
    with pytest.raises(AttributeError):
        fault.unit = 2


def test_unknown_kind_rejected():
    with pytest.raises(ValueError, match="unknown event kind"):
        event_from_dict({"event": "teleport", "time": 0})


def test_defaults_keep_construction_terse():
    fault = Fault(time=10, unit=4)
    assert fault.write is False
    assert fault.program is None
