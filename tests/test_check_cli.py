"""``python -m repro check`` — the CI gate's exit-status contract."""

import pytest

from repro.check.cli import main


class TestCheckCli:
    def test_clean_sweep_exits_zero(self, capsys):
        assert main(["--quick", "--seeds", "2"]) == 0
        out = capsys.readouterr().out
        assert "differential oracle" in out
        assert "OK" in out

    def test_injected_violation_exits_one(self, capsys):
        assert main(["--quick", "--seeds", "2", "--inject-violation"]) == 1
        out = capsys.readouterr().out
        assert "VIOLATIONS" in out
        assert "word_conservation" in out

    def test_domain_restriction(self, capsys):
        assert main(["--seeds", "2", "--domains", "replacement"]) == 0
        out = capsys.readouterr().out
        assert "checks: replacement" in out
        assert "checks: placement" not in out

    def test_bad_seed_count_rejected(self):
        with pytest.raises(SystemExit):
            main(["--seeds", "0"])

    def test_module_entry_point(self):
        from repro.__main__ import main as repro_main

        assert repro_main(["check", "--quick", "--seeds", "1",
                           "--domains", "replacement"]) == 0
