"""``python -m repro sweep``: grid resolution, reporting, exit codes."""

import json

import pytest

from repro.sweep.cli import build_parser, main, resolve_grid
from repro.sweep.grid import SweepGrid

TINY = [
    "--name", "tiny", "--machines", "baseline",
    "--replacement", "lru", "fifo", "--placement", "first_fit",
    "--frames", "8", "--capacities", "10000", "--seeds", "0",
]


def run_cli(tmp_path, *extra):
    results = tmp_path / "results.jsonl"
    status = main([*TINY, "--quick", "--workers", "1",
                   "--results", str(results), *extra])
    return status, results


class TestGridResolution:
    def parse(self, *argv):
        return resolve_grid(build_parser().parse_args(argv))

    def test_default_is_the_museum_grid(self):
        assert self.parse().name == "museum"

    def test_quick_grid_selected(self):
        grid = self.parse("--quick")
        assert grid.name == "quick" and grid.size == 16

    def test_axis_overrides_apply(self):
        grid = self.parse("--quick", "--frames", "4", "8", "16",
                          "--seeds", "0")
        assert grid.frames == (4, 8, 16) and grid.seeds == (0,)

    def test_grid_file_wins_then_overrides(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(
            SweepGrid.from_dict({"name": "filed", "seeds": [0, 1]}).to_dict()
        ))
        grid = self.parse("--grid", str(path), "--seeds", "5")
        assert grid.name == "filed" and grid.seeds == (5,)


class TestRuns:
    def test_smoke_run_and_report(self, tmp_path, capsys):
        status, results = run_cli(tmp_path)
        out = capsys.readouterr().out
        assert status == 0
        assert results.exists()
        assert "sweep: tiny" in out
        assert "marginal: replacement" in out
        assert "merged counters" in out
        # Single-valued axes get no marginal table.
        assert "marginal: machine" not in out

    def test_resume_executes_zero_shards(self, tmp_path, capsys):
        run_cli(tmp_path)
        status, _ = run_cli(tmp_path, "--resume", "--no-report")
        assert status == 0
        assert "executed 0" in capsys.readouterr().out

    def test_failures_exit_nonzero(self, tmp_path, capsys, monkeypatch):
        from repro.sweep import engine

        monkeypatch.setattr(
            engine, "run_shard_safely",
            lambda spec: {"shard": spec["shard"], "error": "Boom: injected"},
        )
        status, results = run_cli(tmp_path)
        captured = capsys.readouterr()
        assert status == 1
        assert "FAILED" in captured.err and "Boom" in captured.err
        # Failed shards are never checkpointed.
        assert not results.exists() or results.read_text() == ""

    def test_checked_flag_threads_through(self, tmp_path, capsys):
        status, results = run_cli(tmp_path, "--checked")
        assert status == 0
        record = json.loads(results.read_text().splitlines()[0])
        assert record["checked"] is True

    def test_bad_grid_file_exits_two(self, tmp_path):
        path = tmp_path / "grid.json"
        path.write_text(json.dumps({"machines": ["pdp11"]}))
        assert main(["--grid", str(path)]) == 2

    def test_package_cli_routes_sweep(self, tmp_path, capsys):
        from repro.__main__ import main as repro_main

        results = tmp_path / "results.jsonl"
        assert repro_main(["sweep", *TINY, "--quick", "--workers", "1",
                           "--no-report", "--results", str(results)]) == 0
        assert "executed 2" in capsys.readouterr().out


class TestTransports:
    def test_summary_names_the_transport(self, tmp_path, capsys):
        status, _ = run_cli(tmp_path, "--transport", "inline")
        assert status == 0
        assert "transport" in capsys.readouterr().out

    def test_no_report_line_names_the_transport(self, tmp_path, capsys):
        status, _ = run_cli(tmp_path, "--transport", "inline",
                            "--no-report")
        assert status == 0
        assert "transport inline" in capsys.readouterr().out

    def test_unknown_transport_exits_two(self, tmp_path, capsys):
        status, _ = run_cli(tmp_path, "--transport", "carrier-pigeon")
        assert status == 2
        assert "unknown transport" in capsys.readouterr().err

    def test_canon_files_are_byte_identical_across_transports(
            self, tmp_path, capsys):
        """The CI diff in miniature: the same grid under two transports
        writes byte-identical --canon files."""
        canons = {}
        for name in ("inline", "pool"):
            canon = tmp_path / f"canon_{name}.jsonl"
            status = main([*TINY, "--quick", "--workers", "2",
                           "--results", str(tmp_path / f"r_{name}.jsonl"),
                           "--transport", name, "--no-report",
                           "--canon", str(canon)])
            assert status == 0
            canons[name] = canon.read_bytes()
        assert canons["inline"] == canons["pool"]
        # Canonical lines are wall-time-free sorted JSON.
        for line in canons["inline"].decode().splitlines():
            assert "wall_s" not in json.loads(line)
