"""Event ordering and program attribution under multiprogramming."""

from __future__ import annotations

from repro.observe import RingBufferSink, Tracer
from repro.paging import FifoPolicy, LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler


def run_mix(tracer, shared=False):
    specs = [
        ProgramSpec(name="alpha", trace=[0, 1, 2, 0, 3, 1] * 4, frames=2,
                    policy=LruPolicy()),
        ProgramSpec(name="beta", trace=[5, 6, 5, 7, 6, 5] * 4, frames=2,
                    policy=FifoPolicy(), arrival=3),
    ]
    kwargs = {}
    if shared:
        kwargs = {"shared_frames": 3, "shared_policy": FifoPolicy()}
    simulator = MultiprogrammingSimulator(
        specs, RoundRobinScheduler(quantum=5), fetch_time=50,
        tracer=tracer, **kwargs,
    )
    summary = simulator.run()
    return summary, simulator


def test_events_arrive_in_global_time_order():
    ring = RingBufferSink(4096)
    run_mix(Tracer([ring]))
    times = [event.time for event in ring.events()]
    assert times == sorted(times)
    assert len(times) > 0


def test_events_carry_program_attribution():
    ring = RingBufferSink(4096)
    run_mix(Tracer([ring]))
    programs = {event.program for event in ring.events()}
    assert programs == {"alpha", "beta"}


def test_interleaving_is_visible():
    """The multiprogrammed trace shows programs alternating — the
    information per-program summaries cannot carry."""
    ring = RingBufferSink(4096)
    run_mix(Tracer([ring]))
    owners = [event.program for event in ring.events()]
    switches = sum(1 for a, b in zip(owners, owners[1:]) if a != b)
    assert switches >= 2


def test_shared_pool_evictions_name_the_victim_owner():
    ring = RingBufferSink(4096)
    summary, _ = run_mix(Tracer([ring]), shared=True)
    evicts = [e for e in ring.events() if e.kind == "evict"]
    assert evicts, "a 3-frame pool under two programs must evict"
    assert all(e.program in {"alpha", "beta"} for e in evicts)


def test_tracing_does_not_perturb_the_simulation():
    traced_summary, _ = run_mix(Tracer([RingBufferSink(4096)]))
    silent_summary, _ = run_mix(None)
    assert traced_summary.makespan == silent_summary.makespan
    traced_faults = {p.name: p.faults for p in traced_summary.programs}
    silent_faults = {p.name: p.faults for p in silent_summary.programs}
    assert traced_faults == silent_faults
