"""Tests for the event kernel, schedulers, space-time accounting, and the
multiprogramming simulator."""

import pytest

from repro.paging import LruPolicy
from repro.sim import (
    EventQueue,
    FcfsScheduler,
    MultiprogrammingSimulator,
    ProgramSpec,
    RoundRobinScheduler,
    SpaceTimeAccount,
)
from repro.workload import cyclic_trace, phased_trace


class TestEventQueue:
    def test_time_ordering(self):
        queue = EventQueue()
        queue.schedule(10, "late")
        queue.schedule(5, "early")
        assert queue.pop() == (5, "early")
        assert queue.pop() == (10, "late")

    def test_ties_in_insertion_order(self):
        queue = EventQueue()
        queue.schedule(5, "first")
        queue.schedule(5, "second")
        assert queue.pop()[1] == "first"
        assert queue.pop()[1] == "second"

    def test_pop_empty(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_peek(self):
        queue = EventQueue()
        assert queue.peek_time() is None
        queue.schedule(7, "x")
        assert queue.peek_time() == 7
        assert len(queue) == 1

    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            EventQueue().schedule(-1, "x")

    def test_counters(self):
        queue = EventQueue()
        queue.schedule(1, "a")
        queue.pop()
        assert queue.scheduled == 1 and queue.delivered == 1


class TestSchedulers:
    def test_round_robin_cycles(self):
        scheduler = RoundRobinScheduler(quantum=10)
        scheduler.make_ready("a")
        scheduler.make_ready("b")
        assert scheduler.next_program() == "a"
        scheduler.make_ready("a")
        assert scheduler.next_program() == "b"

    def test_empty_queue_returns_none(self):
        assert RoundRobinScheduler(quantum=10).next_program() is None

    def test_duplicate_ready_rejected(self):
        scheduler = RoundRobinScheduler(quantum=10)
        scheduler.make_ready("a")
        with pytest.raises(ValueError):
            scheduler.make_ready("a")

    def test_quantum_validation(self):
        with pytest.raises(ValueError):
            RoundRobinScheduler(quantum=0)

    def test_fcfs_slice_is_effectively_unbounded(self):
        scheduler = FcfsScheduler()
        assert scheduler.time_slice("a") > 10**15

    def test_remove(self):
        scheduler = RoundRobinScheduler(quantum=10)
        scheduler.make_ready("a")
        scheduler.remove("a")
        assert scheduler.next_program() is None
        scheduler.remove("ghost")   # no-op


class TestSpaceTimeAccount:
    def test_active_and_waiting_split(self):
        account = SpaceTimeAccount()
        account.accumulate(100, 10, waiting=False)
        account.accumulate(100, 30, waiting=True)
        breakdown = account.breakdown
        assert breakdown.active == 1000
        assert breakdown.waiting == 3000
        assert breakdown.total == 4000
        assert breakdown.waiting_share == 0.75

    def test_zero_intervals_ignored(self):
        account = SpaceTimeAccount()
        account.accumulate(100, 0, waiting=False)
        account.accumulate(0, 50, waiting=False)
        assert account.total == 0 and account.intervals == 0

    def test_validation(self):
        account = SpaceTimeAccount()
        with pytest.raises(ValueError):
            account.accumulate(-1, 1, waiting=False)
        with pytest.raises(ValueError):
            account.accumulate(1, -1, waiting=False)

    def test_empty_share(self):
        assert SpaceTimeAccount().breakdown.waiting_share == 0.0


def spec(name, trace, frames=4, reference_time=1):
    return ProgramSpec(name, trace, frames, LruPolicy(),
                       reference_time=reference_time)


class TestMultiprogrammingSimulator:
    def test_single_program_completes(self):
        trace = phased_trace(pages=6, length=200, working_set=3, seed=1)
        summary = MultiprogrammingSimulator(
            [spec("p", trace)], RoundRobinScheduler(50), fetch_time=100
        ).run()
        result = summary.programs[0]
        assert result.references == 200
        assert result.compute_cycles == 200
        assert result.faults > 0
        assert summary.makespan == summary.cpu_busy + summary.cpu_idle

    def test_single_program_wait_dominates_with_slow_fetch(self):
        """Figure 3: slow fetches make waiting the bulk of the product."""
        trace = cyclic_trace(pages=8, length=200)
        summary = MultiprogrammingSimulator(
            [spec("p", trace, frames=4)], RoundRobinScheduler(50),
            fetch_time=10_000,
        ).run()
        assert summary.programs[0].space_time.waiting_share > 0.9

    def test_fast_fetch_shrinks_waiting_share(self):
        trace = cyclic_trace(pages=8, length=200)
        shares = []
        for fetch_time in (10_000, 10):
            summary = MultiprogrammingSimulator(
                [spec("p", trace, frames=4)], RoundRobinScheduler(50),
                fetch_time=fetch_time,
            ).run()
            shares.append(summary.programs[0].space_time.waiting_share)
        assert shares[1] < shares[0]

    def test_overlap_raises_cpu_utilization(self):
        """The multiprogramming payoff the paper describes."""
        def mix(degree):
            traces = [
                phased_trace(pages=10, length=300, working_set=3, seed=s)
                for s in range(degree)
            ]
            return MultiprogrammingSimulator(
                [spec(f"p{i}", t, frames=2) for i, t in enumerate(traces)],
                RoundRobinScheduler(25),
                fetch_time=500,
            ).run()
        single = mix(1).cpu_utilization
        quad = mix(4).cpu_utilization
        assert quad > single

    def test_enough_frames_means_cold_faults_only(self):
        trace = cyclic_trace(pages=4, length=100)
        summary = MultiprogrammingSimulator(
            [spec("p", trace, frames=4)], RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        assert summary.programs[0].faults == 4

    def test_departed_program_frees_storage(self):
        trace = cyclic_trace(pages=2, length=20)
        simulator = MultiprogrammingSimulator(
            [spec("p", trace, frames=4)], RoundRobinScheduler(50),
            fetch_time=10,
        )
        simulator.run()
        program = simulator._programs["p"]
        assert program.frames.resident_count == 0

    def test_quantum_rotation_interleaves(self):
        long_trace = cyclic_trace(pages=2, length=400)
        summary = MultiprogrammingSimulator(
            [spec("a", long_trace, frames=2), spec("b", long_trace, frames=2)],
            RoundRobinScheduler(10),
            fetch_time=50,
        ).run()
        a, b = summary.programs
        # Neither finishes twice as fast as the other under fair slicing.
        assert abs(a.completion_time - b.completion_time) < 100

    def test_wait_cycles_accounted(self):
        trace = [0, 1, 0, 1]
        summary = MultiprogrammingSimulator(
            [spec("p", trace, frames=2)], RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        assert summary.programs[0].wait_cycles == 200   # two cold fetches

    def test_validation(self):
        with pytest.raises(ValueError):
            MultiprogrammingSimulator([], RoundRobinScheduler(10), fetch_time=1)
        with pytest.raises(ValueError):
            ProgramSpec("p", [], 2, LruPolicy())
        with pytest.raises(ValueError):
            ProgramSpec("p", [0], 0, LruPolicy())
        with pytest.raises(ValueError):
            MultiprogrammingSimulator(
                [spec("p", [0]), spec("p", [0])],
                RoundRobinScheduler(10), fetch_time=1,
            )

    def test_fcfs_runs_to_block(self):
        trace = cyclic_trace(pages=2, length=50)
        summary = MultiprogrammingSimulator(
            [spec("a", trace, frames=2), spec("b", trace, frames=2)],
            FcfsScheduler(),
            fetch_time=100,
        ).run()
        assert all(p.references == 50 for p in summary.programs)
