"""Sinks: ring-buffer wraparound, JSONL round-trip, callbacks."""

from __future__ import annotations

import io

import pytest

from repro.observe import (
    CallbackSink,
    Evict,
    Fault,
    JsonlSink,
    RingBufferSink,
    Tracer,
    read_jsonl,
)


def events(n):
    return [Fault(time=i, unit=i % 5) for i in range(n)]


class TestRingBuffer:
    def test_retains_newest_on_wraparound(self):
        ring = RingBufferSink(4)
        for event in events(10):
            ring.accept(event)
        held = ring.events()
        assert [e.time for e in held] == [6, 7, 8, 9]
        assert len(ring) == 4
        assert ring.accepted == 10
        assert ring.dropped == 6

    def test_under_capacity_drops_nothing(self):
        ring = RingBufferSink(16)
        for event in events(3):
            ring.accept(event)
        assert [e.time for e in ring.events()] == [0, 1, 2]
        assert ring.dropped == 0

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            RingBufferSink(0)


class TestJsonl:
    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        originals = [
            Fault(time=1, unit=(0, 3), write=True),
            Evict(time=2, unit=(0, 1), writeback=True),
        ]
        with JsonlSink(path) as sink:
            for event in originals:
                sink.accept(event)
        assert read_jsonl(path) == originals

    def test_borrowed_stream_left_open(self):
        stream = io.StringIO()
        sink = JsonlSink(stream)
        sink.accept(Fault(time=0, unit=9))
        sink.close()
        assert not stream.closed
        line = stream.getvalue().strip()
        assert line.startswith('{"event":"fault"')

    def test_one_line_per_event(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with JsonlSink(path) as sink:
            for event in events(7):
                sink.accept(event)
        assert len(path.read_text().splitlines()) == 7


def test_callback_sink_forwards_every_event():
    seen = []
    sink = CallbackSink(seen.append)
    for event in events(5):
        sink.accept(event)
    assert len(seen) == 5


def test_tracer_fans_out_to_all_sinks():
    ring = RingBufferSink(8)
    counted = []
    tracer = Tracer([ring, CallbackSink(counted.append)])
    for event in events(3):
        tracer.emit(event)
    assert tracer.emitted == 3
    assert len(ring) == 3
    assert len(counted) == 3
