"""Property-based tests: allocator invariants under arbitrary workloads.

Every allocator must, under any interleaving of allocations and frees:

- never hand out overlapping blocks,
- never lose or duplicate words (used + free == capacity),
- keep its internal structures consistent (check_invariants),
- satisfy any request no larger than its largest hole (free list).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import (
    BuddyAllocator,
    FreeListAllocator,
    RiceAllocator,
    TwoEndsAllocator,
)
from repro.errors import OutOfMemory

# A workload step: positive int = allocate that size; negative = free the
# (index % live count)-th live allocation.
steps = st.lists(
    st.one_of(st.integers(min_value=1, max_value=120),
              st.integers(min_value=-50, max_value=-1)),
    min_size=1,
    max_size=120,
)


def drive(allocator, workload):
    """Apply a workload, returning live allocations; ignores OutOfMemory."""
    live = []
    for step in workload:
        if step > 0:
            try:
                live.append(allocator.allocate(step))
            except OutOfMemory:
                pass
        elif live:
            index = (-step) % len(live)
            allocator.free(live.pop(index))
    return live


def assert_no_overlap(allocations):
    spans = sorted((a.address, a.end) for a in allocations)
    for (_, end), (start, _) in zip(spans, spans[1:]):
        assert start >= end, f"overlap: {spans}"


class TestFreeListProperties:
    @given(workload=steps, policy=st.sampled_from(
        ["first_fit", "best_fit", "worst_fit", "next_fit"]))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, workload, policy):
        allocator = FreeListAllocator(512, policy=policy)
        live = drive(allocator, workload)
        allocator.check_invariants()
        assert_no_overlap(live)
        assert allocator.used_words == sum(a.size for a in live)

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_request_at_most_largest_hole_succeeds(self, workload):
        allocator = FreeListAllocator(512, policy="first_fit")
        drive(allocator, workload)
        largest = allocator.largest_hole
        if largest > 0:
            block = allocator.allocate(largest)
            assert block.size == largest

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_freeing_everything_restores_one_hole(self, workload):
        allocator = FreeListAllocator(512)
        live = drive(allocator, workload)
        for allocation in live:
            allocator.free(allocation)
        assert allocator.holes() == [(0, 512)]


class TestTwoEndsProperties:
    @given(workload=steps)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, workload):
        allocator = TwoEndsAllocator(512, size_threshold=60)
        live = drive(allocator, workload)
        allocator.check_invariants()
        assert_no_overlap(live)

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_small_below_threshold_large_above(self, workload):
        allocator = TwoEndsAllocator(2048, size_threshold=60)
        live = drive(allocator, workload)
        # Every small block must sit wholly below every large block
        # allocated straight from the bump pointers; reuse can mix them,
        # but accounting must still balance.
        assert allocator.used_words == sum(a.size for a in live)

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_freeing_everything_restores_full_gap(self, workload):
        allocator = TwoEndsAllocator(512, size_threshold=60)
        live = drive(allocator, workload)
        for allocation in live:
            allocator.free(allocation)
        assert allocator.free_words == 512
        assert allocator.holes() == [(0, 512)]


class TestBuddyProperties:
    @given(workload=steps)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, workload):
        allocator = BuddyAllocator(512, min_block=8)
        live = drive(allocator, workload)
        allocator.check_invariants()
        assert_no_overlap(live)

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_full_recombination(self, workload):
        allocator = BuddyAllocator(512, min_block=8)
        live = drive(allocator, workload)
        for allocation in live:
            allocator.free(allocation)
        assert allocator.holes() == [(0, 512)]

    @given(size=st.integers(min_value=1, max_value=512))
    @settings(max_examples=60, deadline=None)
    def test_block_is_power_of_two_and_sufficient(self, size):
        allocator = BuddyAllocator(512, min_block=8)
        block = allocator.allocate(size)
        reserved = allocator.block_size(block)
        assert reserved >= size
        assert reserved & (reserved - 1) == 0
        assert reserved >= 8


class TestRiceProperties:
    @given(workload=steps)
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, workload):
        allocator = RiceAllocator(512)
        live = drive(allocator, workload)
        allocator.check_invariants()
        assert_no_overlap(live)

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_combine_never_loses_words(self, workload):
        allocator = RiceAllocator(512)
        drive(allocator, workload)
        before = allocator.free_words
        allocator.combine_adjacent()
        assert allocator.free_words == before
        allocator.check_invariants()

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_combine_never_increases_chain(self, workload):
        allocator = RiceAllocator(512)
        drive(allocator, workload)
        before = allocator.chain_length
        allocator.combine_adjacent()
        assert allocator.chain_length <= before
