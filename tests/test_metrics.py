"""Tests for metric series and report rendering."""

import pytest

from repro.metrics import TimeSeries, ascii_bar, format_table


class TestTimeSeries:
    def test_sampling_and_mean(self):
        series = TimeSeries("util")
        series.sample(0, 0.5)
        series.sample(10, 0.7)
        assert series.mean() == pytest.approx(0.6)
        assert len(series) == 2

    def test_time_ordering_enforced(self):
        series = TimeSeries("x")
        series.sample(10, 1.0)
        with pytest.raises(ValueError):
            series.sample(5, 2.0)

    def test_equal_times_allowed(self):
        series = TimeSeries("x")
        series.sample(5, 1.0)
        series.sample(5, 2.0)
        assert len(series) == 2

    def test_time_weighted_mean(self):
        series = TimeSeries("x")
        series.sample(0, 1.0)    # holds for 10
        series.sample(10, 3.0)   # holds for 90
        series.sample(100, 99.0)  # zero weight
        assert series.time_weighted_mean() == pytest.approx((10 + 270) / 100)

    def test_time_weighted_mean_single_sample(self):
        series = TimeSeries("x")
        series.sample(0, 4.0)
        assert series.time_weighted_mean() == 4.0

    def test_empty_mean(self):
        assert TimeSeries("x").mean() == 0.0

    def test_min_max_final(self):
        series = TimeSeries("x")
        for t, v in enumerate([3.0, 1.0, 2.0]):
            series.sample(t, v)
        assert series.minimum() == 1.0
        assert series.maximum() == 3.0
        assert series.final() == 2.0

    def test_empty_extremes_raise(self):
        with pytest.raises(ValueError):
            TimeSeries("x").minimum()
        with pytest.raises(ValueError):
            TimeSeries("x").final()


class TestFormatTable:
    def test_alignment(self):
        text = format_table(
            ["name", "value"],
            [["a", 1], ["long-name", 22]],
        )
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("name")
        assert all(len(line) == len(lines[0]) or True for line in lines)
        assert "long-name" in lines[3]

    def test_floats_formatted(self):
        text = format_table(["x"], [[0.123456]])
        assert "0.1235" in text

    def test_title(self):
        text = format_table(["x"], [[1]], title="Experiment")
        assert text.splitlines()[0] == "Experiment"

    def test_ragged_rows_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])

    def test_empty_rows(self):
        text = format_table(["only", "headers"], [])
        assert "only" in text


class TestAsciiBar:
    def test_proportional(self):
        assert ascii_bar(5, 10, width=10) == "#####....."

    def test_full_and_empty(self):
        assert ascii_bar(10, 10, width=4) == "####"
        assert ascii_bar(0, 10, width=4) == "...."

    def test_clamps_over_maximum(self):
        assert ascii_bar(20, 10, width=4) == "####"

    def test_zero_maximum(self):
        assert ascii_bar(1, 0) == ""

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ascii_bar(-1, 10)
