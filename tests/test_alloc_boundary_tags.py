"""Tests for the boundary-tag allocator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.alloc import BoundaryTagAllocator
from repro.alloc.base import Allocation
from repro.errors import InvalidFree, OutOfMemory

steps = st.lists(
    st.one_of(st.integers(min_value=1, max_value=120),
              st.integers(min_value=-50, max_value=-1)),
    min_size=1,
    max_size=120,
)


class TestBasics:
    def test_tag_overhead_included(self):
        allocator = BoundaryTagAllocator(1000)
        block = allocator.allocate(98)
        assert block.size == 100
        assert allocator.tag_overhead_words == 2

    def test_sequential_allocations(self):
        allocator = BoundaryTagAllocator(1000)
        a = allocator.allocate(98)
        b = allocator.allocate(48)
        assert b.address == a.end

    def test_exhaustion(self):
        allocator = BoundaryTagAllocator(100)
        allocator.allocate(98)
        with pytest.raises(OutOfMemory):
            allocator.allocate(1)

    def test_small_leftover_absorbed_into_block(self):
        """A residue too small to carry tags stays with the allocation."""
        allocator = BoundaryTagAllocator(100)
        block = allocator.allocate(97)   # gross 99; leftover 1 <= 2 tags
        assert block.size == 100
        with pytest.raises(OutOfMemory):
            allocator.allocate(1)

    def test_validation(self):
        with pytest.raises(ValueError):
            BoundaryTagAllocator(2)
        with pytest.raises(ValueError):
            BoundaryTagAllocator(100, policy="best_fit")
        with pytest.raises(ValueError):
            BoundaryTagAllocator(100).allocate(0)


class TestCoalescing:
    def test_merge_with_next(self):
        allocator = BoundaryTagAllocator(1000)
        a = allocator.allocate(98)
        b = allocator.allocate(98)
        allocator.allocate(98)
        allocator.free(b)
        allocator.free(a)   # merges with the free b
        assert (0, 200) in allocator.holes()
        assert allocator.coalesce_operations >= 1

    def test_merge_with_previous(self):
        allocator = BoundaryTagAllocator(1000)
        a = allocator.allocate(98)
        b = allocator.allocate(98)
        allocator.allocate(98)
        allocator.free(a)
        allocator.free(b)
        assert (0, 200) in allocator.holes()

    def test_merge_both_sides(self):
        allocator = BoundaryTagAllocator(1000)
        a = allocator.allocate(98)
        b = allocator.allocate(98)
        c = allocator.allocate(98)
        allocator.allocate(98)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)
        assert (0, 300) in allocator.holes()

    def test_full_release_restores_one_hole(self):
        allocator = BoundaryTagAllocator(1000)
        blocks = [allocator.allocate(48) for _ in range(6)]
        for block in blocks:
            allocator.free(block)
        assert allocator.holes() == [(0, 1000)]


class TestFreeValidation:
    def test_double_free(self):
        allocator = BoundaryTagAllocator(1000)
        block = allocator.allocate(10)
        allocator.free(block)
        with pytest.raises(InvalidFree):
            allocator.free(block)

    def test_unknown_free(self):
        with pytest.raises(InvalidFree):
            BoundaryTagAllocator(1000).free(Allocation(0, 12))


class TestNextFit:
    def test_rover_advances(self):
        allocator = BoundaryTagAllocator(1000, policy="next_fit")
        a = allocator.allocate(98)
        allocator.allocate(98)
        allocator.free(a)
        # next_fit's rover is past the freed head block; it allocates
        # from the tail hole first.
        block = allocator.allocate(98)
        assert block.address == 200

    def test_wraps_to_head(self):
        allocator = BoundaryTagAllocator(300, policy="next_fit")
        a = allocator.allocate(98)
        allocator.allocate(198)   # fills the rest
        allocator.free(a)
        assert allocator.allocate(98).address == 0


class TestProperties:
    def _drive(self, allocator, workload):
        live = []
        for step in workload:
            if step > 0:
                try:
                    live.append(allocator.allocate(step))
                except OutOfMemory:
                    pass
            elif live:
                allocator.free(live.pop((-step) % len(live)))
        return live

    @given(workload=steps, policy=st.sampled_from(["first_fit", "next_fit"]))
    @settings(max_examples=60, deadline=None)
    def test_invariants_hold(self, workload, policy):
        allocator = BoundaryTagAllocator(512, policy=policy)
        live = self._drive(allocator, workload)
        allocator.check_invariants()
        spans = sorted((a.address, a.end) for a in live)
        for (_, end), (start, _) in zip(spans, spans[1:]):
            assert start >= end

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_freeing_everything_restores_one_hole(self, workload):
        allocator = BoundaryTagAllocator(512)
        live = self._drive(allocator, workload)
        for allocation in live:
            allocator.free(allocation)
        assert allocator.holes() == [(0, 512)]

    @given(workload=steps)
    @settings(max_examples=40, deadline=None)
    def test_accounting_balances(self, workload):
        allocator = BoundaryTagAllocator(512)
        live = self._drive(allocator, workload)
        assert allocator.used_words == sum(a.size for a in live)
        assert allocator.used_words + allocator.free_words == 512
