"""Tests for the histogram (Wald-style request analysis)."""

import pytest

from repro.metrics import Histogram
from repro.workload import exponential_requests


class TestBinning:
    def test_counts_partition_values(self):
        histogram = Histogram.from_values([1, 2, 2, 9], bins=2)
        assert [bin.count for bin in histogram.bins] == [3, 1]
        assert histogram.count == 4

    def test_maximum_lands_in_last_bin(self):
        histogram = Histogram.from_values([0, 10], bins=5)
        assert histogram.bins[-1].count == 1

    def test_single_value_collapses_to_one_bin(self):
        histogram = Histogram.from_values([5, 5, 5], bins=10)
        assert len(histogram.bins) == 1
        assert histogram.bins[0].count == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([], bins=3)

    def test_bad_bins_rejected(self):
        with pytest.raises(ValueError):
            Histogram.from_values([1], bins=0)

    def test_total_count_preserved(self):
        values = list(range(100))
        histogram = Histogram.from_values(values, bins=7)
        assert sum(bin.count for bin in histogram.bins) == 100


class TestStatistics:
    def test_mean_and_variance(self):
        histogram = Histogram.from_values([2, 4, 4, 4, 5, 5, 7, 9])
        assert histogram.mean == 5.0
        assert histogram.variance == 4.0

    def test_percentiles(self):
        histogram = Histogram.from_values(list(range(1, 101)))
        assert histogram.percentile(0.0) == 1
        assert histogram.percentile(0.5) == 51
        assert histogram.percentile(1.0) == 100

    def test_percentile_validation(self):
        histogram = Histogram.from_values([1])
        with pytest.raises(ValueError):
            histogram.percentile(1.5)


class TestRendering:
    def test_render_has_one_line_per_bin(self):
        histogram = Histogram.from_values(list(range(50)), bins=5)
        assert len(histogram.render().splitlines()) == 5

    def test_peak_bin_has_longest_bar(self):
        histogram = Histogram.from_values([1] * 10 + [9], bins=2)
        lines = histogram.render(width=20).splitlines()
        assert lines[0].count("#") > lines[1].count("#")


class TestOnRequestStreams:
    def test_exponential_sizes_are_skewed(self):
        """The distributional fact Wald-style analysis rests on."""
        requests = exponential_requests(2_000, mean_size=200,
                                        mean_lifetime=50, seed=3)
        histogram = Histogram.from_values([r.size for r in requests], bins=10)
        # Most mass in the low bins; a long thin tail.
        assert histogram.bins[0].count > histogram.count / 3
        assert histogram.percentile(0.5) < histogram.mean
