"""Tests for the multi-level backing store."""

import pytest

from repro.clock import Clock
from repro.memory import (
    MultiLevelBackingStore,
    StorageHierarchy,
    StorageLevel,
    core_drum_disk,
)


def make_store(medium_of=None, clock=None):
    return MultiLevelBackingStore(
        core_drum_disk(), clock=clock, medium_of=medium_of
    )


class TestRouting:
    def test_default_routes_to_nearest(self):
        store = make_store()
        store.store("k", [1, 2, 3])
        assert store.level_of("k") == "drum"

    def test_preference_respected(self):
        store = make_store(medium_of=lambda key: "disk")
        store.store("k", [1])
        assert store.level_of("k") == "disk"

    def test_unknown_preference_falls_back(self):
        store = make_store(medium_of=lambda key: "tape")
        store.store("k", [1])
        assert store.level_of("k") == "drum"
        assert store.misroutes == 1

    def test_none_preference_is_default(self):
        store = make_store(medium_of=lambda key: None)
        store.store("k", [1])
        assert store.level_of("k") == "drum"

    def test_overflow_spills_to_next_level(self):
        hierarchy = StorageHierarchy([
            StorageLevel("core", 100, access_time=1,
                         directly_addressable=True),
            StorageLevel("drum", 10, access_time=10),
            StorageLevel("disk", 1000, access_time=100),
        ])
        store = MultiLevelBackingStore(hierarchy)
        store.store("big", [0] * 50)
        assert store.level_of("big") == "disk"

    def test_unit_lives_on_one_level(self):
        preferences = {"k": "disk"}
        store = make_store(medium_of=lambda key: preferences.get(key))
        store.store("k", [1])
        preferences["k"] = "drum"
        store.store("k", [2])
        assert store.level_of("k") == "drum"
        assert store.store_for("disk").contains("k") is False


class TestFetch:
    def test_fetch_finds_whichever_level(self):
        store = make_store(medium_of=lambda key: "disk")
        store.store("k", [7, 8])
        image, cycles = store.fetch("k")
        assert image == [7, 8]
        assert cycles > 0

    def test_fetch_missing(self):
        with pytest.raises(KeyError):
            make_store().fetch("ghost")

    def test_disk_fetch_slower_than_drum(self):
        drum_store = make_store()
        disk_store = make_store(medium_of=lambda key: "disk")
        drum_store.store("k", [0] * 100)
        disk_store.store("k", [0] * 100)
        _, drum_cycles = drum_store.fetch("k")
        _, disk_cycles = disk_store.fetch("k")
        assert disk_cycles > drum_cycles

    def test_clock_charged(self):
        clock = Clock()
        store = make_store(clock=clock)
        store.store("k", [0] * 10)
        assert clock.now > 0

    def test_uncharged_fetch(self):
        clock = Clock()
        store = make_store(clock=clock)
        store.store("k", [0] * 10)
        before = clock.now
        store.fetch("k", charge=False)
        assert clock.now == before


class TestCompatibilitySurface:
    def test_contains_and_discard(self):
        store = make_store()
        store.store("k", [1])
        assert "k" in store
        store.discard("k")
        assert "k" not in store

    def test_level_property_is_nearest(self):
        assert make_store().level.name == "drum"

    def test_aggregate_counters(self):
        store = make_store(medium_of=lambda key: "disk" if key == "d" else None)
        store.store("a", [1])
        store.store("d", [2])
        store.fetch("a")
        assert store.stores == 2
        assert store.fetches == 1

    def test_requires_backing_levels(self):
        core_only = StorageHierarchy([
            StorageLevel("core", 100, access_time=1, directly_addressable=True)
        ])
        with pytest.raises(ValueError):
            MultiLevelBackingStore(core_only)

    def test_impossible_store_raises(self):
        hierarchy = StorageHierarchy([
            StorageLevel("core", 100, access_time=1,
                         directly_addressable=True),
            StorageLevel("drum", 10, access_time=10),
        ])
        store = MultiLevelBackingStore(hierarchy)
        with pytest.raises(ValueError):
            store.store("big", [0] * 50)
