"""Differential tests: vectorized columnar kernels vs. the reference loop.

The columnar kernels (:mod:`repro.fastpath.columnar`) are a third
implementation tier under the DESIGN.md §6 contract: for every trace
they must produce the same fault count, cold faults, fault positions,
and victim sequence as both the per-access reference loop and the list
kernels — including every tie-break, and including the segmented
(``(segment, page)``) and advice-decorated paths.  These tests sweep the
contract over 100 randomized seeds, with and without numpy.
"""

from __future__ import annotations

import random
from array import array

import pytest

import repro.fastpath.columnar as columnar_module
from repro.advice.pager import AdvisedReplacementPolicy
from repro.fastpath.columnar import run_columnar
from repro.fastpath.replay import replay_advised, run_fast
from repro.paging import (
    BeladyOptimalPolicy,
    ClockPolicy,
    FifoPolicy,
    LruPolicy,
    simulate_trace,
)
from repro.trace import ColumnarTrace
from repro.workload import phased_trace, random_trace, zipf_trace

SEEDS = range(100)

FAST_POLICIES = ("lru", "fifo", "clock", "opt")

RESULT_FIELDS = (
    "policy", "frames", "references", "faults", "evictions",
    "cold_faults", "fault_positions", "victims",
)

numpy_missing = columnar_module._np is None


def _make_policy(name: str, trace):
    if name == "opt":
        return BeladyOptimalPolicy(trace)
    return {"lru": LruPolicy, "fifo": FifoPolicy, "clock": ClockPolicy}[name]()


def _trace_for_seed(seed: int):
    """A varied workload: shape, size, and locality all depend on the seed."""
    rng = random.Random(seed)
    pages = rng.randint(4, 60)
    length = rng.randint(50, 600)
    kind = seed % 3
    if kind == 0:
        return random_trace(pages, length, seed=seed)
    if kind == 1:
        return zipf_trace(pages, length, skew=1.0 + rng.random(), seed=seed)
    return phased_trace(
        pages,
        length,
        working_set=rng.randint(2, max(2, pages // 2)),
        phase_length=rng.randint(10, 80),
        locality=0.7 + 0.25 * rng.random(),
        seed=seed,
    )


def _assert_same(reference, candidate, context: str) -> None:
    assert candidate is not None, context
    for field in RESULT_FIELDS:
        assert getattr(candidate, field) == getattr(reference, field), (
            f"{context}: {field} diverged"
        )


class TestColumnarEquivalence:
    """Flat traces: list kernel, columnar kernel, reference loop agree."""

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    @pytest.mark.parametrize("name", FAST_POLICIES)
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bit_identical_across_seeds(self, name, seed):
        trace = _trace_for_seed(seed)
        columnar = trace.to_columnar()
        frames = random.Random(seed * 31 + 7).randint(1, 24)
        reference = simulate_trace(
            trace, frames, _make_policy(name, trace),
            record_positions=True, record_evictions=True, fast=False,
        )
        vectorized = run_columnar(
            columnar, frames, _make_policy(name, columnar),
            record_positions=True, record_evictions=True, force=True,
        )
        _assert_same(reference, vectorized, f"{name} seed={seed}")

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_auto_dispatch_above_threshold(self, name):
        # Long enough that simulate_trace(fast=True) picks the columnar
        # path on its own; results must still match the reference loop.
        trace = phased_trace(
            64, 9000, working_set=8, phase_length=120, locality=0.97, seed=11
        )
        columnar = trace.to_columnar()
        reference = simulate_trace(
            trace, 16, _make_policy(name, trace),
            record_positions=True, record_evictions=True, fast=False,
        )
        fast = simulate_trace(
            columnar, 16, _make_policy(name, columnar),
            record_positions=True, record_evictions=True,
        )
        _assert_same(reference, fast, name)

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_duplicate_heavy_spans(self, name):
        # A tiny page population maximizes duplicate keys inside one hit
        # span, exercising the scatter-assignment ordering the LRU/OPT
        # states rely on (later stores win).
        trace = ColumnarTrace([i % 3 for i in range(800)])
        reference = simulate_trace(
            list(trace), 2, _make_policy(name, list(trace)),
            record_positions=True, record_evictions=True, fast=False,
        )
        vectorized = run_columnar(
            trace, 2, _make_policy(name, trace),
            record_positions=True, record_evictions=True, force=True,
        )
        _assert_same(reference, vectorized, name)

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_empty_and_tiny(self, name):
        for refs in ([], [0], [0, 1, 0]):
            trace = ColumnarTrace(refs)
            reference = simulate_trace(
                refs, 2, _make_policy(name, refs),
                record_positions=True, record_evictions=True, fast=False,
            )
            vectorized = run_columnar(
                trace, 2, _make_policy(name, trace),
                record_positions=True, record_evictions=True, force=True,
            )
            _assert_same(reference, vectorized, f"{name} {refs}")


class TestSegmentedEquivalence:
    """(segment, page) traces replay over encoded keys, decoded victims."""

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    @pytest.mark.parametrize("name", FAST_POLICIES)
    @pytest.mark.parametrize("seed", range(0, 100, 4))
    def test_segmented_bit_identical(self, name, seed):
        flat = _trace_for_seed(seed)
        segment_pages = 2 + seed % 7
        segments = array("q", (p // segment_pages for p in flat))
        pages = array("q", (p % segment_pages for p in flat))
        columnar = ColumnarTrace(pages, segments=segments)
        pairs = list(zip(segments.tolist(), pages.tolist()))
        frames = random.Random(seed * 17 + 3).randint(1, 16)
        reference = simulate_trace(
            pairs, frames, _make_policy(name, pairs),
            record_positions=True, record_evictions=True, fast=False,
        )
        vectorized = run_columnar(
            columnar, frames, _make_policy(name, columnar),
            record_positions=True, record_evictions=True, force=True,
        )
        _assert_same(reference, vectorized, f"{name} seed={seed}")
        if vectorized.victims:
            assert all(
                isinstance(victim, tuple) for victim in vectorized.victims
            )

    @pytest.mark.parametrize("name", FAST_POLICIES)
    def test_segmented_list_fallback(self, name):
        # Without numpy the list kernels consume the lazy pair view; the
        # results must be the same as with the vectorized path.
        flat = _trace_for_seed(5)
        segments = array("q", (p // 4 for p in flat))
        pages = array("q", (p % 4 for p in flat))
        columnar = ColumnarTrace(pages, segments=segments)
        pairs = list(zip(segments.tolist(), pages.tolist()))
        reference = simulate_trace(
            pairs, 6, _make_policy(name, pairs),
            record_positions=True, record_evictions=True, fast=False,
        )
        fast = simulate_trace(
            columnar, 6, _make_policy(name, columnar),
            record_positions=True, record_evictions=True,
        )
        _assert_same(reference, fast, name)


class TestAdvisedEquivalence:
    """The advised kernel mirrors AdvisedReplacementPolicy exactly."""

    @pytest.mark.parametrize("name", FAST_POLICIES)
    @pytest.mark.parametrize("seed", range(0, 100, 2))
    def test_advised_bit_identical(self, name, seed):
        trace = list(_trace_for_seed(seed))
        pages = max(trace) + 1 if trace else 1
        rng = random.Random(seed * 7 + 1)
        frames = rng.randint(1, 16)

        def advised():
            policy = AdvisedReplacementPolicy(_make_policy(name, trace))
            state = random.Random(seed)   # same pre-issued advice each time
            for _ in range(state.randrange(6)):
                policy.hint_discard(state.randrange(pages))
            for _ in range(state.randrange(4)):
                policy.lock(state.randrange(pages))
            return policy

        reference = simulate_trace(
            trace, frames, advised(),
            record_positions=True, record_evictions=True, fast=False,
        )
        policy = advised()
        hints_before = list(policy.discard_hints)
        locked_before = set(policy.locked)
        fast = run_fast(
            trace, frames, policy,
            record_positions=True, record_evictions=True,
        )
        _assert_same(reference, fast, f"advised-{name} seed={seed}")
        assert fast.policy == f"advised-{name}"
        # The kernel works on copies: the policy object is untouched.
        assert policy.discard_hints == hints_before
        assert policy.locked == locked_before
        assert policy.hints_honoured == 0

    def test_advised_all_locked_never_wedges(self):
        trace = [0, 1, 2, 3, 0, 1, 2, 3]
        policy = AdvisedReplacementPolicy(FifoPolicy())
        for page in range(4):
            policy.lock(page)
        reference = simulate_trace(
            trace, 2, policy, record_evictions=True, fast=False,
        )
        fresh = AdvisedReplacementPolicy(FifoPolicy())
        for page in range(4):
            fresh.lock(page)
        fast = replay_advised(trace, 2, fresh, record_evictions=True)
        _assert_same(reference, fast, "all-locked")

    def test_advised_subclass_base_falls_back(self):
        class Spiteful(LruPolicy):
            def choose_victim(self, resident, now):
                return max(resident, key=lambda p: self.last_use[p])

        policy = AdvisedReplacementPolicy(Spiteful())
        assert run_fast([0, 1, 2, 0, 3], 2, policy) is None

    def test_advised_opt_wrong_trace_falls_back(self):
        policy = AdvisedReplacementPolicy(BeladyOptimalPolicy([0, 1, 2]))
        assert run_fast([9, 8, 7], 2, policy) is None


class TestColumnarDispatchGuards:
    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    def test_small_trace_declines_without_force(self):
        trace = ColumnarTrace([0, 1, 2, 0, 1])
        assert run_columnar(trace, 2, LruPolicy()) is None
        assert run_columnar(trace, 2, LruPolicy(), force=True) is not None

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    def test_sparse_id_space_declines(self):
        huge = columnar_module.MAX_DENSE_KEYS + 10
        trace = ColumnarTrace([0, huge, 0, huge])
        assert run_columnar(trace, 2, LruPolicy(), force=True) is None

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    def test_negative_ids_decline(self):
        trace = ColumnarTrace([3, -1, 3, 2])
        assert run_columnar(trace, 2, FifoPolicy(), force=True) is None

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    def test_plain_list_declines(self):
        assert run_columnar([0, 1, 0, 1], 2, LruPolicy(), force=True) is None

    @pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
    def test_fault_heavy_trace_aborts_but_stays_correct(self):
        # A cyclic scan over more pages than frames misses on every
        # reference: the abort heuristic hands it to the list kernels.
        from repro.workload import cyclic_trace

        trace = cyclic_trace(3000, 80_000)
        columnar = trace.to_columnar()
        assert run_columnar(columnar, 8, FifoPolicy()) is None
        forced = run_columnar(columnar, 8, FifoPolicy(), force=True)
        via_dispatch = simulate_trace(columnar, 8, FifoPolicy())
        reference = simulate_trace(trace, 8, FifoPolicy(), fast=False)
        _assert_same(reference, forced, "forced")
        _assert_same(reference, via_dispatch, "dispatch")

    def test_no_numpy_falls_back_to_list_kernels(self, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        trace = phased_trace(
            32, 6000, working_set=6, phase_length=90, locality=0.95, seed=3
        )
        columnar = trace.to_columnar()
        assert run_columnar(columnar, 8, LruPolicy(), force=True) is None
        reference = simulate_trace(
            trace, 8, LruPolicy(),
            record_positions=True, record_evictions=True, fast=False,
        )
        fast = simulate_trace(
            columnar, 8, LruPolicy(),
            record_positions=True, record_evictions=True,
        )
        _assert_same(reference, fast, "no-numpy")


@pytest.mark.skipif(numpy_missing, reason="columnar kernels need numpy")
class TestNoNumpyMatrix:
    """A reduced seed sweep with numpy masked out: the list-kernel
    fallback over ``replay_view()`` must match the reference loop."""

    @pytest.mark.parametrize("name", FAST_POLICIES)
    @pytest.mark.parametrize("seed", range(0, 100, 8))
    def test_fallback_bit_identical(self, name, seed, monkeypatch):
        monkeypatch.setattr(columnar_module, "_np", None)
        trace = _trace_for_seed(seed)
        columnar = trace.to_columnar()
        frames = random.Random(seed * 31 + 7).randint(1, 24)
        reference = simulate_trace(
            trace, frames, _make_policy(name, trace),
            record_positions=True, record_evictions=True, fast=False,
        )
        fast = simulate_trace(
            columnar, frames, _make_policy(name, columnar),
            record_positions=True, record_evictions=True,
        )
        _assert_same(reference, fast, f"{name} seed={seed}")


class TestColumnarTraceContainer:
    def test_sequence_semantics_flat(self):
        trace = ColumnarTrace([5, 6, 7, 5])
        assert list(trace) == [5, 6, 7, 5]
        assert trace == [5, 6, 7, 5]
        assert trace[1] == 6
        assert list(trace[1:3]) == [6, 7]
        assert 7 in trace and 9 not in trace
        assert len(trace) == 4

    def test_sequence_semantics_segmented(self):
        trace = ColumnarTrace([5, 6], segments=[0, 1])
        assert list(trace) == [(0, 5), (1, 6)]
        assert trace[1] == (1, 6)
        assert trace == [(0, 5), (1, 6)]
        assert (0, 5) in trace
        view = trace.replay_view()
        assert list(view) == [(0, 5), (1, 6)]
        assert view[0] == (0, 5)
        assert list(view[1:]) == [(1, 6)]

    def test_from_trace_splits_pairs(self):
        trace = ColumnarTrace.from_trace([(0, 1), (2, 3)])
        assert trace.has_segments
        assert list(trace.segments) == [0, 2]
        assert list(trace.pages) == [1, 3]

    def test_write_flags_round_trip(self):
        trace = ColumnarTrace([1, 2, 3], writes=[1, 0, 1])
        assert trace.write_flags() == [True, False, True]
        assert ColumnarTrace([1, 2]).write_flags() is None

    def test_column_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="writes column"):
            ColumnarTrace([1, 2, 3], writes=[1, 0])
        with pytest.raises(ValueError, match="segments column"):
            ColumnarTrace([1, 2, 3], segments=[0])

    def test_close_releases_columns(self):
        trace = ColumnarTrace([1, 2, 3])
        trace.close()
        assert len(trace) == 0
