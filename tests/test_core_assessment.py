"""Tests for the comparative-assessment helpers."""

import pytest

from repro import SystemConfig, build_system, recommended_system
from repro.core import (
    AllocationUnit,
    Contiguity,
    NameSpaceKind,
    PredictiveInformation,
    SystemCharacteristics,
    assess,
    compare,
    facility_inventory,
)
from repro.core.linear_systems import ResidentLinearSystem


def run_workload(system, size=1_000):
    system.create("unit", size)
    for offset in range(0, size, 61):
        system.access("unit", offset, write=(offset % 3 == 0))
    return system


class TestFacilityInventory:
    def test_paged_system_with_tlb_lists_all_relevant(self):
        system = build_system(
            SystemCharacteristics(
                NameSpaceKind.LINEARLY_SEGMENTED,
                PredictiveInformation.NONE,
                Contiguity.ARTIFICIAL,
                AllocationUnit.UNIFORM,
            ),
            SystemConfig(capacity_words=4_096, page_size=256,
                         associative_memory_size=8),
        )
        run_workload(system)
        facilities = facility_inventory(system)
        assert "address mapping" in facilities
        assert any("associative memory" in f for f in facilities)
        assert any("trapping" in f for f in facilities)

    def test_resident_system_lists_no_traps(self):
        system = run_workload(ResidentLinearSystem(4_096))
        facilities = facility_inventory(system)
        assert not any("trapping" in f for f in facilities)

    def test_compacting_system_lists_packing(self):
        system = ResidentLinearSystem(100, contiguity=Contiguity.ARTIFICIAL)
        for index in range(10):
            system.create(index, 10)
        for index in range(0, 10, 2):
            system.destroy(index)
        system.create("wide", 30)   # forces a compaction
        assert any("packing" in f for f in facility_inventory(system))


class TestAssess:
    def test_report_mentions_classification_and_stats(self):
        system = run_workload(recommended_system())
        report = assess(system, label="hybrid")
        assert "Assessment of hybrid" in report
        assert "symbolically segmented" in report
        assert "fault rate" in report

    def test_report_on_untouched_system(self):
        report = assess(recommended_system())
        assert "accesses       : 0" in report


class TestCompare:
    def test_matrix_lines_up_systems(self):
        paged = build_system(
            SystemCharacteristics(
                NameSpaceKind.LINEAR, PredictiveInformation.NONE,
                Contiguity.ARTIFICIAL, AllocationUnit.UNIFORM,
            ),
            SystemConfig(capacity_words=4_096, page_size=256),
        )
        resident = ResidentLinearSystem(4_096)
        for system in (paged, resident):
            run_workload(system)
        text = compare({"paged": paged, "resident": resident})
        assert "paged" in text and "resident" in text
        lines = text.splitlines()
        assert len(lines) == 5   # title, header, rule, two rows

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare({})
