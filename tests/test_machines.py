"""Tests for the appendix machine models (A.1–A.7)."""

import pytest

from repro.core import (
    AllocationUnit,
    Contiguity,
    NameSpaceKind,
    PredictiveInformation,
)
from repro.errors import BoundViolation, ConfigurationError
from repro.machines import (
    all_machines,
    atlas,
    b5000,
    b8500,
    m44_44x,
    model67,
    multics,
    rice,
    survey_matrix,
)
from repro.workload import phased_trace


class TestSurvey:
    def test_seven_machines_in_appendix_order(self):
        machines = all_machines()
        assert [m.appendix for m in machines] == [
            "A.1", "A.2", "A.3", "A.4", "A.5", "A.6", "A.7"
        ]

    def test_matrix_renders_all(self):
        text = survey_matrix(all_machines())
        for fragment in ("ATLAS", "M44/44X", "B5000", "Rice", "B8500",
                         "MULTICS", "Model 67"):
            assert fragment in text

    def test_classifications_match_the_paper(self):
        by_appendix = {m.appendix: m.classification for m in all_machines()}
        # A.1 ATLAS: linear, no advice, artificial, uniform.
        assert by_appendix["A.1"].name_space is NameSpaceKind.LINEAR
        assert by_appendix["A.1"].allocation_unit is AllocationUnit.UNIFORM
        # A.2 M44/44X: accepts advice.
        assert (by_appendix["A.2"].predictive_information
                is PredictiveInformation.ACCEPTED)
        # A.3 B5000: symbolically segmented, nonuniform, real contiguity.
        assert (by_appendix["A.3"].name_space
                is NameSpaceKind.SYMBOLICALLY_SEGMENTED)
        assert by_appendix["A.3"].contiguity is Contiguity.REAL
        assert by_appendix["A.3"].allocation_unit is AllocationUnit.NONUNIFORM
        # A.6 MULTICS: linearly segmented, advice, artificial, and —
        # because of the two page sizes — NONUNIFORM units.
        assert (by_appendix["A.6"].name_space
                is NameSpaceKind.LINEARLY_SEGMENTED)
        assert by_appendix["A.6"].allocation_unit is AllocationUnit.NONUNIFORM
        # A.7 360/67: linearly segmented, no advice, uniform.
        assert (by_appendix["A.7"].name_space
                is NameSpaceKind.LINEARLY_SEGMENTED)
        assert by_appendix["A.7"].allocation_unit is AllocationUnit.UNIFORM

    def test_every_machine_runs_a_common_workload(self):
        trace = phased_trace(pages=6, length=200, working_set=3, seed=1)
        for machine in all_machines():
            system = machine.system
            for index in range(6):
                system.create(f"seg{index}", 400)
            for position, segment in enumerate(trace):
                system.access(f"seg{segment}", (position * 13) % 400)
            stats = system.stats()
            assert stats.accesses == 200, machine.name
            # At least the cold faults: 6 on segment-allocated machines;
            # the 2400 words span as few as 3 pages on 1024-word-page
            # linear machines (name regions share pages).
            assert stats.faults >= 3, machine.name


class TestAtlas:
    def test_published_parameters(self):
        machine = atlas()
        system = machine.system
        assert system.page_size == 512
        assert system.pager.frames.frame_count == 32   # 16384 / 512
        assert system.names.extent >= 1 << 24

    def test_learning_replacement_in_use(self):
        machine = atlas()
        assert machine.system.pager.policy.name == "atlas"

    def test_no_advice(self):
        machine = atlas()
        with pytest.raises(ConfigurationError):
            from repro.advice import will_need
            machine.system.advise(will_need("x"))


class TestM44:
    def test_page_size_variable_at_startup(self):
        small = m44_44x(page_size=512)
        large = m44_44x(page_size=4_096)
        assert small.system.page_size == 512
        assert large.system.page_size == 4_096

    def test_accepts_the_two_instructions(self):
        from repro.advice import will_need, wont_need
        machine = m44_44x()
        system = machine.system
        system.create("u", 2_000)
        system.advise(will_need("u"))
        system.access("u", 0)
        assert system.stats().faults == 0   # prefetched
        system.advise(wont_need("u"))

    def test_class_random_replacement(self):
        assert m44_44x().system.pager.policy.base.name == "m44"


class TestB5000:
    def test_segment_size_limit_enforced(self):
        machine = b5000()
        with pytest.raises(ValueError):
            machine.system.create("too-big", 1_025)

    def test_segment_is_the_unit(self):
        machine = b5000()
        machine.system.create("s", 1_000)
        machine.system.access("s", 0)
        assert machine.system.manager.allocator.used_words == 1_000

    def test_bound_checking(self):
        machine = b5000()
        machine.system.create("array", 100)
        machine.system.access("array", 0)
        with pytest.raises(BoundViolation):
            machine.system.access("array", 100)

    def test_cyclical_replacement(self):
        assert b5000().system.manager.policy.name == "clock"


class TestRice:
    def test_uses_the_chain_allocator(self):
        from repro.alloc import RiceAllocator
        machine = rice()
        assert isinstance(machine.system.manager.allocator, RiceAllocator)

    def test_back_reference_overhead_charged(self):
        machine = rice()
        machine.system.create("s", 100)
        machine.system.access("s", 0)
        assert machine.system.manager.allocator.used_words == 101

    def test_chain_reuse_after_destroy(self):
        machine = rice()
        system = machine.system
        system.create("a", 100)
        system.access("a", 0)
        system.create("b", 100)
        system.access("b", 0)
        system.destroy("a")
        allocator = system.manager.allocator
        assert allocator.chain_length == 1
        system.create("c", 100)
        system.access("c", 0)
        assert allocator.chain_length == 0   # chain block reused


class TestB8500:
    def test_prt_scratchpad_reduces_descriptor_references(self):
        plain = b5000()
        scratch = b8500()
        for machine in (plain, scratch):
            machine.system.create("s", 500)
            for index in range(100):
                machine.system.access("s", index % 500)
        assert (
            scratch.system.stats().mapping_cycles
            < plain.system.stats().mapping_cycles
        )

    def test_tlb_size_is_24_prt_words(self):
        machine = b8500()
        assert machine.system.manager.table.tlb.capacity == 24


class TestMultics:
    def test_dual_page_sizes(self):
        machine = multics()
        system = machine.system
        system.create("tiny", 100)
        system.create("huge", 50_000)
        assert system.page_size_of("tiny") == 64
        assert system.page_size_of("huge") == 1_024

    def test_small_pages_reduce_internal_waste(self):
        machine = multics()
        system = machine.system
        system.create("tiny", 100)
        # 100 words in 64-word pages: 2 pages = 128 words, waste 28 — not
        # the 924 a 1024-word page would waste.
        assert system.internal_waste_words() == 28

    def test_segment_extent_limit(self):
        machine = multics()
        with pytest.raises(ValueError):
            machine.system.create("over", 262_145)

    def test_three_directives(self):
        from repro.advice import keep_resident, will_need, wont_need
        machine = multics()
        system = machine.system
        system.create("s", 2_000)
        system.access("s", 0)
        system.advise(keep_resident("s"))
        system.advise(wont_need("s"))
        system.advise(will_need("s"))   # accepted (may be a no-op)

    def test_runs_workload_on_both_regions(self):
        machine = multics()
        system = machine.system
        system.create("small", 500)
        system.create("large", 20_000)
        for index in range(50):
            system.access("small", index % 500)
            system.access("large", (index * 997) % 20_000)
        stats = system.stats()
        assert stats.accesses == 100
        assert stats.faults > 0


class TestModel67:
    def test_addressing_versions(self):
        assert model67(addressing_bits=24).name.endswith("(24-bit)")
        assert model67(addressing_bits=32).name.endswith("(32-bit)")
        with pytest.raises(ValueError):
            model67(addressing_bits=16)

    def test_24_bit_version_has_16_segments(self):
        machine = model67(addressing_bits=24)
        system = machine.system
        for index in range(16):
            system.create(f"s{index}", 100)
        from repro.errors import OutOfMemory
        with pytest.raises(OutOfMemory):
            system.create("seventeenth", 100)

    def test_32_bit_version_has_4096_segments(self):
        machine = model67(addressing_bits=32)
        assert machine.system.naming._numbers.max_segments == 4_096

    def test_eight_entry_associative_memory(self):
        machine = model67()
        assert machine.system.mapper.tlb.capacity == 8

    def test_segment_maximum(self):
        machine = model67()
        with pytest.raises(ValueError):
            machine.system.create("big", 262_145)
