"""Tests for the relocation/limit register pair."""

import pytest

from repro.addressing import RelocationLimitRegister
from repro.errors import BoundViolation


class TestTranslate:
    def test_adds_base(self):
        pair = RelocationLimitRegister(base=1000, limit=200)
        assert pair.translate(5).address == 1005

    def test_name_zero(self):
        pair = RelocationLimitRegister(base=1000, limit=200)
        assert pair.translate(0).address == 1000

    def test_last_valid_name(self):
        pair = RelocationLimitRegister(base=1000, limit=200)
        assert pair.translate(199).address == 1199

    def test_limit_enforced(self):
        pair = RelocationLimitRegister(base=1000, limit=200)
        with pytest.raises(BoundViolation):
            pair.translate(200)

    def test_negative_name_rejected(self):
        pair = RelocationLimitRegister(base=0, limit=10)
        with pytest.raises(BoundViolation):
            pair.translate(-1)

    def test_no_mapping_cycles(self):
        """Register mapping consumes no storage references (FIG2 baseline)."""
        pair = RelocationLimitRegister(base=0, limit=10)
        assert pair.translate(3).mapping_cycles == 0

    def test_counters(self):
        pair = RelocationLimitRegister(base=0, limit=10)
        pair.translate(1)
        pair.translate(2)
        with pytest.raises(BoundViolation):
            pair.translate(99)
        assert pair.translations == 2
        assert pair.violations == 1


class TestRelocate:
    def test_relocation_is_one_register_update(self):
        pair = RelocationLimitRegister(base=1000, limit=100)
        pair.relocate(5000)
        assert pair.translate(7).address == 5007

    def test_relocate_rejects_negative(self):
        pair = RelocationLimitRegister(base=0, limit=10)
        with pytest.raises(ValueError):
            pair.relocate(-1)


class TestConstruction:
    def test_rejects_negative_base(self):
        with pytest.raises(ValueError):
            RelocationLimitRegister(base=-1, limit=10)

    def test_rejects_nonpositive_limit(self):
        with pytest.raises(ValueError):
            RelocationLimitRegister(base=0, limit=0)
