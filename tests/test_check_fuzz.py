"""Seeded fuzzing of allocator state through the invariant engine.

Satellite of the checked-mode work: random allocate/free/compact
sequences across every placement policy and both free-list backends,
with ``check_invariants()`` run after every operation and an
:class:`~repro.check.InvariantSink` riding the allocator's tracer.
OutOfMemory rejections and post-compaction states are part of the walk —
exactly the regimes where the rover bug and the non-transactional
compact used to corrupt state silently.
"""

import random

import pytest

from repro.alloc import FreeListAllocator
from repro.alloc.compaction import compact
from repro.check import InvariantSink, InvariantSuite, check_invariants
from repro.errors import OutOfMemory
from repro.observe.tracer import Tracer

POLICIES = ("first_fit", "best_fit", "worst_fit", "next_fit")
BACKENDS = (False, True)  # linear, indexed
SEEDS = (0, 1, 2)

CASES = [
    (policy, indexed, seed)
    for policy in POLICIES
    for indexed in BACKENDS
    for seed in SEEDS
    if not (indexed and policy == "next_fit")   # rover needs the linear list
]


def fuzz_walk(policy, indexed, seed, steps=300):
    """One random walk; returns (allocator, ops-performed counters)."""
    rng = random.Random(f"fuzz:{policy}:{indexed}:{seed}")
    suite = InvariantSuite()
    sink = InvariantSink([], suite=suite, every=8)
    allocator = FreeListAllocator(
        2048, policy=policy, indexed=indexed, tracer=Tracer([sink])
    )
    sink.subjects.append(allocator)
    live = []
    performed = {"allocate": 0, "free": 0, "compact": 0, "oom": 0}
    for _ in range(steps):
        roll = rng.random()
        if roll < 0.55:
            size = rng.choice((1, 3, 16, 64, 200, 700))
            try:
                live.append(allocator.allocate(size))
                performed["allocate"] += 1
            except OutOfMemory:
                performed["oom"] += 1
        elif roll < 0.9 and live:
            allocator.free(live.pop(rng.randrange(len(live))))
            performed["free"] += 1
        elif roll >= 0.9:
            result = compact(allocator)
            performed["compact"] += 1
            # Compaction relocates: refresh handles via the map.
            live = [
                type(block)(result.relocations.get(block.address, block.address),
                            block.size)
                for block in live
            ]
        check_invariants(allocator, suite=suite)
    return allocator, suite, performed


@pytest.mark.parametrize("policy,indexed,seed", CASES)
def test_fuzz_walk_stays_consistent(policy, indexed, seed):
    allocator, suite, performed = fuzz_walk(policy, indexed, seed)
    assert suite.ok
    assert suite.checks_run > 0
    assert performed["allocate"] > 0 and performed["free"] > 0
    assert performed["compact"] > 0
    allocator.check_invariants()


def test_fuzz_reaches_out_of_memory():
    """At least one walk must exercise the rejection path."""
    total_oom = 0
    for policy, indexed, seed in CASES:
        _, _, performed = fuzz_walk(policy, indexed, seed, steps=150)
        total_oom += performed["oom"]
    assert total_oom > 0


def test_fuzz_post_compaction_state_is_maximal_hole():
    """After compaction with no frees pending, one hole remains."""
    allocator, _, _ = fuzz_walk("best_fit", False, 0)
    compact(allocator)
    holes = allocator.holes()
    assert len(holes) <= 1
    check_invariants(allocator)
