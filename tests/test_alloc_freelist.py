"""Tests for the free-list allocator and its placement policies."""

import pytest

from repro.alloc import Allocation, FreeListAllocator
from repro.errors import InvalidFree, OutOfMemory


class TestBasics:
    def test_first_allocation_at_zero(self):
        allocator = FreeListAllocator(100)
        assert allocator.allocate(10).address == 0

    def test_sequential_allocations_are_adjacent(self):
        allocator = FreeListAllocator(100)
        a = allocator.allocate(10)
        b = allocator.allocate(20)
        assert b.address == a.end

    def test_exhaustion_raises(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(100)
        with pytest.raises(OutOfMemory):
            allocator.allocate(1)

    def test_fragmented_space_cannot_serve_large_request(self):
        """The defining symptom of external fragmentation."""
        allocator = FreeListAllocator(100)
        blocks = [allocator.allocate(10) for _ in range(10)]
        for block in blocks[::2]:
            allocator.free(block)      # 50 words free, in 10-word shreds
        assert allocator.free_words == 50
        with pytest.raises(OutOfMemory):
            allocator.allocate(11)

    def test_nonpositive_size_rejected(self):
        with pytest.raises(ValueError):
            FreeListAllocator(100).allocate(0)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            FreeListAllocator(0)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            FreeListAllocator(100, policy="magic_fit")


class TestFree:
    def test_free_returns_space(self):
        allocator = FreeListAllocator(100)
        block = allocator.allocate(60)
        allocator.free(block)
        assert allocator.free_words == 100
        assert allocator.allocate(100).size == 100

    def test_double_free_rejected(self):
        allocator = FreeListAllocator(100)
        block = allocator.allocate(10)
        allocator.free(block)
        with pytest.raises(InvalidFree):
            allocator.free(block)

    def test_free_of_unknown_block_rejected(self):
        allocator = FreeListAllocator(100)
        with pytest.raises(InvalidFree):
            allocator.free(Allocation(5, 10))

    def test_free_with_wrong_size_rejected(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(10)
        with pytest.raises(InvalidFree):
            allocator.free(Allocation(0, 5))


class TestCoalescing:
    def test_adjacent_frees_merge(self):
        allocator = FreeListAllocator(100)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        c = allocator.allocate(40)
        allocator.free(a)
        allocator.free(b)
        # a and b merged with each other (and c still live)
        assert allocator.holes() == [(0, 60)]
        allocator.free(c)
        assert allocator.holes() == [(0, 100)]

    def test_merge_with_successor(self):
        allocator = FreeListAllocator(100)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        allocator.allocate(40)
        allocator.free(b)
        allocator.free(a)   # merges with the hole after it
        assert allocator.holes() == [(0, 60)]

    def test_merge_both_sides(self):
        allocator = FreeListAllocator(90)
        a = allocator.allocate(30)
        b = allocator.allocate(30)
        c = allocator.allocate(30)
        allocator.free(a)
        allocator.free(c)
        allocator.free(b)   # bridges both holes
        assert allocator.holes() == [(0, 90)]


class TestPlacementPolicies:
    def _with_two_holes(self, policy):
        """Storage with a 20-word hole at 0 and a 50-word hole at 50."""
        allocator = FreeListAllocator(100, policy=policy)
        first = allocator.allocate(20)
        allocator.allocate(30)
        rest = allocator.allocate(50)
        allocator.free(first)
        allocator.free(rest)
        assert allocator.holes() == [(0, 20), (50, 50)]
        return allocator

    def test_first_fit_takes_lowest(self):
        allocator = self._with_two_holes("first_fit")
        assert allocator.allocate(10).address == 0

    def test_best_fit_takes_smallest_sufficient(self):
        allocator = self._with_two_holes("best_fit")
        assert allocator.allocate(10).address == 0
        # A 30-word request only fits the big hole.
        assert allocator.allocate(30).address == 50

    def test_best_fit_prefers_tight_hole_even_if_higher(self):
        allocator = FreeListAllocator(200, policy="best_fit")
        big = allocator.allocate(100)
        allocator.allocate(10)
        small = allocator.allocate(20)
        allocator.allocate(10)
        allocator.free(big)     # hole (0, 100)
        allocator.free(small)   # hole (110, 20)
        assert allocator.allocate(20).address == 110

    def test_worst_fit_takes_largest(self):
        allocator = self._with_two_holes("worst_fit")
        assert allocator.allocate(10).address == 50

    def test_next_fit_resumes_from_rover(self):
        allocator = FreeListAllocator(300, policy="next_fit")
        blocks = [allocator.allocate(100) for _ in range(3)]
        for block in blocks:
            allocator.free(block)
        assert allocator.holes() == [(0, 300)]
        allocator.allocate(50)   # from (0,300) -> hole (50,250)
        a = allocator.allocate(50)
        assert a.address == 50   # continues in the same hole

    def test_best_fit_leaves_less_shredding_than_worst_fit(self):
        """Classic contrast: worst-fit destroys big holes."""
        def run(policy):
            allocator = FreeListAllocator(1000, policy=policy)
            keep = []
            for i in range(12):
                keep.append(allocator.allocate(40))
            for block in keep[::2]:
                allocator.free(block)
            for _ in range(5):
                allocator.allocate(30)
            return allocator.largest_hole
        assert run("best_fit") >= run("worst_fit")


class TestCounters:
    def test_request_and_failure_counts(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(60)
        with pytest.raises(OutOfMemory):
            allocator.allocate(60)
        assert allocator.counters.requests == 2
        assert allocator.counters.failures == 1
        assert allocator.counters.words_allocated == 60

    def test_search_steps_accumulate(self):
        allocator = FreeListAllocator(100, policy="best_fit")
        a = allocator.allocate(10)
        allocator.allocate(10)
        allocator.free(a)
        allocator.allocate(5)    # examines 2 holes
        assert allocator.counters.search_steps >= 2

    def test_free_counter(self):
        allocator = FreeListAllocator(100)
        block = allocator.allocate(10)
        allocator.free(block)
        assert allocator.counters.frees == 1
        assert allocator.counters.words_freed == 10


class TestInspection:
    def test_allocations_sorted(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(10)
        allocator.allocate(10)
        addresses = [a.address for a in allocator.allocations()]
        assert addresses == sorted(addresses)

    def test_used_plus_free_is_capacity(self):
        allocator = FreeListAllocator(100)
        allocator.allocate(30)
        assert allocator.used_words + allocator.free_words == 100

    def test_largest_hole_empty_when_full(self):
        allocator = FreeListAllocator(10)
        allocator.allocate(10)
        assert allocator.largest_hole == 0


class TestNextFitRover:
    """Pin the rover's corner cases: wraparound and invalidation.

    Knuth's roving pointer resumes each search where the last one ended;
    the free list under it shifts as holes are consumed and coalesced,
    so the rover must wrap past the end and survive its hole vanishing.
    """

    def test_search_wraps_past_end_of_free_list(self):
        allocator = FreeListAllocator(100, policy="next_fit")
        a = allocator.allocate(10)           # 0..10
        allocator.allocate(30)               # 10..40
        c = allocator.allocate(30)           # 40..70
        allocator.allocate(10)               # 70..80
        e = allocator.allocate(10)           # 80..90
        allocator.allocate(10)               # 90..100
        for block in (a, c, e):
            allocator.free(block)
        # holes: [(0,10), (40,30), (80,10)], rover at 0.
        assert allocator.allocate(20).address == 40   # skips the 10-word hole
        assert allocator.allocate(10).address == 60   # resumes in the same hole
        # Rover now sits past the consumed middle hole; first_fit would
        # return 0 here, next_fit must resume at the high hole...
        assert allocator.allocate(10).address == 80
        # ...and wrap around the end of the list for the last one.
        assert allocator.allocate(10).address == 0
        allocator.check_invariants()

    def test_rover_survives_hole_coalesced_away(self):
        allocator = FreeListAllocator(60, policy="next_fit")
        blocks = [allocator.allocate(10) for _ in range(6)]
        for index in (0, 2, 4):
            allocator.free(blocks[index])
        # holes: [(0,10), (20,10), (40,10)], rover at 0.
        assert allocator.allocate(7).address == 0
        h = allocator.allocate(7)            # 20..27, rover -> hole 1
        assert h.address == 20
        i = allocator.allocate(7)            # 40..47, rover -> hole 2 (last)
        assert i.address == 40
        # Free everything between: each bridging free merges two holes
        # into one, shrinking the list under the rover until it points
        # past the end and must be reset.
        allocator.free(blocks[1])            # (7,3)+(10,10) -> (7,13)
        allocator.free(h)                    # bridges into (7,23)
        allocator.free(blocks[3])            # (7,33)
        allocator.free(i)                    # bridges into (7,43): one hole
        assert allocator.holes() == [(7, 43)]
        allocator.check_invariants()
        # The next search must not index past the shrunken list.
        assert allocator.allocate(5).address == 7
        assert allocator.holes() == [(12, 38)]
        allocator.check_invariants()

    def test_rover_survives_coalesce_below_it(self):
        """Regression: a merge *below* the rover used to leave it stale.

        Deleting holes below the rover shifts every later index down;
        the old code only reset the rover when it ran past the end, so
        here it silently slid from its hole back to the list head and
        next_fit degenerated into first_fit for one search.
        """
        allocator = FreeListAllocator(80, policy="next_fit")
        b0 = allocator.allocate(10)          # 0..10
        b1 = allocator.allocate(5)           # 10..15
        b2 = allocator.allocate(10)          # 15..25
        allocator.allocate(10)               # 25..35
        b4 = allocator.allocate(20)          # 35..55
        allocator.allocate(10)               # 55..65
        allocator.allocate(15)               # 65..80
        for block in (b0, b2, b4):
            allocator.free(block)
        # holes: [(0,10), (15,10), (35,20)], rover at 0.
        assert allocator.allocate(15).address == 35   # only hole 2 fits
        # holes: [(0,10), (15,10), (50,5)], rover -> hole 2.
        allocator.free(b1)   # three-way merge: [(0,25), (50,5)]
        assert allocator.holes() == [(0, 25), (50, 5)]
        # The rover's hole is now index 1; a stale index-2 rover would
        # wrap to the head and place this at 0.
        assert allocator.allocate(5).address == 50
        allocator.check_invariants()
