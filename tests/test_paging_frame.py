"""Tests for the frame table."""

import pytest

from repro.errors import OutOfMemory
from repro.paging import FrameTable


class TestAcquireRelease:
    def test_acquire_returns_frame_number(self):
        frames = FrameTable(4)
        assert frames.acquire("a") in range(4)

    def test_frames_are_distinct(self):
        frames = FrameTable(4)
        numbers = {frames.acquire(i) for i in range(4)}
        assert len(numbers) == 4

    def test_full_table_rejects(self):
        frames = FrameTable(2)
        frames.acquire("a")
        frames.acquire("b")
        with pytest.raises(OutOfMemory):
            frames.acquire("c")

    def test_release_recycles(self):
        frames = FrameTable(1)
        first = frames.acquire("a")
        frames.release("a")
        assert frames.acquire("b") == first

    def test_double_acquire_rejected(self):
        frames = FrameTable(4)
        frames.acquire("a")
        with pytest.raises(ValueError):
            frames.acquire("a")

    def test_release_unknown_rejected(self):
        with pytest.raises(KeyError):
            FrameTable(4).release("ghost")

    def test_release_returns_frame(self):
        frames = FrameTable(4)
        frame = frames.acquire("a")
        assert frames.release("a") == frame


class TestInspection:
    def test_counts(self):
        frames = FrameTable(4)
        frames.acquire("a")
        frames.acquire("b")
        assert frames.resident_count == 2
        assert frames.free_count == 2
        assert not frames.is_full()

    def test_is_full(self):
        frames = FrameTable(1)
        frames.acquire("a")
        assert frames.is_full()

    def test_owner_and_frame_of(self):
        frames = FrameTable(4)
        frame = frames.acquire("page-9")
        assert frames.owner(frame) == "page-9"
        assert frames.frame_of("page-9") == frame
        assert frames.frame_of("absent") is None

    def test_owner_bounds(self):
        with pytest.raises(IndexError):
            FrameTable(4).owner(4)

    def test_contains(self):
        frames = FrameTable(4)
        frames.acquire("a")
        assert "a" in frames
        assert "b" not in frames

    def test_resident_pages(self):
        frames = FrameTable(4)
        frames.acquire("a")
        frames.acquire("b")
        assert set(frames.resident_pages()) == {"a", "b"}

    def test_rejects_bad_count(self):
        with pytest.raises(ValueError):
            FrameTable(0)
