"""Deterministic fault injection and the retry/recovery contract."""

import pytest

from repro.check import (
    FaultPlan,
    FlakyBackingStore,
    FlakyMemory,
    RetryPolicy,
    RetryingBackingStore,
    TornJsonlSink,
)
from repro.check.oracle import _final_stats, _paged_run
from repro.clock import Clock
from repro.errors import TransientFault
from repro.memory.backing import BackingStore
from repro.memory.hierarchy import StorageLevel
from repro.memory.physical import PhysicalMemory


def make_backing(clock=None):
    level = StorageLevel("drum", 1_000_000, access_time=100, transfer_rate=1.0)
    return BackingStore(level, clock=clock if clock is not None else Clock())


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        draws = []
        for _ in range(2):
            plan = FaultPlan(9, fetch_rate=0.3)
            draws.append([plan.should_fail("fetch") for _ in range(200)])
        assert draws[0] == draws[1]
        assert any(draws[0])

    def test_channels_are_independent_streams(self):
        plan = FaultPlan(9, fetch_rate=0.3, store_rate=0.3)
        solo = FaultPlan(9, fetch_rate=0.3)
        mixed = []
        for _ in range(100):
            mixed.append(plan.should_fail("fetch"))
            plan.should_fail("store")  # interleaved draws on another channel
        assert mixed == [solo.should_fail("fetch") for _ in range(100)]

    def test_consecutive_failures_are_capped(self):
        plan = FaultPlan(1, fetch_rate=0.99, max_consecutive=2)
        run = 0
        for _ in range(500):
            if plan.should_fail("fetch"):
                run += 1
                assert run <= 2
            else:
                run = 0
        assert plan.injected["fetch"] > 0

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultPlan(0, fetch_rate=1.0)
        with pytest.raises(ValueError):
            FaultPlan(0, max_consecutive=0)


class TestFlakyLayers:
    def test_flaky_fetch_raises_without_touching_store(self):
        backing = make_backing()
        backing.store("p", [1, 2, 3], charge=False)
        flaky = FlakyBackingStore(backing, FaultPlan(3, fetch_rate=0.99))
        fetched_before = backing.fetches
        with pytest.raises(TransientFault) as caught:
            flaky.fetch("p")
        assert caught.value.channel == "fetch"
        assert backing.fetches == fetched_before  # nothing happened

    def test_flaky_move_raises_before_copying(self):
        memory = PhysicalMemory(64)
        for i in range(8):
            memory.write(i, f"w{i}")
        flaky = FlakyMemory(memory, FaultPlan(3, move_rate=0.99))
        with pytest.raises(TransientFault):
            flaky.move(0, 16, 8)
        assert memory.read(16) is None  # untouched
        assert memory.words_moved == 0

    def test_passthrough_preserves_api(self):
        backing = make_backing()
        backing.store("p", [1], charge=False)
        flaky = FlakyBackingStore(backing, FaultPlan(3))
        assert "p" in flaky
        assert len(flaky) == 1
        image, _ = flaky.fetch("p", charge=False)
        assert image == [1]


class TestRetry:
    def test_retry_recovers_transients(self):
        backing = make_backing()
        backing.store("p", [7], charge=False)
        plan = FaultPlan(5, fetch_rate=0.5, max_consecutive=2)
        retrying = RetryingBackingStore(
            FlakyBackingStore(backing, plan), RetryPolicy(max_attempts=4)
        )
        for _ in range(50):
            image, _ = retrying.fetch("p", charge=False)
            assert image == [7]
        assert plan.injected["fetch"] > 0
        assert retrying.stats.retries == plan.injected["fetch"]
        assert retrying.stats.exhausted == 0
        assert retrying.stats.backoff_cycles > 0

    def test_exhaustion_reraises_the_fault(self):
        backing = make_backing()
        backing.store("p", [7], charge=False)
        # max_consecutive above max_attempts: a run can outlast the retries.
        plan = FaultPlan(5, fetch_rate=0.99, max_consecutive=10)
        retrying = RetryingBackingStore(
            FlakyBackingStore(backing, plan), RetryPolicy(max_attempts=2)
        )
        with pytest.raises(TransientFault):
            for _ in range(50):
                retrying.fetch("p", charge=False)
        assert retrying.stats.exhausted == 1

    def test_backoff_is_exponential(self):
        policy = RetryPolicy(max_attempts=4, base_backoff=100)
        assert [policy.backoff_cycles(a) for a in range(3)] == [100, 200, 400]


class TestBitIdenticalRecovery:
    def test_recovered_run_matches_fault_free_run(self):
        clean = _final_stats(*_paged_run(seed=2, length=500))
        plan = FaultPlan(2, fetch_rate=0.2, store_rate=0.15, max_consecutive=2)
        holder = {}

        def wrap(backing):
            holder["retrying"] = RetryingBackingStore(
                FlakyBackingStore(backing, plan), RetryPolicy(max_attempts=4)
            )
            return holder["retrying"]

        faulty = _final_stats(*_paged_run(seed=2, length=500, wrap_backing=wrap))
        assert plan.total_injected > 0
        assert holder["retrying"].stats.exhausted == 0
        assert faulty == clean  # bit-identical final statistics


class TestTornSink:
    def test_torn_lines_are_skipped_by_the_reader(self, tmp_path):
        from repro.observe.analysis.stream import EventStream
        from repro.observe.events import Fault
        from repro.observe.sinks import JsonlSink

        path = tmp_path / "trace.jsonl"
        plan = FaultPlan(4, torn_line_rate=0.3, max_consecutive=1)
        sink = TornJsonlSink(JsonlSink(path), plan)
        total = 200
        for i in range(total):
            sink.accept(Fault(time=i, unit=i % 7))
        sink.close()

        stream = EventStream(path)
        events = list(stream)
        assert sink.torn > 0
        assert stream.corrupt_lines == sink.torn
        assert len(events) == total - sink.torn
        assert all(event.kind == "fault" for event in events)
