"""Tests for program arrivals (the open-system model)."""

import pytest

from repro.paging import LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import cyclic_trace


def spec(name, length=100, arrival=0, frames=4):
    return ProgramSpec(
        name, cyclic_trace(pages=3, length=length), frames, LruPolicy(),
        arrival=arrival,
    )


class TestArrivals:
    def test_late_arrival_starts_no_earlier(self):
        summary = MultiprogrammingSimulator(
            [spec("early"), spec("late", arrival=5_000)],
            RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        by_name = {p.name: p for p in summary.programs}
        assert by_name["late"].completion_time > 5_000
        assert by_name["early"].completion_time < 5_000

    def test_processor_idles_until_first_arrival(self):
        summary = MultiprogrammingSimulator(
            [spec("only", arrival=1_000)],
            RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        assert summary.cpu_idle >= 1_000

    def test_arrival_while_another_runs(self):
        """The newcomer joins the ready queue, no idling involved."""
        summary = MultiprogrammingSimulator(
            [spec("long", length=5_000), spec("newcomer", arrival=200)],
            RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        assert all(p.references for p in summary.programs)
        by_name = {p.name: p for p in summary.programs}
        assert by_name["newcomer"].completion_time > 200

    def test_late_arrival_accrues_no_early_space_time(self):
        """Storage is occupied only after arrival."""
        summary = MultiprogrammingSimulator(
            [spec("early", length=2_000), spec("late", arrival=100_000)],
            RoundRobinScheduler(50),
            fetch_time=100,
        ).run()
        by_name = {p.name: p for p in summary.programs}
        # The late program's space-time covers only its own run, which is
        # far shorter than the idle gap before it.
        own_run = by_name["late"].completion_time - 100_000
        assert by_name["late"].space_time.total <= own_run * 4 * 512

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            spec("p", arrival=-1)

    def test_reserved_name_rejected(self):
        with pytest.raises(ValueError):
            MultiprogrammingSimulator(
                [spec("arrival")], RoundRobinScheduler(10), fetch_time=1
            )

    def test_arrivals_with_shared_pool(self):
        summary = MultiprogrammingSimulator(
            [spec("a"), spec("b", arrival=500)],
            RoundRobinScheduler(50),
            fetch_time=100,
            shared_frames=8,
            shared_policy=LruPolicy(),
        ).run()
        assert len(summary.programs) == 2
        assert all(p.completion_time > 0 for p in summary.programs)
