"""Sparkline hardening: degenerate series must render, never raise.

The dashboard calls ``sparkline`` on whatever a live run produces —
empty bucket lists, flat series, NaN fault rates from 0/0, inf
throughputs from a zero-elapsed window — so every degenerate shape has
a pinned rendering here.
"""

import math

import pytest

from repro.metrics.report import SPARK_LEVELS, sparkline


class TestDegenerateSeries:
    def test_empty_series_is_empty_string(self):
        assert sparkline([]) == ""

    def test_single_sample_is_one_flat_glyph(self):
        assert sparkline([5.0], width=4) == SPARK_LEVELS[1]

    def test_all_equal_series_is_flat(self):
        assert sparkline([2, 2, 2], width=4) == SPARK_LEVELS[1] * 3

    def test_all_zero_series_is_flat_not_blank(self):
        assert sparkline([0, 0, 0, 0]) == SPARK_LEVELS[1] * 4

    def test_nan_renders_blank_among_finite_samples(self):
        line = sparkline([0.0, float("nan"), 10.0], width=8)
        assert line[0] == SPARK_LEVELS[0]
        assert line[1] == SPARK_LEVELS[0]      # NaN → blank
        assert line[2] == SPARK_LEVELS[-1]

    def test_inf_renders_blank_and_does_not_skew_the_scale(self):
        line = sparkline([1.0, float("inf"), 2.0], width=8)
        assert line[1] == SPARK_LEVELS[0]
        # the finite samples still span the full ink range
        assert line[0] == SPARK_LEVELS[0]
        assert line[2] == SPARK_LEVELS[-1]

    def test_all_nonfinite_series_is_flat(self):
        values = [float("nan"), float("inf"), float("-inf")]
        assert sparkline(values, width=8) == SPARK_LEVELS[1] * 3

    def test_negative_values_scale_normally(self):
        line = sparkline([-10, 0, 10], width=4)
        assert line[0] == SPARK_LEVELS[0]
        assert line[-1] == SPARK_LEVELS[-1]


class TestScaling:
    def test_min_maps_low_max_maps_high(self):
        line = sparkline([0, 1, 2, 3], width=4)
        assert line == " -*@"

    def test_monotone_series_renders_monotone_ink(self):
        line = sparkline(list(range(10)), width=10)
        levels = [SPARK_LEVELS.index(glyph) for glyph in line]
        assert levels == sorted(levels)

    def test_output_never_exceeds_width(self):
        for length in (1, 5, 59, 60, 61, 1000):
            assert len(sparkline(list(range(length)), width=60)) <= 60

    def test_downsampling_preserves_the_shape(self):
        ramp = list(range(1000))
        line = sparkline(ramp, width=10)
        assert len(line) == 10
        levels = [SPARK_LEVELS.index(glyph) for glyph in line]
        assert levels == sorted(levels)
        assert levels[0] < levels[-1]

    def test_downsampled_nan_chunk_is_blank(self):
        values = [1.0] * 50 + [float("nan")] * 50 + [2.0] * 50
        line = sparkline(values, width=3)
        assert line[1] == SPARK_LEVELS[0]

    def test_ints_and_floats_mix(self):
        assert sparkline([1, 2.5, 3], width=3)


class TestValidation:
    def test_nonpositive_width_rejected(self):
        with pytest.raises(ValueError, match="width"):
            sparkline([1, 2], width=0)
        with pytest.raises(ValueError, match="width"):
            sparkline([1, 2], width=-3)

    def test_levels_are_plain_ascii(self):
        assert all(ord(glyph) < 128 for glyph in SPARK_LEVELS)

    def test_output_uses_only_known_levels(self):
        values = [math.sin(x / 5) for x in range(200)]
        assert set(sparkline(values, width=40)) <= set(SPARK_LEVELS)
