"""Tracer wiring across allocators, the TLB, prefetch, and cleaning."""

import pytest

from repro.addressing import PageTable
from repro.addressing.associative import AssociativeMemory
from repro.alloc.buddy import BuddyAllocator
from repro.alloc.rice import RiceAllocator
from repro.alloc.two_ends import TwoEndsAllocator
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.observe import RingBufferSink, Tracer
from repro.paging import DemandPager, FrameTable, LruPolicy, PageCleaner
from repro.paging.prefetch import SequentialPrefetcher


@pytest.fixture()
def ring():
    return RingBufferSink(capacity=4096)


@pytest.fixture()
def tracer(ring):
    return Tracer([ring])


class TestAllocatorTracing:
    def test_buddy_emits_rounded_place_and_free(self, ring, tracer):
        allocator = BuddyAllocator(1024, tracer=tracer)
        block = allocator.allocate(100)
        allocator.free(block)
        place, free = ring.events()
        assert (place.kind, free.kind) == ("place", "free")
        assert place.policy == "buddy"
        # The buddy system rounds to the power-of-two block; the trace
        # records the block actually held, internal fragmentation included.
        assert place.size == 128
        assert free.size == 128
        assert free.address == place.where

    def test_two_ends_emits_requested_sizes(self, ring, tracer):
        allocator = TwoEndsAllocator(1000, size_threshold=100, tracer=tracer)
        small = allocator.allocate(10)
        large = allocator.allocate(200)
        allocator.free(small)
        kinds = [(e.kind, getattr(e, "size", None)) for e in ring.events()]
        assert kinds == [("place", 10), ("place", 200), ("free", 10)]
        policies = {e.policy for e in ring.events() if e.kind == "place"}
        assert policies == {"two_ends"}

    def test_rice_emits_gross_extents(self, ring, tracer):
        allocator = RiceAllocator(1000, tracer=tracer)
        block = allocator.allocate(99)
        allocator.free(block)
        place, free = ring.events()
        assert place.size == 100        # 99 + 1 back-reference word
        assert free.size == 100
        assert place.policy == "rice"

    def test_timestamps_count_requests_and_frees(self, ring, tracer):
        allocator = TwoEndsAllocator(1000, size_threshold=100, tracer=tracer)
        a = allocator.allocate(10)
        b = allocator.allocate(20)
        allocator.free(a)
        allocator.free(b)
        assert [e.time for e in ring.events()] == [1, 2, 3, 4]

    def test_untraced_allocator_emits_nothing(self):
        allocator = BuddyAllocator(1024)
        assert not allocator.tracer.enabled
        allocator.free(allocator.allocate(10))   # must not raise

    def test_place_free_stream_replays_into_occupancy(self, ring, tracer):
        """The allocator events drive the block-occupancy analysis."""
        from repro.observe.analysis import analyze_events

        allocator = TwoEndsAllocator(1000, size_threshold=100, tracer=tracer)
        small = allocator.allocate(50)
        allocator.allocate(30)
        allocator.free(small)
        analytics = analyze_events(ring.events(), window=100)
        assert analytics.series["used_words"].final() == 30
        closed = [s for s in analytics.block_lifetimes if not s.open]
        still_live = [s for s in analytics.block_lifetimes if s.open]
        assert [s.size for s in closed] == [50]
        assert [s.size for s in still_live] == [30]


class TestAssociativeMemoryTracing:
    def test_hit_and_miss_both_emit(self, ring, tracer):
        tlb = AssociativeMemory(capacity=2, tracer=tracer)
        tlb.insert("page-3", 7)
        assert tlb.lookup("page-3") == 7
        assert tlb.lookup("page-9") is None
        hit, miss = ring.events()
        assert hit.kind == miss.kind == "map_lookup"
        assert hit.associative_hit and not miss.associative_hit
        assert (hit.unit, miss.unit) == ("page-3", "page-9")

    def test_timestamps_count_lookups(self, ring, tracer):
        tlb = AssociativeMemory(capacity=2, tracer=tracer)
        for key in ("a", "b", "c"):
            tlb.lookup(key)
        assert [e.time for e in ring.events()] == [1, 2, 3]

    def test_event_tally_matches_hit_counters(self, ring, tracer):
        tlb = AssociativeMemory(capacity=4, tracer=tracer)
        for page in range(4):
            tlb.insert(page, page)
        for page in range(8):
            tlb.lookup(page % 6)
        hits = sum(1 for e in ring.events() if e.associative_hit)
        assert hits == tlb.hits
        assert len(ring.events()) == tlb.hits + tlb.misses


class TestPrefetchTracing:
    def test_advice_per_suggestion(self, ring, tracer):
        table = PageTable(pages=8, page_size=64)
        prefetcher = SequentialPrefetcher(depth=2, tracer=tracer)
        assert list(prefetcher.suggest(3, table)) == [4, 5]
        events = ring.events()
        assert [e.kind for e in events] == ["advice", "advice"]
        assert all(e.directive == "prefetch" for e in events)
        assert [e.unit for e in events] == [4, 5]

    def test_resident_pages_not_suggested_or_traced(self, ring, tracer):
        table = PageTable(pages=8, page_size=64)
        table.entry(4).present = True
        prefetcher = SequentialPrefetcher(depth=2, tracer=tracer)
        assert list(prefetcher.suggest(3, table)) == [5]
        assert len(ring.events()) == 1


class TestCleaningTracing:
    def make_pager(self, tracer=None, frames=4):
        clock = Clock()
        table = PageTable(page_size=512, pages=32)
        backing = BackingStore(
            StorageLevel("drum", 10**7, access_time=1000, transfer_rate=1.0),
            clock=clock,
        )
        return DemandPager(table, FrameTable(frames), backing, LruPolicy(),
                           clock, tracer=tracer)

    def test_clean_event_per_page(self, ring, tracer):
        pager = self.make_pager()
        pager.access_page(0, write=True)
        pager.access_page(1, write=True)
        cleaner = PageCleaner(pager, tracer=tracer)
        assert cleaner.clean() == 2
        events = ring.events()
        assert [e.kind for e in events] == ["clean", "clean"]
        assert {e.unit for e in events} == {0, 1}
        assert all(e.words == 512 for e in events)
        assert all(e.time == pager.clock.now for e in events)

    def test_cleaner_inherits_pager_tracer(self, ring, tracer):
        pager = self.make_pager(tracer=tracer)
        pager.access_page(0, write=True)
        cleaner = PageCleaner(pager)        # no tracer argument
        cleaner.clean()
        assert [e.kind for e in ring.events()] == ["fault", "place", "clean"]

    def test_untraced_cleaner_emits_nothing(self):
        pager = self.make_pager()
        pager.access_page(0, write=True)
        cleaner = PageCleaner(pager)
        assert not cleaner.tracer.enabled
        assert cleaner.clean() == 1
