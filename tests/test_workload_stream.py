"""Streaming generation is bit-identical to in-memory generation.

The generators in :mod:`repro.workload.reference` are each split into a
per-reference iterator and a whole-trace constructor; the streaming
writer (:func:`repro.trace.stream_trace`) consumes the same iterators in
bounded chunks.  These tests pin the bit-identity across every workload
family, chunk size, and optional column — and the ``trace-gen`` CLI that
fronts the streaming path.
"""

from __future__ import annotations

import pytest

from repro.trace import generate_trace, read_trace, stream_trace
from repro.trace.cli import main as trace_gen_main
from repro.workload import (
    cyclic_trace,
    phased_trace,
    random_trace,
    sequential_trace,
    zipf_trace,
)

KINDS = {
    "sequential": (sequential_trace, dict(pages=37, sweeps=5)),
    "cyclic": (cyclic_trace, dict(pages=13, length=900)),
    "random": (random_trace, dict(pages=50, length=1200, seed=6)),
    "zipf": (zipf_trace, dict(pages=45, length=1100, skew=1.3, seed=8)),
    "phased": (
        phased_trace,
        dict(pages=64, length=1500, working_set=7, phase_length=90,
             locality=0.93, seed=4),
    ),
}


class TestStreamingBitIdentity:
    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_stream_matches_reference_generator(self, tmp_path, kind):
        reference_fn, params = KINDS[kind]
        expected = reference_fn(**params)
        path = stream_trace(tmp_path / f"{kind}.rtrc", kind, **params)
        trace = read_trace(path)
        try:
            assert trace == expected.as_list()
        finally:
            trace.close()

    @pytest.mark.parametrize("kind", sorted(KINDS))
    @pytest.mark.parametrize("chunk_refs", [1, 7, 256, 10_000])
    def test_chunk_size_is_invisible(self, tmp_path, kind, chunk_refs):
        _, params = KINDS[kind]
        path = stream_trace(
            tmp_path / f"{kind}-{chunk_refs}.rtrc", kind,
            chunk_refs=chunk_refs, **params,
        )
        trace = read_trace(path)
        try:
            assert trace == generate_trace(kind, **params)
        finally:
            trace.close()

    @pytest.mark.parametrize("kind", sorted(KINDS))
    def test_optional_columns_stream_identically(self, tmp_path, kind):
        _, params = KINDS[kind]
        path = stream_trace(
            tmp_path / f"{kind}-cols.rtrc", kind,
            chunk_refs=333, write_fraction=0.25, segment_pages=8, **params,
        )
        expected = generate_trace(
            kind, write_fraction=0.25, segment_pages=8, **params
        )
        trace = read_trace(path)
        try:
            assert trace == expected
            assert trace.write_flags() == expected.write_flags()
            assert trace.spans() == expected.spans()
        finally:
            trace.close()

    def test_write_column_does_not_perturb_pages(self, tmp_path):
        _, params = KINDS["phased"]
        plain = stream_trace(tmp_path / "plain.rtrc", "phased", **params)
        flagged = stream_trace(
            tmp_path / "flagged.rtrc", "phased",
            write_fraction=0.5, **params,
        )
        a, b = read_trace(plain), read_trace(flagged)
        try:
            assert list(a.pages) == list(b.pages)
        finally:
            a.close()
            b.close()

    def test_segment_split_is_reversible(self, tmp_path):
        _, params = KINDS["zipf"]
        path = stream_trace(
            tmp_path / "seg.rtrc", "zipf", segment_pages=8, **params
        )
        flat = zipf_trace(**params)
        trace = read_trace(path)
        try:
            rebuilt = [s * 8 + p for s, p in trace]
            assert rebuilt == flat.as_list()
        finally:
            trace.close()

    def test_unknown_kind_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="unknown trace kind"):
            stream_trace(tmp_path / "x.rtrc", "fractal", pages=4, length=4)
        with pytest.raises(ValueError, match="unknown trace kind"):
            generate_trace("fractal", pages=4, length=4)

    def test_bad_generator_params_leave_no_file(self, tmp_path):
        path = tmp_path / "bad.rtrc"
        with pytest.raises(ValueError):
            stream_trace(path, "phased", pages=10, length=100,
                         working_set=99)
        assert not path.exists()
        assert not list(tmp_path.iterdir())


class TestTraceGenCli:
    def test_generates_readable_file(self, tmp_path, capsys):
        out = tmp_path / "cli.rtrc"
        code = trace_gen_main([
            "phased", "--output", str(out), "--pages", "32",
            "--length", "2000", "--seed", "5", "--working-set", "6",
            "--phase-length", "80", "--locality", "0.9",
        ])
        assert code == 0
        printed = capsys.readouterr().out
        assert "2,000 references" in printed
        expected = phased_trace(32, 2000, working_set=6, phase_length=80,
                                locality=0.9, seed=5)
        trace = read_trace(out)
        try:
            assert trace == expected.as_list()
        finally:
            trace.close()

    def test_optional_columns_via_cli(self, tmp_path, capsys):
        out = tmp_path / "cols.rtrc"
        code = trace_gen_main([
            "zipf", "--output", str(out), "--pages", "24",
            "--length", "1000", "--write-fraction", "0.2",
            "--segment-pages", "6",
        ])
        assert code == 0
        trace = read_trace(out)
        try:
            assert trace.has_writes and trace.has_segments
        finally:
            trace.close()

    def test_bad_params_exit_2(self, tmp_path, capsys):
        code = trace_gen_main([
            "phased", "--output", str(tmp_path / "x.rtrc"),
            "--pages", "4", "--length", "100", "--working-set", "9",
        ])
        assert code == 2
        assert "error:" in capsys.readouterr().err
