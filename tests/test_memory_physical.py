"""Tests for the word-addressed physical memory."""

import pytest

from repro.clock import Clock
from repro.errors import BoundViolation
from repro.memory import PhysicalMemory


class TestConstruction:
    def test_size(self):
        assert PhysicalMemory(128).size == 128

    def test_len(self):
        assert len(PhysicalMemory(128)) == 128

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            PhysicalMemory(0)
        with pytest.raises(ValueError):
            PhysicalMemory(-5)

    def test_rejects_negative_access_time(self):
        with pytest.raises(ValueError):
            PhysicalMemory(10, access_time=-1)

    def test_initially_empty(self):
        memory = PhysicalMemory(4)
        assert memory.snapshot() == [None] * 4


class TestReadWrite:
    def test_roundtrip(self):
        memory = PhysicalMemory(16)
        memory.write(3, "value")
        assert memory.read(3) == "value"

    def test_out_of_bounds_read(self):
        memory = PhysicalMemory(16)
        with pytest.raises(BoundViolation):
            memory.read(16)

    def test_out_of_bounds_write(self):
        memory = PhysicalMemory(16)
        with pytest.raises(BoundViolation):
            memory.write(-1, 0)

    def test_access_counters(self):
        memory = PhysicalMemory(16)
        memory.write(0, 1)
        memory.write(1, 2)
        memory.read(0)
        assert memory.writes == 2
        assert memory.reads == 1

    def test_clock_charged_per_access(self):
        clock = Clock()
        memory = PhysicalMemory(16, clock=clock, access_time=2)
        memory.write(0, 1)
        memory.read(0)
        assert clock.now == 4

    def test_untimed_memory_needs_no_clock(self):
        memory = PhysicalMemory(16)
        memory.write(0, 1)
        assert memory.read(0) == 1


class TestBlockOperations:
    def test_block_roundtrip(self):
        memory = PhysicalMemory(16)
        memory.write_block(4, [10, 20, 30])
        assert memory.read_block(4, 3) == [10, 20, 30]

    def test_empty_block_ops(self):
        memory = PhysicalMemory(16)
        memory.write_block(0, [])
        assert memory.read_block(0, 0) == []

    def test_block_bounds_checked(self):
        memory = PhysicalMemory(16)
        with pytest.raises(BoundViolation):
            memory.write_block(14, [1, 2, 3])
        with pytest.raises(BoundViolation):
            memory.read_block(14, 3)

    def test_negative_count_rejected(self):
        memory = PhysicalMemory(16)
        with pytest.raises(ValueError):
            memory.read_block(0, -1)

    def test_block_access_charges_per_word(self):
        clock = Clock()
        memory = PhysicalMemory(16, clock=clock, access_time=1)
        memory.write_block(0, [1, 2, 3])
        assert clock.now == 3


class TestMove:
    def test_simple_move(self):
        memory = PhysicalMemory(16)
        memory.write_block(0, [1, 2, 3])
        memory.move(0, 8, 3)
        assert memory.read_block(8, 3) == [1, 2, 3]

    def test_overlapping_move_down(self):
        memory = PhysicalMemory(16)
        memory.write_block(4, [1, 2, 3, 4])
        memory.move(4, 2, 4)
        assert memory.read_block(2, 4) == [1, 2, 3, 4]

    def test_overlapping_move_up(self):
        memory = PhysicalMemory(16)
        memory.write_block(2, [1, 2, 3, 4])
        memory.move(2, 4, 4)
        assert memory.read_block(4, 4) == [1, 2, 3, 4]

    def test_move_counts_words(self):
        memory = PhysicalMemory(16)
        memory.move(0, 8, 5)
        assert memory.words_moved == 5

    def test_move_charges_move_time(self):
        clock = Clock()
        memory = PhysicalMemory(16, clock=clock, access_time=1, move_time=3)
        memory.move(0, 8, 2)
        assert clock.now == 6

    def test_move_zero_words(self):
        memory = PhysicalMemory(16)
        memory.move(0, 8, 0)
        assert memory.words_moved == 0

    def test_move_bounds_checked(self):
        memory = PhysicalMemory(16)
        with pytest.raises(BoundViolation):
            memory.move(0, 14, 4)


class TestFill:
    def test_fill_sets_values(self):
        memory = PhysicalMemory(8)
        memory.fill(2, 3, "x")
        assert memory.snapshot()[2:5] == ["x", "x", "x"]

    def test_fill_has_no_timing_cost(self):
        clock = Clock()
        memory = PhysicalMemory(8, clock=clock)
        memory.fill(0, 8, 0)
        assert clock.now == 0

    def test_fill_bounds_checked(self):
        memory = PhysicalMemory(8)
        with pytest.raises(BoundViolation):
            memory.fill(6, 3)
