"""Instrumented subsystems emit the right events — and nothing when off."""

from __future__ import annotations

from repro.addressing import PageTable
from repro.addressing.associative import AssociativeMemory
from repro.advice import AdvisedPager, wont_need
from repro.alloc import FreeListAllocator, compact
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.observe import NULL_TRACER, RingBufferSink, Tracer
from repro.paging import DemandPager, FrameTable, LruPolicy


def make_tracer(capacity=256):
    ring = RingBufferSink(capacity)
    return Tracer([ring]), ring


def make_pager(tracer, frames=2, pages=16, tlb=None, trace_mapper=False):
    clock = Clock()
    table = PageTable(page_size=512, pages=pages, associative_memory=tlb,
                      tracer=tracer if trace_mapper else None)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=100), clock=clock,
    )
    return DemandPager(
        table, FrameTable(frames), backing, LruPolicy(), clock, tracer=tracer,
    )


def kinds(ring):
    return [event.kind for event in ring.events()]


class TestPagerEmission:
    def test_fault_place_evict_sequence(self):
        tracer, ring = make_tracer()
        pager = make_pager(tracer, frames=2)
        pager.access_page(0)
        pager.access_page(1)
        pager.access_page(2)            # displaces page 0
        assert kinds(ring) == [
            "fault", "place", "fault", "place", "fault", "evict", "place",
        ]
        evict = ring.events()[5]
        assert evict.unit == 0
        assert evict.writeback is False

    def test_dirty_eviction_flags_writeback(self):
        tracer, ring = make_tracer()
        pager = make_pager(tracer, frames=1)
        pager.access_page(0, write=True)
        pager.access_page(1)
        evicts = [e for e in ring.events() if e.kind == "evict"]
        assert evicts[0].writeback is True

    def test_event_times_follow_the_clock(self):
        tracer, ring = make_tracer()
        pager = make_pager(tracer)
        pager.access_page(0)
        times = [event.time for event in ring.events()]
        assert times == sorted(times)
        assert times[-1] <= pager.clock.now


class TestMapperEmission:
    def test_walks_and_associative_hits(self):
        tracer, ring = make_tracer()
        pager = make_pager(tracer, tlb=AssociativeMemory(4),
                           trace_mapper=True)
        pager.access_page(3)
        pager.access_page(3)
        lookups = [e for e in ring.events() if e.kind == "map_lookup"]
        assert len(lookups) == 2
        assert lookups[0].associative_hit is False
        assert lookups[0].mapping_cycles > 0
        assert lookups[1].associative_hit is True
        assert lookups[1].mapping_cycles == 0


class TestAllocatorEmission:
    def test_place_free_compact(self):
        tracer, ring = make_tracer()
        allocator = FreeListAllocator(
            capacity=1024, policy="first_fit", tracer=tracer,
        )
        keep = allocator.allocate(100)
        victim = allocator.allocate(100)
        allocator.allocate(100)
        allocator.free(victim)
        compact(allocator)
        assert kinds(ring) == ["place", "place", "place", "free", "compact"]
        compaction = ring.events()[-1]
        assert compaction.moves >= 1
        assert compaction.holes_after == 1
        places = ring.events()[:3]
        # ``unit`` is a monotonic block id (addresses are reused);
        # ``where`` carries the address.
        assert [p.unit for p in places] == [0, 1, 2]
        assert places[0].where == keep.address
        assert places[0].size == 100
        assert places[0].policy == "first_fit"


class TestAdviceEmission:
    def test_directives_reach_the_trace(self):
        tracer, ring = make_tracer()
        advised = AdvisedPager.wrap(make_pager(tracer, frames=4))
        advised.pager.access_page(0)
        advised.advise(wont_need(0))
        advice = [e for e in ring.events() if e.kind == "advice"]
        assert len(advice) == 1
        assert advice[0].directive == "wont_need"
        assert advice[0].unit == 0


class TestDisabledTracing:
    def test_null_tracer_emits_nothing(self):
        pager = make_pager(None, frames=2)
        assert pager.tracer is NULL_TRACER
        pager.access_page(0)
        pager.access_page(1)
        pager.access_page(2)
        assert pager.tracer.emitted == 0
        assert pager.stats.faults == 3      # behaviour itself is unchanged

    def test_traced_and_untraced_runs_agree(self):
        tracer, _ = make_tracer()
        traced, silent = make_pager(tracer), make_pager(None)
        for page in [0, 1, 2, 0, 3, 1, 2]:
            traced.access_page(page)
            silent.access_page(page)
        assert traced.stats.faults == silent.stats.faults
        assert traced.clock.now == silent.clock.now
