"""Tests for the two-level (Figure 4) mapping scheme."""

import pytest

from repro.addressing import AssociativeMemory, TwoLevelMapper
from repro.errors import BoundViolation, MissingSegment, PageFault


def make_mapper(page_size=1024, **kwargs):
    return TwoLevelMapper(page_size=page_size, **kwargs)


class TestDeclare:
    def test_page_table_sized_by_extent(self):
        mapper = make_mapper(page_size=1024)
        mapper.declare("s", 3000)
        assert mapper.page_table("s").pages == 3   # ceil(3000/1024)

    def test_extent_recorded(self):
        mapper = make_mapper()
        mapper.declare("s", 3000)
        assert mapper.extent("s") == 3000

    def test_max_extent_enforced(self):
        """MULTICS: segments have a maximum extent of 256K words."""
        mapper = make_mapper(max_segment_extent=262_144)
        mapper.declare("ok", 262_144)
        with pytest.raises(ValueError):
            mapper.declare("big", 262_145)

    def test_double_declare_rejected(self):
        mapper = make_mapper()
        mapper.declare("s", 100)
        with pytest.raises(ValueError):
            mapper.declare("s", 100)

    def test_rejects_bad_page_size(self):
        with pytest.raises(ValueError):
            TwoLevelMapper(page_size=1000)


class TestTranslate:
    def test_two_level_walk(self):
        mapper = make_mapper(page_size=1024)
        mapper.declare("s", 4096)
        mapper.map("s", page=2, frame=7)
        result = mapper.translate_pair("s", 2 * 1024 + 5)
        assert result.address == 7 * 1024 + 5
        assert result.mapping_cycles == 2   # segment table + page table

    def test_page_fault_on_nonresident_page(self):
        mapper = make_mapper()
        mapper.declare("s", 4096)
        with pytest.raises(PageFault) as exc_info:
            mapper.translate_pair("s", 0)
        assert exc_info.value.page == 0
        assert exc_info.value.process == "s"

    def test_missing_segment(self):
        with pytest.raises(MissingSegment):
            make_mapper().translate_pair("ghost", 0)

    def test_extent_checked_not_page_count(self):
        """Names past the declared extent trap even inside the last page."""
        mapper = make_mapper(page_size=1024)
        mapper.declare("s", 1500)
        mapper.map("s", page=1, frame=0)
        mapper.translate_pair("s", 1499)
        with pytest.raises(BoundViolation):
            mapper.translate_pair("s", 1500)

    def test_segment_larger_than_working_storage_is_fine(self):
        """Artificial contiguity: each segment can exceed physical core."""
        mapper = make_mapper(page_size=1024)
        mapper.declare("huge", 1 << 21)    # 2M words
        mapper.map("huge", page=2047, frame=3)
        result = mapper.translate_pair("huge", (1 << 21) - 1)
        assert result.address == 3 * 1024 + 1023

    def test_counters(self):
        mapper = make_mapper()
        mapper.declare("s", 2048)
        with pytest.raises(PageFault):
            mapper.translate_pair("s", 0)
        mapper.map("s", 0, 0)
        mapper.translate_pair("s", 0)
        assert mapper.page_faults == 1
        assert mapper.translations == 2


class TestAssociativeMemory:
    def test_hit_costs_nothing(self):
        tlb = AssociativeMemory(8)
        mapper = make_mapper(associative_memory=tlb)
        mapper.declare("s", 2048)
        mapper.map("s", 0, 4)
        walk = mapper.translate_pair("s", 0)
        hit = mapper.translate_pair("s", 1)
        assert walk.mapping_cycles == 2
        assert hit.mapping_cycles == 0 and hit.associative_hit
        assert hit.address == 4 * 1024 + 1

    def test_tlb_keyed_by_segment_and_page(self):
        tlb = AssociativeMemory(8)
        mapper = make_mapper(associative_memory=tlb)
        mapper.declare("a", 2048)
        mapper.declare("b", 2048)
        mapper.map("a", 0, 1)
        mapper.map("b", 0, 2)
        mapper.translate_pair("a", 0)
        result = mapper.translate_pair("b", 0)
        assert not result.associative_hit     # distinct key (b, 0)
        assert result.address == 2 * 1024

    def test_unmap_invalidates(self):
        tlb = AssociativeMemory(8)
        mapper = make_mapper(associative_memory=tlb)
        mapper.declare("s", 2048)
        mapper.map("s", 0, 4)
        mapper.translate_pair("s", 0)
        mapper.unmap("s", 0)
        with pytest.raises(PageFault):
            mapper.translate_pair("s", 0)

    def test_destroy_invalidates_all_pages(self):
        tlb = AssociativeMemory(8)
        mapper = make_mapper(associative_memory=tlb)
        mapper.declare("s", 2048)
        mapper.map("s", 0, 4)
        mapper.translate_pair("s", 0)
        mapper.destroy("s")
        assert ("s", 0) not in tlb

    def test_hit_updates_sensors(self):
        tlb = AssociativeMemory(8)
        mapper = make_mapper(associative_memory=tlb)
        mapper.declare("s", 2048)
        mapper.map("s", 0, 4)
        mapper.translate_pair("s", 0)
        mapper.page_table("s").entry(0).clear_sensors()
        mapper.translate_pair("s", 0, write=True)
        assert mapper.page_table("s").entry(0).modified


class TestResidency:
    def test_resident_pairs(self):
        mapper = make_mapper()
        mapper.declare("a", 4096)
        mapper.declare("b", 4096)
        mapper.map("a", 1, 0)
        mapper.map("b", 0, 1)
        assert set(mapper.resident()) == {("a", 1), ("b", 0)}

    def test_unmap_returns_snapshot(self):
        mapper = make_mapper()
        mapper.declare("s", 2048)
        mapper.map("s", 0, 9)
        mapper.translate_pair("s", 0, write=True)
        snapshot = mapper.unmap("s", 0)
        assert snapshot.frame == 9 and snapshot.modified

    def test_destroy_missing(self):
        with pytest.raises(MissingSegment):
            make_mapper().destroy("ghost")

    def test_segments_listing(self):
        mapper = make_mapper()
        mapper.declare("a", 10)
        assert mapper.segments() == ["a"]
        assert "a" in mapper
