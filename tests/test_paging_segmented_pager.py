"""Tests for the segmented pager (two-level mapped demand paging)."""

import pytest

from repro.addressing import AssociativeMemory, TwoLevelMapper
from repro.clock import Clock
from repro.errors import BoundViolation, MissingSegment
from repro.memory import BackingStore, StorageLevel
from repro.paging import FrameTable, LruPolicy
from repro.paging.segmented_pager import SegmentedPager


def make_pager(frames=4, page_size=256, latency=500, tlb=None):
    clock = Clock()
    mapper = TwoLevelMapper(page_size=page_size, associative_memory=tlb)
    pager = SegmentedPager(
        mapper,
        FrameTable(frames),
        BackingStore(
            StorageLevel("drum", 10**7, access_time=latency,
                         transfer_rate=1.0),
            clock=clock,
        ),
        LruPolicy(),
        clock,
    )
    return pager, clock


class TestAccess:
    def test_fault_then_hit(self):
        pager, _ = make_pager()
        pager.declare("s", 1_000)
        pager.access("s", 0)
        pager.access("s", 100)
        assert pager.stats.faults == 1
        assert pager.stats.accesses == 2

    def test_address_arithmetic(self):
        pager, _ = make_pager(page_size=256)
        pager.declare("s", 1_000)
        address = pager.access("s", 300)   # page 1, offset 44
        frame = pager.frames.frame_of(("s", 1))
        assert address == frame * 256 + 44

    def test_pages_of_different_segments_coexist(self):
        pager, _ = make_pager(frames=4)
        pager.declare("a", 500)
        pager.declare("b", 500)
        pager.access("a", 0)
        pager.access("b", 0)
        assert ("a", 0) in pager.frames and ("b", 0) in pager.frames

    def test_bound_violation_propagates(self):
        pager, _ = make_pager()
        pager.declare("s", 100)
        with pytest.raises(BoundViolation):
            pager.access("s", 100)

    def test_missing_segment(self):
        pager, _ = make_pager()
        with pytest.raises(MissingSegment):
            pager.access("ghost", 0)

    def test_replacement_across_segments(self):
        pager, _ = make_pager(frames=2)
        pager.declare("a", 300)
        pager.declare("b", 300)
        pager.access("a", 0)      # (a,0)
        pager.access("a", 280)    # (a,1) — pool full
        pager.access("b", 0)      # evicts LRU = (a,0)
        assert ("a", 0) not in pager.frames
        assert ("b", 0) in pager.frames
        assert pager.stats.evictions == 1

    def test_fetch_blocks_for_transfer(self):
        pager, clock = make_pager(latency=500, page_size=256)
        pager.declare("s", 256)
        pager.access("s", 0)
        # 1 reference + 500 latency + 256 words
        assert clock.now == 757


class TestWriteback:
    def test_dirty_page_written_back(self):
        pager, _ = make_pager(frames=1)
        pager.declare("s", 600)
        pager.access("s", 0, write=True)
        pager.access("s", 300)
        assert pager.stats.writebacks == 1
        assert ("page", "s", 0) in pager.backing

    def test_clean_page_skips_writeback(self):
        pager, _ = make_pager(frames=1)
        pager.declare("s", 600)
        pager.access("s", 0)
        pager.access("s", 300)
        assert pager.stats.writebacks == 0


class TestDestroy:
    def test_destroy_vacates_frames_and_backing(self):
        pager, _ = make_pager()
        pager.declare("s", 600)
        pager.access("s", 0, write=True)
        pager.access("s", 300)
        pager.access("s", 0)   # keep page 0 in
        pager.destroy("s")
        assert pager.frames.resident_count == 0
        assert ("page", "s", 0) not in pager.backing
        with pytest.raises(MissingSegment):
            pager.access("s", 0)

    def test_destroy_frees_room_for_others(self):
        pager, _ = make_pager(frames=2)
        pager.declare("a", 600)
        pager.access("a", 0)
        pager.access("a", 300)
        pager.destroy("a")
        pager.declare("b", 600)
        pager.access("b", 0)
        pager.access("b", 300)
        assert pager.stats.evictions == 0


class TestResidency:
    def test_residency_cycles(self):
        pager, clock = make_pager()
        pager.declare("s", 256)
        pager.access("s", 0)
        clock.advance(1_000)
        assert pager.residency_cycles() == 1_000

    def test_with_tlb(self):
        tlb = AssociativeMemory(4)
        pager, _ = make_pager(tlb=tlb)
        pager.declare("s", 600)
        pager.access("s", 0)
        pager.access("s", 1)
        assert tlb.hits >= 1

    def test_reference_time_validation(self):
        clock = Clock()
        mapper = TwoLevelMapper(page_size=256)
        with pytest.raises(ValueError):
            SegmentedPager(
                mapper, FrameTable(2),
                BackingStore(StorageLevel("d", 10**6, access_time=1),
                             clock=clock),
                LruPolicy(), clock, reference_time=0,
            )
