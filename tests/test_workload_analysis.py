"""Tests for reference-trace analysis."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.paging import LruPolicy, simulate_trace
from repro.workload import (
    cyclic_trace,
    locality_score,
    lru_fault_curve,
    mean_working_set,
    phase_transitions,
    phased_trace,
    random_trace,
    reuse_distances,
    sequential_trace,
    unique_pages,
    working_set_sizes,
)

traces = st.lists(st.integers(min_value=0, max_value=12), min_size=1,
                  max_size=200)


class TestWorkingSet:
    def test_sizes_simple(self):
        assert working_set_sizes([1, 1, 2, 1], window=2) == [1, 1, 2, 2]

    def test_window_larger_than_trace(self):
        assert working_set_sizes([1, 2, 3], window=100) == [1, 2, 3]

    def test_window_one_is_always_one(self):
        assert working_set_sizes([5, 6, 5, 7], window=1) == [1, 1, 1, 1]

    def test_mean(self):
        assert mean_working_set([1, 1, 1, 1], window=2) == 1.0

    def test_empty_trace_mean(self):
        assert mean_working_set([], window=5) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            working_set_sizes([1], window=0)

    @given(trace=traces, window=st.integers(min_value=1, max_value=50))
    @settings(max_examples=50, deadline=None)
    def test_incremental_matches_naive(self, trace, window):
        naive = [
            len(set(trace[max(0, i - window + 1): i + 1]))
            for i in range(len(trace))
        ]
        assert working_set_sizes(trace, window) == naive


class TestReuseDistances:
    def test_first_touches_are_none(self):
        assert reuse_distances([1, 2, 3]) == [None, None, None]

    def test_immediate_reuse_is_zero(self):
        assert reuse_distances([1, 1]) == [None, 0]

    def test_distance_counts_distinct_pages(self):
        # 1, 2, 2, 1: the second 1 saw {2} in between -> distance 1.
        assert reuse_distances([1, 2, 2, 1]) == [None, None, 0, 1]


class TestLruFaultCurve:
    def test_matches_simulation(self):
        trace = phased_trace(pages=10, length=300, working_set=4, seed=13)
        curve = lru_fault_curve(trace, max_frames=6)
        for frames in range(1, 7):
            simulated = simulate_trace(trace, frames, LruPolicy()).faults
            assert curve[frames - 1] == simulated, frames

    def test_monotone_nonincreasing(self):
        trace = random_trace(8, 200, seed=5)
        curve = lru_fault_curve(trace, max_frames=8)
        assert all(a >= b for a, b in zip(curve, curve[1:]))

    def test_enough_frames_leaves_cold_faults(self):
        trace = cyclic_trace(pages=4, length=100)
        assert lru_fault_curve(trace, max_frames=5)[-1] == 4

    def test_validation(self):
        with pytest.raises(ValueError):
            lru_fault_curve([1], max_frames=0)

    @given(trace=traces, frames=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_stack_distance_equivalence_property(self, trace, frames):
        curve = lru_fault_curve(trace, max_frames=frames)
        simulated = simulate_trace(trace, frames, LruPolicy()).faults
        assert curve[frames - 1] == simulated


class TestLocality:
    def test_phased_trace_scores_high(self):
        trace = phased_trace(pages=64, length=1_000, working_set=4,
                             locality=0.98, seed=21)
        assert locality_score(trace) > 0.8

    def test_random_trace_scores_low(self):
        trace = random_trace(30, 2_000, seed=21)
        assert locality_score(trace) < 0.5

    def test_single_page_trace(self):
        assert locality_score([0, 0, 0]) == 1.0

    def test_unique_pages(self):
        assert unique_pages([3, 1, 3, 2]) == 3


class TestPhaseTransitions:
    def test_detects_disjoint_phases(self):
        trace = [0, 1] * 50 + [10, 11] * 50
        transitions = phase_transitions(trace, window=20, threshold=0.5)
        assert transitions == [100]

    def test_stable_trace_has_none(self):
        trace = [0, 1, 2] * 100
        assert phase_transitions(trace, window=30) == []

    def test_sequential_scan_transitions_constantly(self):
        trace = sequential_trace(pages=200)
        assert len(phase_transitions(trace, window=20)) > 5

    def test_validation(self):
        with pytest.raises(ValueError):
            phase_transitions([1], window=0)
        with pytest.raises(ValueError):
            phase_transitions([1], window=10, threshold=2.0)
