"""Unit behavior of the streaming sketches: LogHistogram and P2Quantile."""

import math

import pytest

from repro.observe.telemetry.sketch import (
    DEFAULT_SUBBUCKETS,
    LogHistogram,
    P2Quantile,
)


class TestLogHistogramRecording:
    def test_count_sum_min_max_mean(self):
        sketch = LogHistogram()
        for value in (1, 5, 12, 100):
            sketch.observe(value)
        assert sketch.count == 4
        assert sketch.total == 118
        assert sketch.minimum == 1
        assert sketch.maximum == 100
        assert sketch.mean == 118 / 4

    def test_zeros_counted_apart(self):
        sketch = LogHistogram()
        sketch.observe(0)
        sketch.observe(0)
        sketch.observe(3)
        assert sketch.count == 3
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(1.0) == 3

    def test_negative_rejected(self):
        with pytest.raises(ValueError, match="negative"):
            LogHistogram().observe(-1)

    def test_bad_subbuckets_rejected(self):
        with pytest.raises(ValueError):
            LogHistogram(subbuckets=0)

    def test_observe_many(self):
        sketch = LogHistogram()
        sketch.observe_many(range(1, 11))
        assert sketch.count == 10
        assert sketch.total == 55

    def test_integer_sum_stays_exact(self):
        """Integer observations keep an int sum — the bit-exact-merge
        invariant the sweep determinism rests on."""
        sketch = LogHistogram()
        sketch.observe_many([10**15, 3, 7])
        assert isinstance(sketch.total, int)
        assert sketch.total == 10**15 + 10

    def test_len_is_count(self):
        sketch = LogHistogram()
        sketch.observe_many([1, 2, 3])
        assert len(sketch) == 3


class TestLogHistogramBuckets:
    def test_bucket_bounds_contain_observed_value(self):
        sketch = LogHistogram()
        for value in (0.001, 0.7, 1.0, 1.5, 17, 1000, 2**40):
            index = sketch._index(value)
            low, high = sketch.bucket_bounds(index)
            assert low <= value < high or math.isclose(value, high)

    def test_bucket_relative_width_bounds_error(self):
        sketch = LogHistogram()
        for value in (1.0, 3.0, 250.0):
            low, high = sketch.bucket_bounds(sketch._index(value))
            assert (high - low) / low <= 1.0 / sketch.subbuckets + 1e-12

    def test_bucket_counts_ascend(self):
        sketch = LogHistogram()
        sketch.observe_many([512, 1, 64, 8])
        indices = [index for index, _ in sketch.bucket_counts()]
        assert indices == sorted(indices)


class TestLogHistogramQuantiles:
    def test_empty_quantile_raises(self):
        with pytest.raises(ValueError, match="empty"):
            LogHistogram().quantile(0.5)

    def test_empty_mean_raises(self):
        with pytest.raises(ValueError, match="empty"):
            _ = LogHistogram().mean

    def test_out_of_range_quantile_raises(self):
        sketch = LogHistogram()
        sketch.observe(1)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_quantile_clamped_to_observed_range(self):
        sketch = LogHistogram()
        sketch.observe_many([7, 7, 7])
        assert sketch.quantile(0.0) == 7
        assert sketch.quantile(1.0) == 7

    def test_percentile_convention(self):
        sketch = LogHistogram()
        sketch.observe_many(range(1, 101))
        assert sketch.percentile(50) == sketch.quantile(0.5)
        with pytest.raises(ValueError):
            sketch.percentile(101)

    def test_relative_error_bound_matches_subbuckets(self):
        assert LogHistogram().relative_error_bound == 1 / DEFAULT_SUBBUCKETS
        assert LogHistogram(subbuckets=64).relative_error_bound == 1 / 64


class TestLogHistogramMerge:
    def test_merge_is_exact(self):
        """Split a stream two ways; the merge equals the single stream,
        bucket for bucket and bit for bit."""
        whole = LogHistogram()
        left, right = LogHistogram(), LogHistogram()
        for index, value in enumerate(v * 3 + 1 for v in range(200)):
            whole.observe(value)
            (left if index % 2 else right).observe(value)
        left.merge(right)
        assert left.to_dict() == whole.to_dict()

    def test_merge_empty_sides(self):
        sketch = LogHistogram()
        sketch.observe_many([1, 2])
        empty = LogHistogram()
        sketch.merge(LogHistogram())
        assert sketch.count == 2
        empty.merge(sketch)
        assert empty.to_dict() == sketch.to_dict()

    def test_subbucket_mismatch_rejected(self):
        with pytest.raises(ValueError, match="sub-buckets"):
            LogHistogram(subbuckets=8).merge(LogHistogram(subbuckets=16))


class TestLogHistogramZeroBoundaries:
    """All-zero and zero-heavy streams: the traffic tier's queue-wait
    sketch is exactly this shape at low offered load (every session
    admitted on arrival), so p50/p99 of zeros must read 0.0, not NaN
    or a bucket midpoint."""

    def test_all_zero_stream_quantiles_are_zero(self):
        sketch = LogHistogram()
        sketch.observe_many([0] * 25)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == 0.0
        assert sketch.mean == 0.0
        assert sketch.minimum == 0 and sketch.maximum == 0

    def test_zero_heavy_tail_crosses_at_the_right_rank(self):
        sketch = LogHistogram()
        sketch.observe_many([0] * 98 + [40, 50])
        assert sketch.quantile(0.5) == 0.0
        assert sketch.quantile(0.98) == 0.0      # rank 98: the last zero
        assert sketch.quantile(0.99) > 0.0       # rank 99: the 40
        assert sketch.quantile(1.0) == 50

    def test_all_zero_merge_stays_zero(self):
        left, right = LogHistogram(), LogHistogram()
        left.observe_many([0, 0])
        right.observe_many([0, 0, 0])
        left.merge(right)
        assert left.count == 5
        assert left.quantile(0.99) == 0.0
        assert left.total == 0

    def test_single_observation_is_every_quantile(self):
        sketch = LogHistogram()
        sketch.observe(17)
        for q in (0.0, 0.01, 0.5, 0.99, 1.0):
            assert sketch.quantile(q) == 17


class TestLogHistogramSerialization:
    def test_round_trip(self):
        sketch = LogHistogram()
        sketch.observe_many([0, 1, 2, 900, 2**20])
        clone = LogHistogram.from_dict(sketch.to_dict())
        assert clone.to_dict() == sketch.to_dict()
        assert clone.quantile(0.5) == sketch.quantile(0.5)

    def test_round_trip_survives_json(self):
        import json

        sketch = LogHistogram()
        sketch.observe_many([3, 14, 15])
        record = json.loads(json.dumps(sketch.to_dict()))
        assert LogHistogram.from_dict(record).to_dict() == sketch.to_dict()

    def test_malformed_record_rejected(self):
        with pytest.raises(ValueError, match="malformed"):
            LogHistogram.from_dict({"counts": {}})
        with pytest.raises(ValueError, match="malformed"):
            LogHistogram.from_dict({"subbuckets": 16, "counts": "nope",
                                    "zeros": 0, "count": 0, "sum": 0,
                                    "min": None, "max": None})


class TestP2Quantile:
    def test_small_streams_are_exact(self):
        sketch = P2Quantile(0.5)
        for value in (9, 1, 5):
            sketch.observe(value)
        assert sketch.value() == 5

    def test_empty_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            P2Quantile(0.5).value()

    def test_bad_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)

    def test_median_of_uniform_stream(self):
        sketch = P2Quantile(0.5)
        for value in range(1, 1001):
            sketch.observe(value)
        assert 450 <= sketch.value() <= 550

    def test_p99_tracks_the_tail(self):
        sketch = P2Quantile(0.99)
        for value in range(1, 1001):
            sketch.observe(value)
        assert 950 <= sketch.value() <= 1000

    def test_merge_mismatched_quantile_rejected(self):
        with pytest.raises(ValueError, match="cannot merge"):
            P2Quantile(0.5).merge(P2Quantile(0.9))

    def test_merge_with_empty_is_identity(self):
        sketch = P2Quantile(0.5)
        for value in range(50):
            sketch.observe(value)
        before = sketch.value()
        sketch.merge(P2Quantile(0.5))
        assert sketch.value() == before

    def test_merge_into_empty_copies(self):
        full = P2Quantile(0.5)
        for value in range(50):
            full.observe(value)
        empty = P2Quantile(0.5)
        empty.merge(full)
        assert empty.count == 50
        assert empty.value() == full.value()

    def test_merge_of_small_sides_is_exact(self):
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for value in (1, 9):
            left.observe(value)
        for value in (5,):
            right.observe(value)
        left.merge(right)
        assert left.value() == 5

    def test_exact_nearest_rank_through_five_samples(self):
        """The raw window is count <= 5 for *every* q: at five samples
        the heights are still sorted raw values, so an extreme quantile
        must read its nearest rank, not the middle height."""
        samples = [50, 10, 40, 20, 30]
        for q in (0.01, 0.25, 0.5, 0.75, 0.99):
            sketch = P2Quantile(q)
            for n, value in enumerate(samples, start=1):
                sketch.observe(value)
                window = sorted(samples[:n])
                rank = max(1, math.ceil(q * n))
                assert sketch.value() == window[rank - 1], (q, n)

    def test_five_samples_at_extreme_quantiles(self):
        low, high = P2Quantile(0.01), P2Quantile(0.99)
        for value in (10, 20, 30, 40, 50):
            low.observe(value)
            high.observe(value)
        assert low.value() == 10       # not heights[2] == 30
        assert high.value() == 50

    def test_sixth_sample_hands_over_to_markers(self):
        """From the sixth sample the estimate is heights[2] — within
        the observed range immediately, converging as the stream grows."""
        sketch = P2Quantile(0.99)
        for value in (10, 20, 30, 40, 50, 60):
            sketch.observe(value)
        assert 10 <= sketch.value() <= 60
        for value in range(70, 1010, 10):
            sketch.observe(value)
        assert sketch.value() >= 900

    def test_merge_union_crossing_five_keeps_marker_invariants(self):
        """3 + 4 raw samples cross the marker threshold.  The merged
        estimator must hold exactly five heights (six would corrupt the
        next observe's cell search) and keep estimating sensibly."""
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for value in (1, 5, 9):
            left.observe(value)
        for value in (2, 4, 6, 8):
            right.observe(value)
        left.merge(right)
        assert left.count == 7
        assert len(left._heights) == 5
        assert left._heights == sorted(left._heights)
        assert 2 <= left.value() <= 8
        for value in range(10, 200):
            left.observe(value)           # the corruption would bite here
        assert left._heights == sorted(left._heights)
        assert 50 <= left.value() <= 150

    def test_merge_order_is_symmetric_for_small_sides(self):
        def build(samples):
            sketch = P2Quantile(0.5)
            for value in samples:
                sketch.observe(value)
            return sketch

        ab = build((1, 5, 9))
        ab.merge(build((2, 4, 6, 8)))
        ba = build((2, 4, 6, 8))
        ba.merge(build((1, 5, 9)))
        assert ab.value() == ba.value()
        assert ab._heights == ba._heights

    def test_merged_estimate_is_reasonable(self):
        left, right = P2Quantile(0.5), P2Quantile(0.5)
        for value in range(1, 501):
            left.observe(value)
        for value in range(500, 1001):
            right.observe(value)
        left.merge(right)
        assert 350 <= left.value() <= 650
