"""Derived series must agree with the independent aggregate accounting.

The analyzer derives its series from the event stream alone; the
``Counters`` registry is incremented inline by the simulation, and
``SpaceTimeAccount`` integrates occupancy piecewise.  These are three
independent accounting mechanisms over one run, and this suite pins
them to each other across 30 seeds — the analysis tier's half of the
observability consistency contract (the fastpath half lives in
``test_observe_differential.py``).
"""

from __future__ import annotations

import pytest

from repro.observe import CallbackSink, Counters, RingBufferSink, Tracer
from repro.observe.analysis import RUN, TraceAnalyzer, analyze_events
from repro.paging import make_policy, simulate_trace
from repro.sim.spacetime import SpaceTimeAccount
from repro.workload import phased_trace, random_trace, zipf_trace

SEEDS = range(30)


def make_trace(seed):
    generator = (phased_trace, random_trace, zipf_trace)[seed % 3]
    return generator(pages=48, length=400, seed=seed)


def traced_run(seed):
    """One traced simulation: its events, counters, and result."""
    trace = make_trace(seed)
    ring = RingBufferSink(capacity=8192)
    counters = Counters()
    result = simulate_trace(
        trace, frames=4 + seed % 13, policy=make_policy("lru"),
        tracer=Tracer([ring]), counters=counters,
    )
    return ring.events(), counters, result


def test_fault_series_sums_to_counter_totals_across_30_seeds():
    for seed in SEEDS:
        events, counters, result = traced_run(seed)
        analytics = analyze_events(events, window=50)
        assert sum(analytics.series["faults"].values) == (
            counters.value("replay.faults")
        ), f"fault series diverged from counters at seed={seed}"
        assert analytics.kind_counts.get("evict", 0) == (
            counters.value("replay.evictions")
        )
        assert analytics.kind_counts["fault"] == result.faults


def test_spacetime_endpoint_matches_independent_integration():
    """The series endpoint equals a SpaceTimeAccount fed the same run.

    The account integrates resident-pages x elapsed-references piecewise
    with its own resident-set bookkeeping — none of the analyzer's
    windowing or clamping machinery.
    """
    for seed in SEEDS:
        events, _, _ = traced_run(seed)
        account = SpaceTimeAccount()
        resident: set = set()
        last_time = None
        for event in events:
            if last_time is not None and event.time > last_time:
                account.accumulate(
                    words=len(resident), duration=event.time - last_time,
                    waiting=False,
                )
            last_time = event.time if last_time is None else max(
                last_time, event.time
            )
            if event.kind == "fault":
                resident.add(event.unit)
            elif event.kind == "evict":
                resident.discard(event.unit)
        analytics = analyze_events(events, window=50)
        assert analytics.series["spacetime"].final() == pytest.approx(
            account.total
        ), f"spacetime integral diverged at seed={seed}"


def test_live_sink_and_replayed_events_agree():
    """Riding the tracer live derives the same analytics as a replay."""
    trace = make_trace(7)
    live = TraceAnalyzer(window=50)
    ring = RingBufferSink(capacity=8192)
    simulate_trace(
        trace, frames=8, policy=make_policy("lru"),
        tracer=Tracer([CallbackSink(live.accept), ring]),
    )
    replayed = analyze_events(ring.events(), window=50)
    live_result = live.finish()
    for name, series in replayed.series.items():
        assert live_result.series[name].values == series.values
    assert live_result.kind_counts == replayed.kind_counts
    assert len(live_result.residency_spans) == len(replayed.residency_spans)


def test_window_choice_never_changes_totals():
    events, counters, _ = traced_run(11)
    for window in (1, 7, 50, 400, 10_000):
        analytics = analyze_events(events, window=window)
        assert sum(analytics.series["faults"].values) == (
            counters.value("replay.faults")
        ), f"window={window} changed the fault total"
        assert analytics.series["spacetime"].final() == (
            analyze_events(events, window=50).series["spacetime"].final()
        )


def test_run_spacetime_equals_sum_of_program_splits():
    from repro.observe import Evict, Fault

    events = [
        Fault(time=0, unit=1, program="alpha"),
        Fault(time=3, unit=2, program="beta"),
        Fault(time=5, unit=3, program="alpha"),
        Evict(time=9, unit=1, program="alpha"),
        Evict(time=14, unit=2, program="beta"),
        Evict(time=20, unit=3, program="alpha"),
    ]
    analytics = analyze_events(events, window=100)
    split_total = sum(
        series.final() for series in analytics.spacetime_by_program.values()
    )
    assert analytics.series["spacetime"].final() == split_total
    assert RUN not in analytics.spacetime_by_program
