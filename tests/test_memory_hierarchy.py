"""Tests for storage levels and hierarchies."""

import pytest

from repro.memory import (
    StorageHierarchy,
    StorageLevel,
    core_disk,
    core_drum,
    core_drum_disk,
)


def make_core(capacity=1024):
    return StorageLevel(
        "core", capacity, access_time=1, transfer_rate=1.0, directly_addressable=True
    )


class TestStorageLevel:
    def test_transfer_time_includes_latency(self):
        drum = StorageLevel("drum", 1000, access_time=100, transfer_rate=0.5)
        # 100 latency + 512 / 0.5 words per cycle = 100 + 1024
        assert drum.transfer_time(512) == 1124

    def test_transfer_time_zero_words(self):
        drum = StorageLevel("drum", 1000, access_time=100)
        assert drum.transfer_time(0) == 0

    def test_transfer_time_minimum_one_cycle_burst(self):
        fast = StorageLevel("fast", 1000, access_time=0, transfer_rate=100.0)
        assert fast.transfer_time(1) == 1

    def test_transfer_time_rejects_negative(self):
        with pytest.raises(ValueError):
            make_core().transfer_time(-1)

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            StorageLevel("x", 0, access_time=1)

    def test_rejects_negative_access_time(self):
        with pytest.raises(ValueError):
            StorageLevel("x", 10, access_time=-1)

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            StorageLevel("x", 10, access_time=1, transfer_rate=0)

    def test_frozen(self):
        level = make_core()
        with pytest.raises(AttributeError):
            level.capacity = 99


class TestStorageHierarchy:
    def test_requires_levels(self):
        with pytest.raises(ValueError):
            StorageHierarchy([])

    def test_fastest_must_be_addressable(self):
        drum = StorageLevel("drum", 1000, access_time=100)
        with pytest.raises(ValueError):
            StorageHierarchy([drum])

    def test_rejects_duplicate_names(self):
        with pytest.raises(ValueError):
            StorageHierarchy([make_core(), make_core()])

    def test_working_storage_is_first(self):
        hierarchy = core_drum()
        assert hierarchy.working_storage.name == "core"

    def test_level_lookup(self):
        hierarchy = core_drum()
        assert hierarchy.level("drum").name == "drum"

    def test_level_lookup_missing(self):
        with pytest.raises(KeyError):
            core_drum().level("tape")

    def test_contains(self):
        hierarchy = core_drum()
        assert "drum" in hierarchy
        assert "disk" not in hierarchy

    def test_iteration_and_len(self):
        hierarchy = core_drum_disk()
        assert len(hierarchy) == 3
        assert [level.name for level in hierarchy] == ["core", "drum", "disk"]

    def test_fetch_time_delegates(self):
        hierarchy = core_drum(drum_latency=100, drum_rate=1.0)
        assert hierarchy.fetch_time("drum", 512) == 100 + 512

    def test_store_time_matches_fetch_time(self):
        hierarchy = core_drum()
        assert hierarchy.store_time("drum", 512) == hierarchy.fetch_time("drum", 512)

    def test_backing_levels(self):
        hierarchy = core_drum_disk()
        assert [level.name for level in hierarchy.backing_levels()] == ["drum", "disk"]


class TestFactories:
    def test_atlas_shape(self):
        hierarchy = core_drum()
        assert hierarchy.working_storage.capacity == 16_384
        assert hierarchy.level("drum").capacity == 98_304

    def test_m44_shape(self):
        hierarchy = core_disk()
        assert hierarchy.working_storage.capacity == 200_000
        assert hierarchy.level("disk").capacity == 9_000_000

    def test_multics_shape(self):
        hierarchy = core_drum_disk()
        assert hierarchy.working_storage.capacity == 131_072
        assert hierarchy.level("disk").capacity == 16_000_000

    def test_drum_is_faster_than_disk(self):
        hierarchy = core_drum_disk()
        assert hierarchy.fetch_time("drum", 1024) < hierarchy.fetch_time("disk", 1024)
