"""python -m repro traffic: report, resume, compare gate, live view."""

import pytest

from repro.traffic.cli import TrafficLiveView, main

QUICK = [
    "--quick", "--loads", "1.2", "--workers", "1",
    "--pool-frames", "24", "--horizon", "96",
]


def run(tmp_path, *extra):
    return main([*QUICK, "--results", str(tmp_path / "r.jsonl"), *extra])


class TestRuns:
    def test_report_carries_the_headline_numbers(self, tmp_path, capsys):
        assert run(tmp_path) == 0
        out = capsys.readouterr().out
        assert "offered-load axis" in out
        assert "qwait p99" in out and "fwait p99" in out
        assert "traffic.queue_wait" in out and "traffic.fault_wait" in out
        assert "executed 1  skipped 0  failed 0" in out

    def test_no_report_still_prints_the_grep_line(self, tmp_path, capsys):
        assert run(tmp_path, "--no-report") == 0
        out = capsys.readouterr().out
        assert "executed 1  skipped 0  failed 0" in out
        assert "offered-load axis" not in out

    def test_resume_skips_recorded_points(self, tmp_path, capsys):
        run(tmp_path)
        assert run(tmp_path, "--resume") == 0
        assert "executed 0  skipped 1" in capsys.readouterr().out

    def test_bad_axis_value_is_a_usage_error(self, tmp_path, capsys):
        assert run(tmp_path, "--loads", "-1") == 2
        assert "offered load" in capsys.readouterr().err

    def test_unknown_arrivals_rejected_by_argparse(self, tmp_path):
        with pytest.raises(SystemExit):
            run(tmp_path, "--arrivals", "sawtooth")


class TestCompareGate:
    def test_recorded_campaign_reproduces(self, tmp_path, capsys):
        run(tmp_path)
        assert run(tmp_path, "--compare") == 0
        assert "reproduced bit-identically" in capsys.readouterr().out

    def test_tampered_record_fails_the_gate(self, tmp_path, capsys):
        import json

        run(tmp_path)
        path = tmp_path / "r.jsonl"
        record = json.loads(path.read_text())
        record["refs"] += 1
        path.write_text(json.dumps(record) + "\n")
        assert run(tmp_path, "--compare") == 1
        assert "MISMATCH" in capsys.readouterr().err

    def test_nothing_recorded_is_a_usage_error(self, tmp_path, capsys):
        assert run(tmp_path, "--compare") == 2
        assert "no recorded points" in capsys.readouterr().err

    def test_different_flags_do_not_match_the_record(self, tmp_path, capsys):
        run(tmp_path)
        assert run(tmp_path, "--compare", "--policy", "shortest") == 2
        assert "none of the requested points" in capsys.readouterr().err


class TestLiveView:
    class FakeRenderer:
        def __init__(self):
            self.frames = []

        def render(self, frame):
            self.frames.append(frame)

    def test_accumulates_and_renders(self):
        renderer = self.FakeRenderer()
        view = TrafficLiveView("t", renderer=renderer)
        view.update(1, 3, {"point": "p1", "admitted": 5, "shed": 1,
                           "completed": 5, "refs": 400})
        view.update(2, 3, {"point": "p2", "error": "boom"})
        assert len(renderer.frames) == 2
        assert "point 2/3" in renderer.frames[-1]
        assert "failed 1" in renderer.frames[-1]
        assert "admitted 5" in renderer.frames[-1]
        assert "p2 (FAILED)" in renderer.frames[-1]

    def test_cli_live_flag_renders_frames(self, tmp_path, capsys):
        assert run(tmp_path, "--live") == 0
        assert "traffic: traffic" in capsys.readouterr().out
