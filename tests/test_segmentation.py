"""Tests for segments, codewords, and the segment manager."""

import pytest

from repro.addressing import SegmentTable
from repro.alloc import FreeListAllocator, RiceAllocator
from repro.clock import Clock
from repro.errors import BoundViolation, MissingSegment, OutOfMemory, SegmentFault
from repro.memory import BackingStore, StorageLevel
from repro.paging import ClockPolicy, LruPolicy
from repro.segmentation import Codeword, CodewordStore, Segment, SegmentManager


class TestSegment:
    def test_creation(self):
        segment = Segment("stack", 100)
        assert segment.extent == 100 and segment.alive

    def test_grow_and_shrink(self):
        segment = Segment("stack", 100)
        segment.grow(50)
        assert segment.extent == 150
        segment.shrink(100)
        assert segment.extent == 50
        assert segment.resize_count == 2

    def test_shrink_to_zero_rejected(self):
        with pytest.raises(ValueError):
            Segment("s", 10).shrink(10)

    def test_destroy_prevents_further_use(self):
        segment = Segment("s", 10)
        segment.destroy()
        with pytest.raises(ValueError):
            segment.grow(1)

    def test_double_destroy_rejected(self):
        segment = Segment("s", 10)
        segment.destroy()
        with pytest.raises(ValueError):
            segment.destroy()

    def test_contains(self):
        segment = Segment("s", 10)
        assert segment.contains(9)
        assert not segment.contains(10)
        assert not segment.contains(-1)

    def test_bad_extent(self):
        with pytest.raises(ValueError):
            Segment("s", 0)


class TestCodewords:
    def test_declare_and_place(self):
        store = CodewordStore()
        store.declare("data", 100)
        store.place("data", 4000)
        assert store.effective_address("data", 7) == 4007

    def test_automatic_index_register_addition(self):
        """The Rice hallmark: the index register adds automatically."""
        store = CodewordStore()
        store.declare("vector", 100, index_register=3)
        store.place("vector", 1000)
        store.set_register(3, 40)
        assert store.effective_address("vector", 2) == 1042

    def test_indexed_access_still_bound_checked(self):
        store = CodewordStore()
        store.declare("vector", 100, index_register=0)
        store.place("vector", 1000)
        store.set_register(0, 99)
        with pytest.raises(BoundViolation):
            store.effective_address("vector", 1)

    def test_absent_segment_faults(self):
        store = CodewordStore()
        store.declare("s", 10)
        with pytest.raises(SegmentFault):
            store.effective_address("s", 0)

    def test_missing_codeword(self):
        with pytest.raises(MissingSegment):
            CodewordStore().codeword("ghost")

    def test_relocate_patches_base(self):
        """Storage packing finds the codeword via the back reference."""
        store = CodewordStore()
        store.declare("s", 10)
        store.place("s", 500)
        store.relocate("s", 100)
        assert store.effective_address("s", 0) == 100
        assert store.patches == 1

    def test_relocate_nonresident_rejected(self):
        store = CodewordStore()
        store.declare("s", 10)
        with pytest.raises(SegmentFault):
            store.relocate("s", 0)

    def test_bad_register(self):
        with pytest.raises(ValueError):
            CodewordStore(register_count=4).declare("s", 10, index_register=4)

    def test_duplicate_declare(self):
        store = CodewordStore()
        store.declare("s", 10)
        with pytest.raises(ValueError):
            store.declare("s", 10)

    def test_presence(self):
        codeword = Codeword(base=None, size=10)
        assert not codeword.present
        codeword.base = 5
        assert codeword.present


def make_manager(capacity=1000, policy=None, compaction=False, latency=100,
                 allocator=None):
    clock = Clock()
    backing = BackingStore(
        StorageLevel("drum", 10**6, access_time=latency, transfer_rate=1.0),
        clock=clock,
    )
    manager = SegmentManager(
        table=SegmentTable(),
        allocator=allocator or FreeListAllocator(capacity, policy="best_fit"),
        backing=backing,
        policy=policy or LruPolicy(),
        clock=clock,
        compact_before_replacing=compaction,
    )
    return manager, clock


class TestSegmentManagerFetch:
    def test_fetch_on_first_reference(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.access("s", 0)
        assert manager.stats.segment_faults == 1
        assert "s" in manager.resident_segments()

    def test_second_reference_hits(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.access("s", 0)
        manager.access("s", 50)
        assert manager.stats.segment_faults == 1
        assert manager.stats.accesses == 2

    def test_fetch_blocks_for_transfer(self):
        manager, clock = make_manager(latency=100)
        manager.create("s", 50)
        manager.access("s", 0)
        # 1 reference + 100 latency + 50 words
        assert clock.now == 151

    def test_address_is_base_plus_item(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        address = manager.access("s", 42)
        base = manager.table.descriptor("s").base
        assert address == base + 42

    def test_bound_check(self):
        manager, _ = make_manager()
        manager.create("s", 10)
        manager.access("s", 0)
        with pytest.raises(BoundViolation):
            manager.access("s", 10)


class TestSegmentManagerReplacement:
    def test_replacement_frees_room(self):
        manager, _ = make_manager(capacity=250)
        for name in ("a", "b", "c"):
            manager.create(name, 100)
        manager.access("a", 0)
        manager.access("b", 0)
        manager.access("c", 0)   # must displace a (LRU)
        assert manager.stats.replacements >= 1
        assert "c" in manager.resident_segments()
        assert "a" not in manager.resident_segments()

    def test_displaced_segment_written_back_when_no_copy(self):
        manager, _ = make_manager(capacity=150)
        manager.create("a", 100)
        manager.create("b", 100)
        manager.access("a", 0)
        manager.access("b", 0)
        assert manager.stats.writebacks == 1
        assert ("segment", "a") in manager.backing

    def test_clean_segment_with_copy_not_rewritten(self):
        manager, _ = make_manager(capacity=150)
        manager.create("a", 100)
        manager.create("b", 100)
        manager.access("a", 0)
        manager.access("b", 0)   # a displaced, written (no copy yet)
        manager.access("a", 0)   # b displaced, written; a refetched clean
        manager.access("b", 0)   # a displaced again: copy exists, clean
        assert manager.stats.writebacks == 2

    def test_modified_segment_rewritten(self):
        manager, _ = make_manager(capacity=150)
        manager.create("a", 100)
        manager.create("b", 100)
        manager.access("a", 0, write=True)
        manager.access("b", 0)
        manager.access("a", 0, write=True)
        manager.access("b", 0)
        assert manager.stats.writebacks == 3

    def test_impossible_request(self):
        manager, _ = make_manager(capacity=100)
        manager.create("big", 100)
        manager.create("bigger", 100)
        manager.access("big", 0)
        # 'bigger' can replace 'big'.
        manager.access("bigger", 0)
        manager.create("huge", 101)
        with pytest.raises(OutOfMemory):
            manager.access("huge", 0)


class TestSegmentManagerCompaction:
    def test_compaction_beats_fragmentation(self):
        manager, _ = make_manager(capacity=300, compaction=True)
        for name in ("a", "b", "c"):
            manager.create(name, 100)
            manager.access(name, 0)
        manager.destroy("a")
        manager.destroy("c")
        # Free space: 100 at each end; a 150-word segment needs packing.
        manager.create("wide", 150)
        manager.access("wide", 0)
        assert manager.stats.compactions == 1
        assert manager.stats.replacements == 0

    def test_descriptor_patched_after_move(self):
        manager, _ = make_manager(capacity=300, compaction=True)
        for name in ("a", "b", "c"):
            manager.create(name, 100)
            manager.access(name, 0)
        manager.destroy("a")
        manager.destroy("c")
        manager.create("wide", 150)
        manager.access("wide", 0)
        # b moved to 0; its descriptor must follow.
        assert manager.table.descriptor("b").base == 0
        assert manager.access("b", 5) == 5

    def test_without_compaction_replacement_happens(self):
        manager, _ = make_manager(capacity=300, compaction=False)
        for name in ("a", "b", "c"):
            manager.create(name, 100)
            manager.access(name, 0)
        manager.destroy("a")
        manager.destroy("c")
        manager.create("wide", 150)
        manager.access("wide", 0)
        assert manager.stats.replacements >= 1


class TestSegmentManagerLifecycle:
    def test_destroy_releases_storage(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.access("s", 0)
        manager.destroy("s")
        assert manager.allocator.free_words == 1000
        assert ("segment", "s") not in manager.backing

    def test_destroy_nonresident(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.destroy("s")
        assert manager.allocator.free_words == 1000

    def test_resize_grow_displaces(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.access("s", 0)
        manager.resize("s", 200)
        assert "s" not in manager.resident_segments()
        manager.access("s", 150)
        assert manager.table.descriptor("s").extent == 200

    def test_resize_shrink_in_place(self):
        manager, _ = make_manager()
        manager.create("s", 100)
        manager.access("s", 0)
        manager.resize("s", 50)
        assert "s" in manager.resident_segments()

    def test_prefetch_when_room(self):
        manager, clock = make_manager()
        manager.create("s", 100)
        before = clock.now
        assert manager.prefetch("s")
        assert clock.now == before   # overlapped: no wait
        manager.access("s", 0)
        assert manager.stats.segment_faults == 0

    def test_prefetch_declines_when_full(self):
        manager, _ = make_manager(capacity=100)
        manager.create("a", 100)
        manager.create("b", 100)
        manager.access("a", 0)
        assert not manager.prefetch("b")
        assert "a" in manager.resident_segments()


class TestSegmentManagerWithRiceAllocator:
    def test_rice_allocator_drives_manager(self):
        allocator = RiceAllocator(1000)
        manager, _ = make_manager(allocator=allocator, policy=ClockPolicy())
        for name in ("a", "b", "c"):
            manager.create(name, 200)
            manager.access(name, 0)
        assert len(manager.resident_segments()) == 3
        # Gross sizes include back references.
        assert allocator.used_words == 3 * 201

    def test_rice_replacement_iterates(self):
        allocator = RiceAllocator(450)
        manager, _ = make_manager(allocator=allocator, policy=ClockPolicy())
        for name in ("a", "b"):
            manager.create(name, 200)
            manager.access(name, 0)
        manager.create("wide", 300)
        manager.access("wide", 0)
        assert manager.stats.replacements >= 1
        assert "wide" in manager.resident_segments()
