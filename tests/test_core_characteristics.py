"""Tests for the four-characteristic taxonomy."""

import pytest

from repro.core import (
    AllocationUnit,
    Contiguity,
    NameSpaceKind,
    PredictiveInformation,
    SystemCharacteristics,
)
from repro.errors import ConfigurationError


def make(ns=NameSpaceKind.LINEAR, pi=PredictiveInformation.NONE,
         ct=Contiguity.ARTIFICIAL, au=AllocationUnit.UNIFORM):
    return SystemCharacteristics(ns, pi, ct, au)


class TestValidation:
    def test_paging_without_mapping_rejected(self):
        characteristics = make(ct=Contiguity.REAL, au=AllocationUnit.UNIFORM)
        with pytest.raises(ConfigurationError):
            characteristics.validate()

    def test_all_other_combinations_valid(self):
        from itertools import product
        valid = 0
        for ns, pi, ct, au in product(
            NameSpaceKind, PredictiveInformation, Contiguity, AllocationUnit
        ):
            characteristics = SystemCharacteristics(ns, pi, ct, au)
            if au is AllocationUnit.UNIFORM and ct is Contiguity.REAL:
                continue
            characteristics.validate()
            valid += 1
        assert valid == 18


class TestDescription:
    def test_describe_mentions_all_four(self):
        text = make().describe()
        assert "linear name space" in text
        assert "no predictive information" in text
        assert "artificial contiguity" in text
        assert "uniform units" in text

    def test_describe_accepted_advice(self):
        text = make(pi=PredictiveInformation.ACCEPTED).describe()
        assert "accepts predictive information" in text

    def test_as_row(self):
        row = make(ns=NameSpaceKind.SYMBOLICALLY_SEGMENTED).as_row()
        assert row == ("symbolically_segmented", "none", "artificial", "uniform")


class TestSegmentedProperty:
    def test_linear_is_not_segmented(self):
        assert not NameSpaceKind.LINEAR.segmented

    def test_both_segmented_kinds(self):
        assert NameSpaceKind.LINEARLY_SEGMENTED.segmented
        assert NameSpaceKind.SYMBOLICALLY_SEGMENTED.segmented


class TestEquality:
    def test_frozen_and_hashable(self):
        a = make()
        b = make()
        assert a == b
        assert hash(a) == hash(b)
        with pytest.raises(AttributeError):
            a.name_space = NameSpaceKind.LINEAR
