"""Integration tests: whole-system scenarios crossing module boundaries."""

import pytest

from repro import (
    Clock,
    SystemConfig,
    build_system,
    recommended_system,
)
from repro.advice import keep_resident, will_need, wont_need
from repro.core import (
    AllocationUnit,
    Contiguity,
    NameSpaceKind,
    PredictiveInformation,
    SystemCharacteristics,
)
from repro.machines import all_machines, atlas, rice
from repro.paging import LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import (
    matrix_traversal_trace,
    overlay_phases_trace,
    phased_trace,
    working_set_sizes,
)


class TestCompilerScenario:
    """A compiler-shaped program on the recommended system."""

    def test_full_compilation_run(self):
        system = recommended_system()
        # Per-pass dynamic segments of very different sizes.
        system.create("source", 30_000)         # paged
        system.create("tokens", 900)            # contiguous
        system.create("symbols", 700)           # contiguous
        system.create("tree", 15_000)           # paged
        system.advise(keep_resident("symbols"))

        # Pass 1: scan source sequentially, build tokens and symbols.
        for position in range(0, 30_000, 64):
            system.access("source", position)
            system.access("tokens", position % 900, write=True)
            system.access("symbols", (position * 7) % 700, write=True)
        # Pass 2: source no longer needed; walk the tree.
        system.advise(wont_need("source"))
        system.advise(will_need("tree"))
        for position in range(0, 15_000, 32):
            system.access("tree", position, write=True)
            system.access("symbols", position % 700)
        # Tokens shrink once consumed (dynamic segments).
        system.resize("tokens", 100)
        system.access("tokens", 50)

        stats = system.stats()
        assert stats.accesses > 1_400
        assert 0 < stats.fault_rate < 0.2
        # Pinned symbols never refetched after load.
        assert "symbols" in system.small.resident_segments()

    def test_same_program_across_the_design_space(self):
        """The identical workload runs on every valid combination."""
        def workload(system):
            system.create("data", 2_000)
            for position in range(0, 2_000, 37):
                system.access("data", position, write=(position % 5 == 0))
            return system.stats()

        from itertools import product
        from repro.errors import ConfigurationError

        fault_rates = {}
        for axes in product(
            NameSpaceKind, PredictiveInformation, Contiguity, AllocationUnit
        ):
            characteristics = SystemCharacteristics(*axes)
            try:
                system = build_system(
                    characteristics,
                    SystemConfig(capacity_words=4_096, page_size=256),
                )
            except ConfigurationError:
                continue
            stats = workload(system)
            fault_rates[characteristics] = stats.fault_rate
            assert stats.accesses == len(range(0, 2_000, 37))
        assert len(fault_rates) == 18
        # Resident (nonuniform linear) systems never fault; paged ones do.
        resident = SystemCharacteristics(
            NameSpaceKind.LINEAR, PredictiveInformation.NONE,
            Contiguity.REAL, AllocationUnit.NONUNIFORM,
        )
        paged = SystemCharacteristics(
            NameSpaceKind.LINEAR, PredictiveInformation.NONE,
            Contiguity.ARTIFICIAL, AllocationUnit.UNIFORM,
        )
        assert fault_rates[resident] == 0.0
        assert fault_rates[paged] > 0.0


class TestMachineScenarios:
    def test_atlas_one_level_store_illusion(self):
        """A program bigger than core runs unmodified on ATLAS."""
        machine = atlas()
        system = machine.system
        system.create("big-array", 40_000)   # 2.4x the 16K core
        trace = matrix_traversal_trace(rows=40, cols=1_000, page_size=512,
                                       order="row")
        for page in trace[:5_000]:
            system.access("big-array", (page * 512) % 40_000)
        stats = system.stats()
        assert stats.faults > 0
        assert stats.fault_rate < 0.05   # sequential locality pays

    def test_rice_compaction_free_lifecycle(self):
        """Create/destroy churn on the Rice chain allocator stays sound."""
        machine = rice()
        system = machine.system
        for generation in range(6):
            for index in range(5):
                name = f"g{generation}s{index}"
                system.create(name, 400 + 100 * index)
                system.access(name, 0)
            if generation >= 1:
                for index in range(0, 5, 2):
                    system.destroy(f"g{generation - 1}s{index}")
        allocator = system.manager.allocator
        assert allocator.used_words + allocator.free_words == allocator.capacity

    def test_all_machines_survive_destroy_recreate_cycles(self):
        for machine in all_machines():
            system = machine.system
            for cycle in range(3):
                system.create(f"seg{cycle}", 300)
                system.access(f"seg{cycle}", 299)
                system.destroy(f"seg{cycle}")
            # The name is reusable after destruction.
            system.create("seg0", 300)
            system.access("seg0", 0)


class TestWorkloadMeetsSimulator:
    def test_working_set_predicts_fault_knee(self):
        """The trace analyzer's working-set estimate locates the frame
        count at which a program stops thrashing — modules agreeing."""
        trace = phased_trace(pages=32, length=2_000, working_set=6,
                             phase_length=400, locality=0.97, seed=77)
        estimated = round(
            sum(working_set_sizes(trace, 100)) / len(trace)
        )

        def faults_with(frames):
            summary = MultiprogrammingSimulator(
                [ProgramSpec("p", trace, frames, LruPolicy())],
                RoundRobinScheduler(100),
                fetch_time=500,
            ).run()
            return summary.programs[0].faults

        starved = faults_with(max(1, estimated - 4))
        satisfied = faults_with(estimated + 2)
        assert satisfied < starved / 2

    def test_overlay_program_under_three_regimes(self):
        trace = overlay_phases_trace(phases=5, pages_per_phase=3,
                                     shared_pages=1,
                                     references_per_phase=150, seed=9)
        results = {}
        for frames in (2, 4, 16):
            summary = MultiprogrammingSimulator(
                [ProgramSpec("overlay", trace, frames, LruPolicy())],
                RoundRobinScheduler(100),
                fetch_time=500,
            ).run()
            results[frames] = summary.programs[0].faults
        # More storage, monotonically fewer faults; with frames for every
        # page ever touched, cold faults only.
        assert results[2] >= results[4] >= results[16]
        assert results[16] == 16   # 5 phases x 3 pages + 1 shared


class TestCliEntryPoint:
    def test_matrix_command(self, capsys):
        from repro.__main__ import main
        assert main(["matrix"]) == 0
        out = capsys.readouterr().out
        assert "ATLAS" in out and "MULTICS" in out

    def test_space_command(self, capsys):
        from repro.__main__ import main
        assert main(["space"]) == 0
        out = capsys.readouterr().out
        assert out.count("x ") >= 6   # the six invalid corners

    def test_policies_command(self, capsys):
        from repro.__main__ import main
        assert main(["policies"]) == 0
        out = capsys.readouterr().out
        assert "atlas" in out and "opt" in out

    def test_unknown_command(self, capsys):
        from repro.__main__ import main
        assert main(["bogus"]) == 1
