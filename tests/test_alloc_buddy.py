"""Tests for the binary buddy allocator."""

import pytest

from repro.alloc import BuddyAllocator
from repro.alloc.base import Allocation
from repro.errors import InvalidFree, OutOfMemory


class TestConstruction:
    def test_rejects_non_power_of_two_capacity(self):
        with pytest.raises(ValueError):
            BuddyAllocator(100)

    def test_rejects_non_power_of_two_min_block(self):
        with pytest.raises(ValueError):
            BuddyAllocator(128, min_block=3)

    def test_rejects_min_block_above_capacity(self):
        with pytest.raises(ValueError):
            BuddyAllocator(128, min_block=256)


class TestAllocation:
    def test_rounds_to_power_of_two(self):
        allocator = BuddyAllocator(256, min_block=16)
        block = allocator.allocate(20)
        assert allocator.block_size(block) == 32

    def test_min_block_floor(self):
        allocator = BuddyAllocator(256, min_block=16)
        block = allocator.allocate(1)
        assert allocator.block_size(block) == 16

    def test_exact_power_not_rounded(self):
        allocator = BuddyAllocator(256, min_block=16)
        block = allocator.allocate(64)
        assert allocator.block_size(block) == 64

    def test_whole_capacity(self):
        allocator = BuddyAllocator(256)
        block = allocator.allocate(256)
        assert block.address == 0
        with pytest.raises(OutOfMemory):
            allocator.allocate(1)

    def test_oversized_request(self):
        with pytest.raises(OutOfMemory):
            BuddyAllocator(256).allocate(257)

    def test_splitting_produces_aligned_blocks(self):
        allocator = BuddyAllocator(256, min_block=16)
        a = allocator.allocate(16)
        b = allocator.allocate(16)
        assert a.address % 16 == 0 and b.address % 16 == 0
        assert a.address != b.address

    def test_external_fragmentation_across_size_classes(self):
        """Free space exists but no block of the needed order does."""
        allocator = BuddyAllocator(64, min_block=8)
        blocks = [allocator.allocate(8) for _ in range(8)]
        for block in blocks[::2]:
            allocator.free(block)
        assert allocator.free_words == 32
        with pytest.raises(OutOfMemory):
            allocator.allocate(16)


class TestRecombination:
    def test_buddies_merge(self):
        allocator = BuddyAllocator(64, min_block=8)
        a = allocator.allocate(8)
        b = allocator.allocate(8)
        allocator.free(a)
        allocator.free(b)
        # Fully merged back: a 64-word request succeeds.
        assert allocator.allocate(64).address == 0

    def test_non_buddies_do_not_merge(self):
        allocator = BuddyAllocator(32, min_block=8)
        blocks = [allocator.allocate(8) for _ in range(4)]
        allocator.free(blocks[1])
        allocator.free(blocks[2])
        # 1 and 2 are adjacent but not buddies (1^8=0-block, 2^8=3-block).
        with pytest.raises(OutOfMemory):
            allocator.allocate(16)

    def test_cascade_merge(self):
        allocator = BuddyAllocator(64, min_block=8)
        blocks = [allocator.allocate(8) for _ in range(8)]
        for block in blocks:
            allocator.free(block)
        assert allocator.holes() == [(0, 64)]


class TestBookkeeping:
    def test_internal_waste(self):
        allocator = BuddyAllocator(256, min_block=16)
        allocator.allocate(20)   # reserves 32, wastes 12
        allocator.allocate(16)   # exact
        assert allocator.internal_waste == 12

    def test_used_words_counts_reserved(self):
        allocator = BuddyAllocator(256, min_block=16)
        allocator.allocate(20)
        assert allocator.used_words == 32

    def test_double_free_rejected(self):
        allocator = BuddyAllocator(64)
        block = allocator.allocate(8)
        allocator.free(block)
        with pytest.raises(InvalidFree):
            allocator.free(block)

    def test_block_size_of_unknown(self):
        allocator = BuddyAllocator(64)
        with pytest.raises(InvalidFree):
            allocator.block_size(Allocation(0, 8))

    def test_failure_counter(self):
        allocator = BuddyAllocator(64)
        with pytest.raises(OutOfMemory):
            allocator.allocate(128)
        assert allocator.counters.failures == 1
