"""The offered-load axis: grid plumbing, the traffic leg, the report.

The open-arrival traffic tier rides the sweep the same way the serve
leg does, so the axis threads grid validation → shard ids (which are
also the derive_seed roots — the stability hazard) → the traffic leg's
record fields → the marginal table the CLI prints.
"""

import pytest

from repro.sweep.cli import AXES, MARGINAL_HEADERS, build_parser, resolve_grid
from repro.sweep.engine import marginals, run_sweep
from repro.sweep.grid import Shard, SweepGrid, quick_grid
from repro.sweep.shard import run_shard


def tiny_grid(**overrides):
    base = dict(
        name="tiny-traffic",
        machines=("baseline",),
        replacement=("lru",),
        placement=("best_fit",),
        frames=(8,),
        capacities=(20_000,),
        seeds=(0,),
        length=200,
        pages=16,
        requests=40,
        program_length=150,
    )
    base.update(overrides)
    return SweepGrid(**base)


class TestGridAxis:
    def test_offered_multiplies_grid_size(self):
        assert tiny_grid().size == 1
        assert tiny_grid(offered=(0.5, 1.0, 1.5)).size == 3

    def test_offered_defaults_to_the_knee(self):
        assert quick_grid().offered == (1.0,)

    def test_nonpositive_load_rejected(self):
        with pytest.raises(ValueError, match="offered load"):
            tiny_grid(offered=(0.0,))
        with pytest.raises(ValueError):
            tiny_grid(offered=())
        with pytest.raises(ValueError):
            tiny_grid(offered=(1.5, 1.5))

    def test_round_trips_through_dict(self):
        grid = tiny_grid(offered=(0.5, 1.5))
        assert SweepGrid.from_dict(grid.to_dict()) == grid


class TestSeedStability:
    """Shard.id roots every derive_seed stream, so the default load must
    not stamp an ``offered=`` segment into it — that would silently
    re-seed, and re-answer, every previously recorded campaign."""

    def test_default_load_leaves_ids_unchanged(self):
        shard = next(iter(tiny_grid().shards()))
        assert shard.offered == 1.0
        assert "offered=" not in shard.id
        assert shard.id == (
            "machine=baseline/replacement=lru/placement=best_fit/"
            "frames=8/capacity=20000/sharing=1/seed=0"
        )

    def test_non_default_loads_are_distinct_resume_keys(self):
        ids = [s.id for s in tiny_grid(offered=(0.5, 1.0, 1.5)).shards()]
        assert sum("offered=" in shard_id for shard_id in ids) == 2
        assert len(set(ids)) == 3

    def test_pre_axis_specs_still_run(self):
        """A Shard built without the field (an old grid or record) gets
        the default load, and run_shard tolerates specs missing it."""
        shard = next(iter(tiny_grid().shards()))
        assert Shard(**{
            field: getattr(shard, field)
            for field in shard.__dataclass_fields__
            if field != "offered"
        }).offered == 1.0


class TestTrafficLeg:
    def test_record_carries_the_traffic_fields(self):
        shard = next(iter(tiny_grid().shards()))
        record = run_shard(shard.spec())
        assert record["offered"] == 1.0
        for key in ("traffic_arrivals", "traffic_admitted", "traffic_shed",
                    "traffic_shed_rate", "traffic_completed", "traffic_refs",
                    "traffic_stalls", "traffic_queued_watermark",
                    "traffic_queued_quota", "traffic_queue_wait_p50",
                    "traffic_queue_wait_p99", "traffic_fault_wait_p50",
                    "traffic_fault_wait_p99"):
            assert key in record, key
        assert record["traffic_admitted"] <= record["traffic_arrivals"]
        assert record["traffic_refs"] > 0

    def test_offered_load_changes_the_answer(self):
        calm, slammed = (
            run_shard(next(iter(
                tiny_grid(offered=(load,)).shards()
            )).spec())
            for load in (0.5, 1.6)
        )
        assert slammed["traffic_arrivals"] > calm["traffic_arrivals"]
        assert slammed["traffic_shed_rate"] >= calm["traffic_shed_rate"]
        assert slammed["traffic_queue_wait_p99"] >= \
            calm["traffic_queue_wait_p99"]

    def test_leg_is_deterministic_across_workers(self):
        grid = tiny_grid(offered=(0.5, 1.5))
        serial = run_sweep(grid, workers=1)
        pooled = run_sweep(grid, workers=4)
        pairs = zip(serial.records, pooled.records)
        for left, right in pairs:
            assert left["traffic_refs"] == right["traffic_refs"]
            assert left["traffic_queue_wait_p99"] == \
                right["traffic_queue_wait_p99"]


class TestReport:
    def test_offered_is_a_reported_axis(self):
        assert "offered" in AXES

    def test_marginal_rows_match_the_headers(self):
        result = run_sweep(tiny_grid(offered=(0.5, 1.5)), workers=1)
        rows = marginals(result.records, "offered")
        assert [row[0] for row in rows] == [0.5, 1.5]
        assert all(len(row) == len(MARGINAL_HEADERS) for row in rows)

    def test_new_columns_appended_not_inserted(self):
        """The marginal table is position-indexed downstream; the
        traffic columns must ride at the end."""
        assert MARGINAL_HEADERS[-2:] == ("shed rate", "qwait p99")
        assert MARGINAL_HEADERS[7] == "alloc fails"

    def test_cli_offered_override(self):
        options = build_parser().parse_args(
            ["--quick", "--offered", "0.5", "1.5"]
        )
        grid = resolve_grid(options)
        assert grid.offered == (0.5, 1.5)
        assert grid.size == quick_grid().size * 2
