"""Tests for the associative memory (TLB)."""

import pytest

from repro.addressing import AssociativeMemory


class TestBasics:
    def test_miss_returns_none(self):
        assert AssociativeMemory(4).lookup("k") is None

    def test_hit_returns_value(self):
        tlb = AssociativeMemory(4)
        tlb.insert("k", 7)
        assert tlb.lookup("k") == 7

    def test_update_existing_key(self):
        tlb = AssociativeMemory(4)
        tlb.insert("k", 7)
        tlb.insert("k", 8)
        assert tlb.lookup("k") == 8
        assert len(tlb) == 1

    def test_zero_capacity_never_stores(self):
        tlb = AssociativeMemory(0)
        tlb.insert("k", 7)
        assert tlb.lookup("k") is None
        assert len(tlb) == 0

    def test_rejects_negative_capacity(self):
        with pytest.raises(ValueError):
            AssociativeMemory(-1)

    def test_rejects_unknown_policy(self):
        with pytest.raises(ValueError):
            AssociativeMemory(4, policy="mru")

    def test_contains(self):
        tlb = AssociativeMemory(4)
        tlb.insert("k", 1)
        assert "k" in tlb
        assert "z" not in tlb


class TestEviction:
    def test_lru_evicts_least_recently_used(self):
        tlb = AssociativeMemory(2, policy="lru")
        tlb.insert("a", 1)
        tlb.insert("b", 2)
        tlb.lookup("a")          # refresh a
        tlb.insert("c", 3)        # evicts b
        assert tlb.lookup("b") is None
        assert tlb.lookup("a") == 1
        assert tlb.lookup("c") == 3

    def test_fifo_ignores_recency(self):
        tlb = AssociativeMemory(2, policy="fifo")
        tlb.insert("a", 1)
        tlb.insert("b", 2)
        tlb.lookup("a")          # does not refresh under FIFO
        tlb.insert("c", 3)        # evicts a (oldest insertion)
        assert tlb.lookup("a") is None
        assert tlb.lookup("b") == 2

    def test_random_eviction_is_seeded(self):
        results = []
        for _ in range(2):
            tlb = AssociativeMemory(2, policy="random", seed=7)
            tlb.insert("a", 1)
            tlb.insert("b", 2)
            tlb.insert("c", 3)
            results.append(sorted(k for k in ("a", "b", "c") if k in tlb))
        assert results[0] == results[1]

    def test_capacity_never_exceeded(self):
        tlb = AssociativeMemory(3)
        for i in range(10):
            tlb.insert(i, i)
        assert len(tlb) == 3

    def test_eviction_counter(self):
        tlb = AssociativeMemory(1)
        tlb.insert("a", 1)
        tlb.insert("b", 2)
        assert tlb.evictions == 1


class TestStatistics:
    def test_hit_rate(self):
        tlb = AssociativeMemory(4)
        tlb.insert("a", 1)
        tlb.lookup("a")
        tlb.lookup("a")
        tlb.lookup("z")
        assert tlb.hits == 2
        assert tlb.misses == 1
        assert tlb.hit_rate == pytest.approx(2 / 3)

    def test_hit_rate_with_no_lookups(self):
        assert AssociativeMemory(4).hit_rate == 0.0


class TestInvalidation:
    def test_invalidate_removes_entry(self):
        tlb = AssociativeMemory(4)
        tlb.insert("k", 1)
        tlb.invalidate("k")
        assert tlb.lookup("k") is None

    def test_invalidate_missing_is_noop(self):
        AssociativeMemory(4).invalidate("absent")

    def test_flush_clears_everything(self):
        tlb = AssociativeMemory(4)
        tlb.insert("a", 1)
        tlb.insert("b", 2)
        tlb.flush()
        assert len(tlb) == 0
