"""The serving tier's differential contract, pinned across 100 seeds.

Sharing degree 1 with nothing shared *is* the unshared path: the
shared-pool replay must be bit-identical — faults, cold faults,
evictions, fault positions, victim sequences, and the whole counter
snapshot — to ``simulate_trace``'s reference loop, and a DemandPager
over an unshared TenantView must produce the exact PagerStats a bare
FrameTable does.  Everything the serving tier adds is provably inert
until a second tenant or a shared page exists.
"""

import pytest

from repro.addressing import PageTable
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.observe.counters import Counters
from repro.paging import DemandPager, FrameTable, LruPolicy
from repro.paging.replacement import make_policy
from repro.paging.simulate import simulate_trace
from repro.serve import (
    SharedFramePool,
    TenantView,
    seeded_writes,
    simulate_shared,
)
from repro.workload.reference import phased_trace

SEEDS = range(100)


def degree_one_trace(seed):
    return phased_trace(
        pages=32, length=300, working_set=6, phase_length=60,
        locality=0.9, seed=seed,
    )


@pytest.mark.parametrize("seed", SEEDS)
def test_degree_one_is_bit_identical(seed):
    trace = list(degree_one_trace(seed))
    base_counters = Counters()
    base = simulate_trace(
        trace, 8, make_policy("lru"),
        record_positions=True, record_evictions=True,
        counters=base_counters, fast=False,
    )
    served_counters = Counters()
    served = simulate_shared(
        [trace], 8, lambda _index: make_policy("lru"),
        record_positions=True, record_evictions=True,
        counters=served_counters,
    )
    tenant = served.tenants[0]
    assert tenant.faults == base.faults
    assert tenant.cold_faults == base.cold_faults
    assert tenant.evictions == base.evictions
    assert tenant.fault_positions == base.fault_positions
    assert tenant.victims == base.victims
    assert served_counters.snapshot() == base_counters.snapshot()


@pytest.mark.parametrize("seed", range(10))
def test_degree_one_with_writes_is_bit_identical(seed):
    trace = list(degree_one_trace(seed))
    writes = seeded_writes(len(trace), fraction=0.2, seed=seed)
    base = simulate_trace(
        trace, 8, make_policy("lru"), writes=writes,
        record_positions=True, record_evictions=True, fast=False,
    )
    served = simulate_shared(
        [trace], 8, lambda _index: make_policy("lru"), writes=[writes],
        record_positions=True, record_evictions=True,
    )
    tenant = served.tenants[0]
    assert (tenant.faults, tenant.evictions) == (base.faults, base.evictions)
    assert tenant.fault_positions == base.fault_positions
    assert tenant.victims == base.victims


def test_degree_one_creates_no_serve_counters():
    trace = list(degree_one_trace(0))
    counters = Counters()
    simulate_shared([trace], 8, lambda _index: make_policy("lru"),
                    counters=counters)
    assert not any(name.startswith("serve.")
                   for name in counters.snapshot())


def test_sharing_changes_fetches_not_tenant_results():
    """Sharing is invisible to each tenant's own fault accounting."""
    trace_a = list(degree_one_trace(1))
    trace_b = list(degree_one_trace(2))
    alone_a = simulate_shared([trace_a], 8, lambda _i: make_policy("lru"))
    alone_b = simulate_shared([trace_b], 8, lambda _i: make_policy("lru"))
    together = simulate_shared(
        [trace_a, trace_b], 8, lambda _i: make_policy("lru"),
        shared_pages=16,
    )
    assert together.tenants[0].faults == alone_a.tenants[0].faults
    assert together.tenants[1].faults == alone_b.tenants[0].faults
    assert together.shares + together.dedup_hits > 0
    assert together.fetches < together.faults


def make_pager(frames, frame_source, latency=500):
    clock = Clock()
    pager = DemandPager(
        PageTable(page_size=128, pages=32),
        frame_source,
        BackingStore(
            StorageLevel("drum", 10**7, access_time=latency,
                         transfer_rate=1.0),
            clock=clock,
        ),
        LruPolicy(),
        clock,
    )
    return pager, clock


@pytest.mark.parametrize("seed", range(10))
def test_pager_over_unshared_view_matches_frame_table(seed):
    trace = list(degree_one_trace(seed))
    writes = seeded_writes(len(trace), fraction=0.15, seed=seed + 1000)
    base, base_clock = make_pager(4, FrameTable(4))
    view = TenantView(SharedFramePool(4), "t0", quota=4)
    served, served_clock = make_pager(4, view)
    for page, write in zip(trace, writes):
        base.access_page(page, write=write)
        served.access_page(page, write=write)
    assert served.stats == base.stats
    assert served_clock.now == base_clock.now
