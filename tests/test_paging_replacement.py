"""Tests for the replacement-policy zoo."""

import pytest

from repro.paging import (
    REPLACEMENT_POLICIES,
    AtlasLearningPolicy,
    BeladyOptimalPolicy,
    ClockPolicy,
    FifoPolicy,
    LfuPolicy,
    LruPolicy,
    M44ClassRandomPolicy,
    RandomPolicy,
    WorkingSetPolicy,
    make_policy,
    simulate_trace,
)


class TestRegistry:
    def test_all_names_instantiate(self):
        for name in REPLACEMENT_POLICIES:
            if name == "opt":
                policy = make_policy(name, trace=[0, 1])
            else:
                policy = make_policy(name)
            assert policy.name == name

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("crystal_ball")


class TestFifo:
    def test_evicts_oldest_load(self):
        policy = FifoPolicy()
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("a", 5)   # recency must not matter
        assert policy.choose_victim(["a", "b"], 6) == "a"


class TestLru:
    def test_evicts_least_recent(self):
        policy = LruPolicy()
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("a", 5)
        assert policy.choose_victim(["a", "b"], 6) == "b"

    def test_eviction_forgets_state(self):
        policy = LruPolicy()
        policy.on_load("a", 0)
        policy.on_evict("a")
        assert "a" not in policy.last_use


class TestLfu:
    def test_evicts_least_frequent(self):
        policy = LfuPolicy()
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("a", 2)
        policy.on_access("a", 3)
        policy.on_access("b", 4)
        assert policy.choose_victim(["a", "b"], 5) == "b"

    def test_tie_broken_by_recency(self):
        policy = LfuPolicy()
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("a", 10)
        policy.on_access("b", 11)
        assert policy.choose_victim(["a", "b"], 12) == "a"


class TestRandom:
    def test_seeded_and_repeatable(self):
        picks = []
        for _ in range(2):
            policy = RandomPolicy(seed=3)
            for page in ("a", "b", "c"):
                policy.on_load(page, 0)
            picks.append([policy.choose_victim(["a", "b", "c"], 1) for _ in range(5)])
        assert picks[0] == picks[1]

    def test_reset_restores_sequence(self):
        policy = RandomPolicy(seed=3)
        for page in ("a", "b", "c"):
            policy.on_load(page, 0)
        first = [policy.choose_victim(["a", "b", "c"], 1) for _ in range(5)]
        policy.reset()
        for page in ("a", "b", "c"):
            policy.on_load(page, 0)
        again = [policy.choose_victim(["a", "b", "c"], 1) for _ in range(5)]
        assert first == again


class TestClock:
    def test_second_chance(self):
        policy = ClockPolicy()
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_access("a", 2)   # a gets its reference bit
        assert policy.choose_victim(["a", "b"], 3) == "b"

    def test_full_sweep_clears_bits(self):
        policy = ClockPolicy()
        for page in ("a", "b"):
            policy.on_load(page, 0)
            policy.on_access(page, 1)
        # Both referenced: the hand clears both, then takes the first.
        assert policy.choose_victim(["a", "b"], 2) == "a"

    def test_hand_advances_cyclically(self):
        policy = ClockPolicy()
        for page in ("a", "b", "c"):
            policy.on_load(page, 0)
        first = policy.choose_victim(["a", "b", "c"], 1)
        policy.on_evict(first)
        second = policy.choose_victim([p for p in ("a", "b", "c") if p != first], 2)
        assert second != first

    def test_eviction_keeps_ring_consistent(self):
        policy = ClockPolicy()
        for page in ("a", "b", "c"):
            policy.on_load(page, 0)
        policy.on_evict("b")
        victim = policy.choose_victim(["a", "c"], 1)
        assert victim in ("a", "c")


class TestAtlasLearning:
    def test_prefers_page_idle_beyond_its_period(self):
        policy = AtlasLearningPolicy(margin=1.0)
        policy.on_load("looper", 0)
        policy.on_load("dead", 0)
        # looper re-used every 10; dead never re-used.
        for t in (10, 20, 30):
            policy.on_access("looper", t)
        assert policy.choose_victim(["looper", "dead"], 31) == "dead"

    def test_all_in_use_chooses_last_needed(self):
        policy = AtlasLearningPolicy(margin=1.0)
        policy.on_load("short", 0)
        policy.on_load("long", 0)
        policy.on_access("short", 5)    # period 5
        policy.on_access("long", 9)     # period 9
        policy.on_access("short", 10)   # period 5 again
        # At t=11: short idle 1 < 10, long idle 2 < 18 — both in use.
        # Predicted next use: short 10+5=15, long 9+9=18 -> evict long.
        assert policy.choose_victim(["short", "long"], 11) == "long"

    def test_learns_period_from_inactivity(self):
        policy = AtlasLearningPolicy()
        policy.on_load("p", 0)
        policy.on_access("p", 7)
        assert policy.period["p"] == 7

    def test_rejects_negative_margin(self):
        with pytest.raises(ValueError):
            AtlasLearningPolicy(margin=-0.5)


class TestM44Classes:
    def test_clean_infrequent_preferred(self):
        policy = M44ClassRandomPolicy(seed=0)
        policy.on_load("hot_dirty", 0)
        policy.on_load("cold_clean", 0)
        for t in range(1, 6):
            policy.on_access("hot_dirty", t, modified=True)
        assert policy.choose_victim(["hot_dirty", "cold_clean"], 10) == "cold_clean"

    def test_dirty_spared_within_frequency_class(self):
        policy = M44ClassRandomPolicy(seed=0)
        policy.on_load("dirty", 0)
        policy.on_load("clean", 0)
        policy.on_access("dirty", 1, modified=True)
        policy.on_access("clean", 2)
        # Same use count: the clean page is the cheaper victim.
        assert policy.choose_victim(["dirty", "clean"], 3) == "clean"

    def test_classes_partition_residents(self):
        policy = M44ClassRandomPolicy()
        for page in ("a", "b", "c", "d"):
            policy.on_load(page, 0)
        policy.on_access("a", 1)
        policy.on_access("a", 2)
        policy.on_access("b", 3, modified=True)
        buckets = policy.classes(["a", "b", "c", "d"])
        assert sorted(sum(buckets, [])) == ["a", "b", "c", "d"]


class TestWorkingSet:
    def test_evicts_outside_window(self):
        policy = WorkingSetPolicy(window=10)
        policy.on_load("old", 0)
        policy.on_load("fresh", 0)
        policy.on_access("fresh", 50)
        assert policy.choose_victim(["old", "fresh"], 55) == "old"

    def test_pressure_falls_back_to_lru(self):
        policy = WorkingSetPolicy(window=100)
        policy.on_load("a", 0)
        policy.on_load("b", 5)
        assert policy.choose_victim(["a", "b"], 10) == "a"
        assert policy.pressure_evictions == 1

    def test_working_set_membership(self):
        policy = WorkingSetPolicy(window=10)
        policy.on_load("a", 0)
        policy.on_load("b", 95)
        assert policy.working_set(["a", "b"], 100) == {"b"}

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            WorkingSetPolicy(window=0)


class TestBeladyOpt:
    def test_evicts_farthest_next_use(self):
        trace = ["a", "b", "c", "a", "b", "d", "a"]
        policy = BeladyOptimalPolicy(trace)
        policy.on_load("a", 0)
        policy.on_load("b", 1)
        policy.on_load("c", 2)
        # Cursor at 3: next uses a->3, b->4, c->never.
        assert policy.choose_victim(["a", "b", "c"], 3) == "c"

    def test_trace_mismatch_detected(self):
        policy = BeladyOptimalPolicy(["a", "b"])
        with pytest.raises(ValueError):
            policy.on_load("b", 0)

    def test_next_use_infinite_for_unseen(self):
        policy = BeladyOptimalPolicy(["a"])
        assert policy.next_use("zzz") == float("inf")

    def test_opt_is_lower_envelope(self):
        """MIN beats every realizable policy on every trace and size."""
        from repro.workload import phased_trace
        trace = phased_trace(pages=20, length=600, working_set=5, seed=42)
        for frames in (3, 5, 8):
            opt = simulate_trace(trace, frames, BeladyOptimalPolicy(trace))
            for name in ("fifo", "lru", "clock", "random", "lfu", "atlas", "m44"):
                other = simulate_trace(trace, frames, make_policy(name))
                assert opt.faults <= other.faults, (name, frames)


class TestSimulateTrace:
    def test_cold_faults_counted(self):
        result = simulate_trace([0, 1, 2, 0, 1], 3, LruPolicy())
        assert result.faults == 3
        assert result.cold_faults == 3
        assert result.evictions == 0

    def test_eviction_on_overflow(self):
        result = simulate_trace([0, 1, 2], 2, LruPolicy())
        assert result.faults == 3
        assert result.evictions == 1

    def test_fault_rate(self):
        result = simulate_trace([0, 0, 0, 0], 1, LruPolicy())
        assert result.fault_rate == 0.25

    def test_fault_positions_recorded(self):
        result = simulate_trace([0, 0, 1], 2, LruPolicy(), record_positions=True)
        assert result.fault_positions == [0, 2]

    def test_writes_drive_modified_classes(self):
        trace = [0, 1, 0, 1, 2]
        writes = [True, False, True, False, False]
        policy = M44ClassRandomPolicy(seed=1)
        result = simulate_trace(trace, 2, policy, writes=writes)
        assert result.faults == 3   # page 1 (clean) evicted before page 0

    def test_writes_must_align(self):
        with pytest.raises(ValueError):
            simulate_trace([0, 1], 2, LruPolicy(), writes=[True])

    def test_more_frames_never_hurt_lru(self):
        """LRU is a stack algorithm: no Belady anomaly."""
        from repro.workload import phased_trace
        trace = phased_trace(pages=15, length=500, working_set=4, seed=9)
        faults = [
            simulate_trace(trace, frames, LruPolicy()).faults
            for frames in range(2, 10)
        ]
        assert all(a >= b for a, b in zip(faults, faults[1:]))

    def test_rejects_bad_frames(self):
        with pytest.raises(ValueError):
            simulate_trace([0], 0, LruPolicy())
