"""Units for the serving tier's bookkeeping primitives.

The RefCounter (zero-is-free, underflow is loud) and the LRUEvictor
(freed-but-cached frames reclaimed least-recently-freed first) are the
two structures the shared pool's conservation ledger is built from —
their edge behavior is the serving contract's fine print
(``docs/SERVING.md``).
"""

import pytest

from repro.serve import LRUEvictor, RefCounter


class TestRefCounter:
    def test_absent_key_counts_zero(self):
        refs = RefCounter()
        assert refs.get("x") == 0
        assert "x" not in refs
        assert len(refs) == 0

    def test_incr_decr_round_trip(self):
        refs = RefCounter()
        assert refs.incr("a") == 1
        assert refs.incr("a") == 2
        assert refs.decr("a") == 1
        assert refs.decr("a") == 0
        assert refs.get("a") == 0

    def test_zero_deletes_the_key(self):
        refs = RefCounter()
        refs.incr("a")
        refs.decr("a")
        assert "a" not in refs
        assert list(refs.live_keys()) == []

    def test_underflow_raises(self):
        refs = RefCounter()
        with pytest.raises(ValueError, match="refcount underflow"):
            refs.decr("never")

    def test_double_release_raises(self):
        refs = RefCounter()
        refs.incr("a")
        refs.decr("a")
        with pytest.raises(ValueError, match="refcount underflow"):
            refs.decr("a")

    def test_live_count_and_total_differ(self):
        refs = RefCounter()
        refs.incr("a")
        refs.incr("a")
        refs.incr("b")
        assert refs.live_count == 2
        assert refs.total == 3

    def test_tuple_keys(self):
        refs = RefCounter()
        refs.incr(("shared", 3))
        assert refs.get(("shared", 3)) == 1
        assert refs.get(("shared", 4)) == 0


class TestLRUEvictor:
    def test_evicts_least_recently_freed_first(self):
        evictor = LRUEvictor()
        evictor.add("a", frame=0, freed_at=1)
        evictor.add("b", frame=1, freed_at=2)
        evictor.add("c", frame=2, freed_at=3)
        assert evictor.evict() == ("a", 0)
        assert evictor.evict() == ("b", 1)
        assert evictor.evict() == ("c", 2)

    def test_revival_removes_from_order(self):
        evictor = LRUEvictor()
        evictor.add("a", frame=0, freed_at=1)
        evictor.add("b", frame=1, freed_at=2)
        assert evictor.remove("a") == 0
        assert evictor.evict() == ("b", 1)

    def test_refreed_content_moves_to_the_back(self):
        evictor = LRUEvictor()
        evictor.add("a", frame=0, freed_at=1)
        evictor.add("b", frame=1, freed_at=2)
        evictor.remove("a")
        evictor.add("a", frame=0, freed_at=3)   # freed again, later
        assert evictor.evict() == ("b", 1)

    def test_double_add_raises(self):
        evictor = LRUEvictor()
        evictor.add("a", frame=0, freed_at=1)
        with pytest.raises(ValueError, match="already cached"):
            evictor.add("a", frame=5, freed_at=2)

    def test_remove_missing_raises(self):
        with pytest.raises(KeyError, match="not cached"):
            LRUEvictor().remove("ghost")

    def test_evict_empty_raises(self):
        with pytest.raises(ValueError, match="nothing to evict"):
            LRUEvictor().evict()

    def test_inspection_surface(self):
        evictor = LRUEvictor()
        evictor.add("a", frame=4, freed_at=9)
        assert "a" in evictor
        assert len(evictor) == 1
        assert evictor.freed_at("a") == 9
        assert evictor.frames() == [4]
        assert evictor.keys() == ["a"]
