"""Tests for interactive programs (think times, response times)."""

import pytest

from repro.paging import LruPolicy
from repro.sim import (
    MultiprogrammingSimulator,
    ProgramSpec,
    RoundRobinScheduler,
    Think,
)


def interactive_trace(interactions=3, burst=20, think=500):
    """burst references on 2 pages, then think, repeated."""
    trace = []
    for index in range(interactions):
        trace.extend([0, 1] * (burst // 2))
        if index < interactions - 1:
            trace.append(Think(think))
    return trace


def spec(name, trace, frames=4, arrival=0):
    return ProgramSpec(name, trace, frames, LruPolicy(), arrival=arrival)


def run(specs, fetch_time=100, quantum=50, **kwargs):
    return MultiprogrammingSimulator(
        specs, RoundRobinScheduler(quantum), fetch_time=fetch_time, **kwargs
    ).run()


class TestThinkSentinel:
    def test_validation(self):
        with pytest.raises(ValueError):
            Think(0)

    def test_think_time_not_compute_or_wait(self):
        summary = run([spec("u", interactive_trace(interactions=2))])
        result = summary.programs[0]
        assert result.think_cycles == 500
        assert result.compute_cycles == 40   # 2 bursts of 20
        assert result.wait_cycles < 500 + result.compute_cycles

    def test_references_exclude_markers(self):
        summary = run([spec("u", interactive_trace(interactions=3))])
        assert summary.programs[0].references == 60

    def test_storage_stays_resident_while_thinking(self):
        """The reason coexistence matters: a thinking user's program
        still occupies working storage."""
        summary = run([spec("u", interactive_trace(interactions=2))])
        result = summary.programs[0]
        # Occupancy continued through the 500 thinking cycles: total
        # space-time well above the compute-only span.
        assert result.space_time.total > 500 * 2 * 512

    def test_completion_after_all_interactions(self):
        summary = run([spec("u", interactive_trace(interactions=2,
                                                   think=1_000))])
        assert summary.programs[0].completion_time > 1_000


class TestResponseTimes:
    def test_one_response_per_interaction(self):
        summary = run([spec("u", interactive_trace(interactions=3))])
        assert len(summary.programs[0].response_times) == 3

    def test_solo_response_time_is_burst_cost(self):
        summary = run([spec("u", interactive_trace(interactions=2,
                                                   burst=20))])
        result = summary.programs[0]
        first = result.response_times[0]
        # 20 references + 2 cold faults at 100 cycles.
        assert first == 20 + 2 * 100
        # The second interaction refinds its pages resident: faster.
        assert result.response_times[1] <= first

    def test_mean_response_time(self):
        summary = run([spec("u", interactive_trace(interactions=2))])
        result = summary.programs[0]
        assert result.mean_response_time == pytest.approx(
            sum(result.response_times) / 2
        )

    def test_contention_stretches_response_times(self):
        """More coexisting users, slower responses — the time-sharing
        trade the paper's motivation section describes."""
        def mean_response(users):
            specs = [
                spec(f"u{i}", interactive_trace(interactions=4, burst=40),
                     frames=2)
                for i in range(users)
            ]
            summary = run(specs, fetch_time=400, quantum=10)
            return sum(p.mean_response_time for p in summary.programs) / users

        assert mean_response(4) > mean_response(1)

    def test_thinking_program_frees_the_processor(self):
        """While one user thinks, another computes: think time should
        not show up as processor idleness when work exists."""
        long_think = [0, 1, Think(10_000), 0, 1]
        busy = [2, 3] * 2_000
        summary = run([spec("thinker", long_think), spec("worker", busy)])
        # The worker's 4000 references filled most of the thinker's gap.
        assert summary.cpu_busy >= 4_000

    def test_no_response_recorded_for_empty_interaction(self):
        trace = [0, 1, Think(100)]   # ends thinking: one interaction
        summary = run([spec("u", trace)])
        assert len(summary.programs[0].response_times) == 1
