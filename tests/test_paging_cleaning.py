"""Tests for the page cleaner (deferred write-back)."""

import pytest

from repro.addressing import PageTable
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.paging import DemandPager, FrameTable, LruPolicy, PageCleaner


def make_pager(frames=4, latency=1000):
    clock = Clock()
    table = PageTable(page_size=512, pages=32)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=latency, transfer_rate=1.0),
        clock=clock,
    )
    pager = DemandPager(table, FrameTable(frames), backing, LruPolicy(), clock)
    return pager, clock


class TestDirtyTracking:
    def test_dirty_pages_listed(self):
        pager, _ = make_pager()
        pager.access_page(0, write=True)
        pager.access_page(1)
        assert PageCleaner(pager).dirty_pages() == [0]

    def test_clean_clears_modified_bits(self):
        pager, _ = make_pager()
        pager.access_page(0, write=True)
        cleaner = PageCleaner(pager)
        assert cleaner.clean() == 1
        assert not pager.page_table.entry(0).modified
        assert cleaner.dirty_pages() == []

    def test_clean_writes_image_to_backing(self):
        pager, _ = make_pager()
        pager.access_page(0, write=True)
        PageCleaner(pager).clean()
        assert ("page", 0) in pager.backing

    def test_max_pages_respected(self):
        pager, _ = make_pager()
        for page in range(3):
            pager.access_page(page, write=True)
        cleaner = PageCleaner(pager)
        assert cleaner.clean(max_pages=2) == 2
        assert len(cleaner.dirty_pages()) == 1

    def test_negative_budget_rejected(self):
        pager, _ = make_pager()
        with pytest.raises(ValueError):
            PageCleaner(pager).clean(max_pages=-1)


class TestOverlap:
    def test_cleaning_costs_no_program_time(self):
        pager, clock = make_pager()
        pager.access_page(0, write=True)
        before = clock.now
        PageCleaner(pager).clean()
        assert clock.now == before

    def test_cleaned_page_evicts_without_writeback(self):
        pager, _ = make_pager(frames=1)
        pager.access_page(0, write=True)
        PageCleaner(pager).clean()
        pager.access_page(1)   # evicts the cleaned page 0
        assert pager.stats.writebacks == 0

    def test_redirtied_page_writes_back_again(self):
        pager, _ = make_pager(frames=1)
        pager.access_page(0, write=True)
        PageCleaner(pager).clean()
        pager.access_page(0, write=True)   # dirty again
        pager.access_page(1)
        assert pager.stats.writebacks == 1

    def test_cleaning_reduces_blocked_time(self):
        """The point of the strategy: eviction leaves the critical path."""
        def run(clean_between_phases: bool) -> int:
            pager, clock = make_pager(frames=4, latency=1000)
            cleaner = PageCleaner(pager)
            for phase in range(6):
                base = phase * 4
                for step in range(40):
                    pager.access_page(base + step % 4, write=True)
                if clean_between_phases:
                    cleaner.clean()
            return pager.stats.writeback_cycles

        assert run(True) == 0
        assert run(False) > 0

    def test_counters(self):
        pager, _ = make_pager()
        pager.access_page(0, write=True)
        pager.access_page(1, write=True)
        cleaner = PageCleaner(pager)
        cleaner.clean()
        assert cleaner.pages_cleaned == 2
        assert cleaner.words_cleaned == 2 * 512
        assert cleaner.sweeps == 1

    def test_policy_dirty_view_synced(self):
        pager, _ = make_pager()
        pager.access_page(0, write=True)
        PageCleaner(pager).clean()
        assert pager.policy.modified[0] is False
