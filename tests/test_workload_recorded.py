"""Tests for trace persistence and the explicit segment flush."""

import pytest

from repro.addressing import SegmentTable
from repro.alloc import FreeListAllocator
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.paging import LruPolicy, simulate_trace
from repro.segmentation import SegmentManager
from repro.workload import load_trace, phased_trace, save_trace


class TestTracePersistence:
    def test_roundtrip(self, tmp_path):
        trace = phased_trace(pages=10, length=200, working_set=3, seed=4)
        path = tmp_path / "trace.txt"
        count = save_trace(path, trace)
        assert count == 200
        assert load_trace(path) == trace

    def test_header_is_comment(self, tmp_path):
        path = tmp_path / "trace.txt"
        save_trace(path, [1, 2], header="recorded 1967\nmachine: M44")
        text = path.read_text()
        assert text.startswith("# recorded 1967\n# machine: M44\n")
        assert load_trace(path) == [1, 2]

    def test_hand_written_file_with_comments(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# a comment\n3\n 4  # trailing comment\n\n5\n")
        assert load_trace(path) == [3, 4, 5]

    def test_bad_content_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("3\nnot-a-page\n")
        with pytest.raises(ValueError) as exc_info:
            load_trace(path)
        assert ":2:" in str(exc_info.value)

    def test_negative_page_rejected_on_load(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("-1\n")
        with pytest.raises(ValueError):
            load_trace(path)

    def test_bad_entries_rejected_on_save(self, tmp_path):
        path = tmp_path / "trace.txt"
        with pytest.raises(TypeError):
            save_trace(path, ["page-one"])
        with pytest.raises(ValueError):
            save_trace(path, [-1])

    def test_loaded_trace_drives_simulation(self, tmp_path):
        trace = phased_trace(pages=10, length=300, working_set=3, seed=8)
        path = tmp_path / "trace.txt"
        save_trace(path, trace)
        original = simulate_trace(trace, 4, LruPolicy()).faults
        replayed = simulate_trace(load_trace(path), 4, LruPolicy()).faults
        assert original == replayed


def make_manager():
    clock = Clock()
    return SegmentManager(
        table=SegmentTable(),
        allocator=FreeListAllocator(1_000, policy="best_fit"),
        backing=BackingStore(
            StorageLevel("drum", 10**6, access_time=100), clock=clock
        ),
        policy=LruPolicy(),
        clock=clock,
    )


class TestExplicitFlush:
    def test_flush_writes_dirty_segment(self):
        manager = make_manager()
        manager.create("s", 100)
        manager.access("s", 0, write=True)
        assert manager.flush("s")
        assert ("segment", "s") in manager.backing
        assert not manager.table.descriptor("s").modified

    def test_flushed_segment_stays_resident(self):
        manager = make_manager()
        manager.create("s", 100)
        manager.access("s", 0, write=True)
        manager.flush("s")
        assert "s" in manager.resident_segments()

    def test_clean_segment_with_copy_not_rewritten(self):
        manager = make_manager()
        manager.create("s", 100)
        manager.access("s", 0, write=True)
        manager.flush("s")
        assert not manager.flush("s")   # nothing new to store

    def test_nonresident_flush_is_noop(self):
        manager = make_manager()
        manager.create("s", 100)
        assert not manager.flush("s")

    def test_flushed_segment_displaces_without_writeback(self):
        manager = make_manager()
        manager.create("a", 600)
        manager.create("b", 600)
        manager.access("a", 0, write=True)
        manager.flush("a")
        writebacks_after_flush = manager.stats.writebacks
        manager.access("b", 0)   # displaces the (now clean) a
        assert manager.stats.writebacks == writebacks_after_flush
