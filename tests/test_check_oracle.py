"""The differential oracle: clean sweeps, domain selection, report shape."""

import pytest

from repro.check.oracle import (
    OracleFinding,
    OracleReport,
    checked_replay_oracle,
    fault_recovery_oracle,
    placement_oracle,
    replacement_oracle,
    run_oracle,
)


class TestReport:
    def test_record_and_flag(self):
        report = OracleReport()
        report.record("demo")
        report.record("demo")
        assert report.ok
        report.flag("demo", 3, "something diverged")
        assert not report.ok
        assert report.domains["demo"] == 2
        assert report.findings == [OracleFinding("demo", 3, "something diverged")]

    def test_merge_combines_counts_and_findings(self):
        a, b = OracleReport(), OracleReport()
        a.record("x")
        b.record("x")
        b.flag("y", 0, "boom")
        a.merge(b)
        assert a.domains["x"] == 2
        assert len(a.findings) == 1 and not a.ok


class TestDomains:
    def test_replacement_oracle_clean(self):
        report = replacement_oracle(range(3))
        assert report.ok and report.checks > 0

    def test_placement_oracle_clean(self):
        report = placement_oracle(range(2))
        assert report.ok and report.checks > 0

    def test_checked_replay_oracle_clean(self):
        report = checked_replay_oracle(range(2), length=300)
        assert report.ok and report.checks > 0

    def test_fault_recovery_oracle_clean_and_injecting(self):
        report = fault_recovery_oracle(range(2), length=300)
        assert report.ok and report.checks == 2


class TestRunOracle:
    def test_quick_sweep_is_clean(self):
        report = run_oracle(quick=True, seeds=range(2))
        assert report.ok
        assert set(report.domains) == {
            "replacement", "placement", "checked_replay", "fault_recovery",
        }

    def test_domain_restriction(self):
        report = run_oracle(seeds=range(2), domains=("replacement",))
        assert set(report.domains) == {"replacement"}

    def test_unknown_domain_rejected(self):
        with pytest.raises(ValueError):
            run_oracle(seeds=range(1), domains=("nonsense",))
