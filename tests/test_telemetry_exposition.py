"""OpenMetrics exposition: rendering, name mapping, strict validation."""

import pytest

from repro.observe.telemetry.exposition import (
    METRIC_PREFIX,
    metric_name,
    to_openmetrics,
    validate_openmetrics,
)
from repro.observe.telemetry.registry import TelemetryRegistry


def filled_registry():
    registry = TelemetryRegistry()
    registry.counter("replay.faults").increment(42)
    registry.counter("serve.cow_breaks").increment(3)
    registry.gauge("pool.resident").set(12)
    registry.histogram("replay.fault_gap", unit="refs").observe_many(
        [0, 1, 3, 3, 900]
    )
    return registry


class TestMetricName:
    def test_dots_and_dashes_become_underscores(self):
        assert metric_name("serve.acquire_seconds") == \
            METRIC_PREFIX + "serve_acquire_seconds"
        assert metric_name("a-b.c") == METRIC_PREFIX + "a_b_c"

    def test_illegal_names_rejected(self):
        with pytest.raises(ValueError, match="legal metric name"):
            metric_name("bad name")


class TestRendering:
    def test_ends_with_eof(self):
        text = to_openmetrics(filled_registry().snapshot())
        assert text.endswith("# EOF\n")

    def test_counters_expose_total_samples(self):
        text = to_openmetrics(filled_registry().snapshot())
        assert "# TYPE repro_replay_faults counter" in text
        assert "repro_replay_faults_total 42" in text

    def test_gauges_expose_bare_samples(self):
        text = to_openmetrics(filled_registry().snapshot())
        assert "# TYPE repro_pool_resident gauge" in text
        assert "repro_pool_resident 12" in text

    def test_histograms_expose_cumulative_buckets(self):
        families = validate_openmetrics(
            to_openmetrics(filled_registry().snapshot())
        )
        family = families["repro_replay_fault_gap"]
        assert family["type"] == "histogram"
        buckets = [value for name, _, value in family["samples"]
                   if name.endswith("_bucket")]
        assert buckets == sorted(buckets)
        assert buckets[-1] == 5            # +Inf == count
        count = [value for name, _, value in family["samples"]
                 if name.endswith("_count")]
        assert count == [5.0]

    def test_empty_registry_is_valid(self):
        text = to_openmetrics(TelemetryRegistry().snapshot())
        assert validate_openmetrics(text) == {}

    def test_round_trip_is_always_valid(self):
        validate_openmetrics(to_openmetrics(filled_registry().snapshot()))


class TestValidation:
    def test_missing_eof_rejected(self):
        with pytest.raises(ValueError, match="EOF"):
            validate_openmetrics("# TYPE x counter\nx_total 1\n")

    def test_malformed_type_line_rejected(self):
        with pytest.raises(ValueError, match="malformed TYPE"):
            validate_openmetrics("# TYPE x banana\nx 1\n# EOF\n")

    def test_sample_without_metadata_rejected(self):
        with pytest.raises(ValueError, match="no TYPE metadata"):
            validate_openmetrics("orphan 1\n# EOF\n")

    def test_non_numeric_sample_rejected(self):
        with pytest.raises(ValueError, match="non-numeric"):
            validate_openmetrics(
                "# TYPE x gauge\nx banana\n# EOF\n"
            )

    def test_counter_without_suffix_rejected(self):
        with pytest.raises(ValueError, match="lacks a suffix"):
            validate_openmetrics("# TYPE x counter\nx 1\n# EOF\n")

    def test_negative_counter_rejected(self):
        with pytest.raises(ValueError, match="negative counter"):
            validate_openmetrics("# TYPE x counter\nx_total -1\n# EOF\n")

    def test_histogram_without_buckets_rejected(self):
        with pytest.raises(ValueError, match="no _bucket"):
            validate_openmetrics(
                "# TYPE x histogram\nx_count 0\n# EOF\n"
            )

    def test_non_cumulative_buckets_rejected(self):
        text = ("# TYPE x histogram\n"
                'x_bucket{le="1"} 5\n'
                'x_bucket{le="+Inf"} 3\n'
                "# EOF\n")
        with pytest.raises(ValueError, match="cumulative"):
            validate_openmetrics(text)

    def test_buckets_must_ascend_to_inf(self):
        text = ("# TYPE x histogram\n"
                'x_bucket{le="2"} 1\n'
                'x_bucket{le="1"} 2\n'
                "# EOF\n")
        with pytest.raises(ValueError, match="ascend"):
            validate_openmetrics(text)

    def test_count_must_agree_with_inf_bucket(self):
        text = ("# TYPE x histogram\n"
                'x_bucket{le="+Inf"} 3\n'
                "x_count 4\n"
                "# EOF\n")
        with pytest.raises(ValueError, match="disagrees"):
            validate_openmetrics(text)

    def test_bucket_without_le_label_rejected(self):
        text = ("# TYPE x histogram\n"
                'x_bucket{foo="1"} 3\n'
                "# EOF\n")
        with pytest.raises(ValueError, match="le label"):
            validate_openmetrics(text)

    def test_type_without_samples_rejected(self):
        with pytest.raises(ValueError, match="no samples"):
            validate_openmetrics("# TYPE x counter\n# EOF\n")
