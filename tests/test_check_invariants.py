"""The invariant engine: healthy subjects pass, seeded corruption is caught."""

import pytest

from repro.alloc import FreeListAllocator
from repro.alloc.buddy import BuddyAllocator
from repro.check import (
    CheckedSystem,
    InvariantSink,
    InvariantSuite,
    check_invariants,
    discover_subjects,
)
from repro.check.oracle import _build_pager, _drive
from repro.errors import InvariantViolation
from repro.paging.frame import FrameTable
from repro.sim.spacetime import SpaceTimeAccount


def healthy_allocator():
    allocator = FreeListAllocator(256, policy="best_fit")
    keep = allocator.allocate(64)
    gone = allocator.allocate(32)
    allocator.allocate(16)
    allocator.free(gone)
    return allocator, keep


class TestAllocatorInvariants:
    def test_healthy_allocator_passes(self):
        allocator, _ = healthy_allocator()
        assert check_invariants(allocator) == []

    def test_word_conservation_catches_duplicated_hole(self):
        allocator, keep = healthy_allocator()
        allocator._holes.insert(0, (keep.address, keep.size))
        with pytest.raises(InvariantViolation) as caught:
            check_invariants(allocator)
        assert caught.value.invariant == "word_conservation"

    def test_extent_overlap_detected(self):
        allocator, keep = healthy_allocator()
        # Shift an existing hole to overlap the live block without
        # changing the total free word count (conservation still holds).
        address, size = allocator._holes[0]
        allocator._holes[0] = (keep.address + 1, size)
        allocator._holes.sort()
        suite = InvariantSuite()
        violations = suite.check(allocator, raise_on_violation=False)
        assert any(v.invariant == "extent_non_overlap" for v in violations)

    def test_uncoalesced_holes_detected(self):
        allocator, _ = healthy_allocator()
        address, size = allocator._holes[-1]
        assert size >= 2
        allocator._holes[-1] = (address, 1)
        allocator._holes.append((address + 1, size - 1))
        suite = InvariantSuite()
        violations = suite.check(allocator, raise_on_violation=False)
        assert any(v.invariant == "hole_maximality" for v in violations)

    def test_self_check_folds_in_buddy(self):
        buddy = BuddyAllocator(256)
        block = buddy.allocate(30)
        assert check_invariants(buddy) == []
        buddy.free(block)
        assert check_invariants(buddy) == []


class TestPagerInvariants:
    def test_healthy_pager_passes(self):
        pager, _, trace = _build_pager(seed=3, length=400)
        _drive(pager, trace)
        assert check_invariants(pager) == []

    def test_frame_table_corruption_detected(self):
        pager, _, trace = _build_pager(seed=3, length=400)
        _drive(pager, trace)
        frame = next(iter(pager.frames._frame_of.values()))
        pager.frames._free.append(frame)  # frame both owned and free
        with pytest.raises(InvariantViolation) as caught:
            check_invariants(pager)
        assert caught.value.invariant == "page_frame_bijection"

    def test_stale_tlb_entry_detected(self):
        pager, _, trace = _build_pager(seed=5, length=400)
        _drive(pager, trace)
        tlb = pager.page_table.tlb
        resident = pager.frames.resident_pages()
        page = resident[0]
        wrong = pager.frames.frame_of(page) + 1
        tlb._entries[page] = wrong
        suite = InvariantSuite()
        violations = suite.check(pager, raise_on_violation=False)
        assert any(v.invariant == "tlb_coherence" for v in violations)


class TestFrameAndAccountInvariants:
    def test_frame_table_self_check(self):
        table = FrameTable(4)
        table.acquire("a")
        table.acquire("b")
        assert check_invariants(table) == []
        table._free.append(table.frame_of("a"))
        with pytest.raises(InvariantViolation) as caught:
            check_invariants(table)
        assert caught.value.invariant == "frame_accounting"

    def test_spacetime_monotonicity_uses_memo(self):
        account = SpaceTimeAccount()
        account.accumulate(100, 10, waiting=False)
        suite = InvariantSuite()
        assert suite.check(account) == []
        account.accumulate(100, 5, waiting=True)
        assert suite.check(account) == []
        account._active -= 50  # regress the integral
        with pytest.raises(InvariantViolation) as caught:
            suite.check(account)
        assert caught.value.invariant == "spacetime_monotonicity"


class TestSuiteMechanics:
    def test_collect_mode_accumulates_instead_of_raising(self):
        allocator, keep = healthy_allocator()
        allocator._holes.insert(0, (keep.address, keep.size))
        suite = InvariantSuite()
        violations = suite.check(allocator, raise_on_violation=False)
        assert violations and not suite.ok
        assert suite.violations == violations

    def test_sink_samples_every_n_events(self):
        allocator, _ = healthy_allocator()
        sink = InvariantSink([allocator], every=4)
        before = sink.suite.checks_run
        for _ in range(8):
            sink.accept(object())
        assert sink.seen == 8
        assert sink.suite.checks_run > before
        sink.close()

    def test_sink_raises_on_corruption(self):
        allocator, keep = healthy_allocator()
        sink = InvariantSink([allocator], every=1)
        allocator._holes.insert(0, (keep.address, keep.size))
        with pytest.raises(InvariantViolation):
            sink.accept(object())

    def test_check_invariants_accepts_sequences(self):
        a, _ = healthy_allocator()
        b = FrameTable(2)
        assert check_invariants([a, b]) == []


class TestCheckedSystem:
    def workload(self, system):
        for i in range(30):
            system.create(f"s{i}", 48 + 32 * (i % 5))
            system.access(f"s{i}", 1)
        for i in range(0, 30, 2):
            system.destroy(f"s{i}")
        return system.stats()

    def test_checked_recommended_system_runs_clean(self):
        from repro import recommended_system

        system = recommended_system(checked=True)
        assert isinstance(system, CheckedSystem)
        stats = self.workload(system)
        assert stats.accesses == 30
        assert system.suite.checks_run > 0
        assert system.suite.ok

    def test_discovery_finds_components(self):
        from repro import recommended_system

        system = recommended_system(checked=True)
        names = {type(s).__name__ for s in discover_subjects(system._system)}
        assert "FreeListAllocator" in names
        assert "FrameTable" in names

    def test_checked_system_raises_on_planted_corruption(self):
        from repro import recommended_system

        system = recommended_system(checked=True)
        self.workload(system)
        allocator = next(
            s for s in discover_subjects(system._system)
            if isinstance(s, FreeListAllocator)
        )
        block = allocator.allocations()[0]
        allocator._holes.insert(0, (block.address, block.size))
        allocator._holes.sort()
        with pytest.raises(InvariantViolation):
            system.stats()

    def test_builder_returns_bare_system_by_default(self):
        from repro import recommended_system

        system = recommended_system()
        assert not isinstance(system, CheckedSystem)


class TestCheckedSimulateTrace:
    def test_checked_replay_matches_unchecked(self):
        from repro.paging.replacement import make_policy
        from repro.paging.simulate import simulate_trace
        from repro.workload.reference import phased_trace

        trace = phased_trace(pages=40, length=1500, working_set=6, seed=11)
        checked = simulate_trace(trace, 10, make_policy("lru"), checked=True)
        plain = simulate_trace(trace, 10, make_policy("lru"))
        assert (checked.faults, checked.evictions, checked.cold_faults) == (
            plain.faults, plain.evictions, plain.cold_faults
        )


class TestCheckedMultiprogramming:
    def build(self, shared, checked=True):
        import random

        from repro.paging.replacement import make_policy
        from repro.sim.multiprogramming import (
            MultiprogrammingSimulator,
            ProgramSpec,
        )
        from repro.sim.scheduler import RoundRobinScheduler

        rng = random.Random(7)
        specs = [
            ProgramSpec(
                name=name,
                trace=[rng.randrange(16) for _ in range(500)],
                frames=5,
                policy=make_policy("lru"),
            )
            for name in ("a", "b")
        ]
        kwargs = {}
        if shared:
            kwargs = dict(shared_frames=8, shared_policy=make_policy("lru"))
        return MultiprogrammingSimulator(
            specs, RoundRobinScheduler(quantum=40), fetch_time=200,
            checked=checked, **kwargs,
        )

    def test_partitioned_checked_run_matches_unchecked(self):
        checked = self.build(shared=False).run()
        plain = self.build(shared=False, checked=False).run()
        assert checked.makespan == plain.makespan
        assert checked.cpu_busy == plain.cpu_busy

    def test_shared_pool_checked_run(self):
        sim = self.build(shared=True)
        sim.run()
        assert sim._suite.checks_run > 0

    def test_shared_pool_ledger_violation_detected(self):
        sim = self.build(shared=True)
        sim.run()
        program = next(iter(sim._programs.values()))
        program.external_resident = (program.external_resident or 0) + 1
        with pytest.raises(InvariantViolation) as caught:
            sim._check()
        assert caught.value.invariant == "pool_residency_ledger"
