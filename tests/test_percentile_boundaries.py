"""Nearest-rank percentile at its rank boundaries (q=0, q=100)."""

import pytest

from repro.observe.analysis.intervals import percentile


class TestBoundaryRanks:
    def test_q0_is_the_minimum(self):
        assert percentile([3, 7, 9], 0) == 3
        assert percentile([5], 0) == 5

    def test_q100_is_the_maximum(self):
        assert percentile([3, 7, 9], 100) == 9
        assert percentile([5], 100) == 5

    def test_q100_never_overruns_the_sequence(self):
        for n in range(1, 12):
            values = list(range(n))
            assert percentile(values, 100) == values[-1]

    def test_q0_never_underruns_the_sequence(self):
        for n in range(1, 12):
            values = list(range(n))
            assert percentile(values, 0) == values[0]

    def test_fractional_ranks_near_the_edges(self):
        values = list(range(100))
        assert percentile(values, 0.5) == 0
        assert percentile(values, 99.5) == 99

    def test_median_is_unchanged(self):
        assert percentile([1, 2, 3, 4], 50) == 2
        assert percentile([1, 2, 3], 50) == 2


class TestRejection:
    def test_out_of_range_rank_rejected(self):
        with pytest.raises(ValueError, match="0..100"):
            percentile([1], -1)
        with pytest.raises(ValueError, match="0..100"):
            percentile([1], 100.1)

    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError, match="empty"):
            percentile([], 50)
