"""Tests for the ACSI-MATIC description-driven segment manager."""

import pytest

from repro.addressing import SegmentTable
from repro.advice import (
    DescribedSegmentManager,
    ProgramDescription,
    medium_router,
)
from repro.alloc import FreeListAllocator
from repro.clock import Clock
from repro.memory import BackingStore, MultiLevelBackingStore, StorageLevel, core_drum_disk
from repro.paging import LruPolicy


def make_manager(description, capacity=1000, multilevel=False):
    clock = Clock()
    if multilevel:
        backing = MultiLevelBackingStore(
            core_drum_disk(), clock=clock,
            medium_of=medium_router(description),
        )
    else:
        backing = BackingStore(
            StorageLevel("drum", 10**6, access_time=100), clock=clock
        )
    manager = DescribedSegmentManager(
        SegmentTable(),
        FreeListAllocator(capacity, policy="best_fit"),
        backing,
        LruPolicy(),
        clock,
        description=description,
    )
    return manager


class TestOverlayRules:
    def _loaded(self, description, capacity=300):
        manager = make_manager(description, capacity=capacity)
        for name in ("a", "b"):
            manager.create(name, 150)
            manager.access(name, 0)
        manager.create("incoming", 150)
        return manager

    def test_forbidden_victim_spared(self):
        description = ProgramDescription("job")
        description.assign_group("a", "protected")
        description.assign_group("b", "expendable")
        description.assign_group("incoming", "new")
        description.forbid_overlay("new", "protected")
        manager = self._loaded(description)
        manager.access("incoming", 0)   # LRU would have chosen a
        assert "a" in manager.resident_segments()
        assert "b" not in manager.resident_segments()
        assert manager.overlay_rule_filtered >= 1

    def test_rules_waived_when_nothing_allowed(self):
        """Advisory rules must never wedge allocation."""
        description = ProgramDescription("job")
        for name in ("a", "b"):
            description.assign_group(name, "protected")
        description.assign_group("incoming", "new")
        description.forbid_overlay("new", "protected")
        manager = self._loaded(description)
        manager.access("incoming", 0)   # succeeds despite the rules
        assert "incoming" in manager.resident_segments()
        assert manager.overlay_rule_waived >= 1

    def test_ungrouped_segments_always_eligible(self):
        description = ProgramDescription("job")
        description.assign_group("incoming", "new")
        manager = self._loaded(description)
        manager.access("incoming", 0)
        assert "incoming" in manager.resident_segments()
        assert manager.overlay_rule_waived == 0

    def test_dynamic_rule_revision(self):
        """Descriptions 'could be varied dynamically'."""
        description = ProgramDescription("job")
        description.assign_group("a", "g1")
        description.assign_group("incoming", "new")
        description.forbid_overlay("new", "g1")
        manager = self._loaded(description)
        description.permit_overlay("new", "g1")   # revised at run time
        manager.access("incoming", 0)
        assert "incoming" in manager.resident_segments()


class TestMediumPlacement:
    def test_displaced_segment_lands_on_preferred_medium(self):
        description = ProgramDescription("job")
        description.set_medium("cold", "disk")
        manager = make_manager(description, capacity=300, multilevel=True)
        manager.create("cold", 150)
        manager.create("other", 150)
        manager.create("incoming", 150)
        manager.access("cold", 0)
        manager.access("other", 0)
        manager.access("incoming", 0)   # displaces 'cold' (LRU)
        assert manager.backing.level_of(("segment", "cold")) == "disk"

    def test_unstated_medium_uses_nearest(self):
        description = ProgramDescription("job")
        manager = make_manager(description, capacity=300, multilevel=True)
        manager.create("a", 150)
        manager.create("b", 150)
        manager.create("c", 150)
        for name in ("a", "b", "c"):
            manager.access(name, 0)
        assert manager.backing.level_of(("segment", "a")) == "drum"

    def test_medium_router_unwraps_keys(self):
        description = ProgramDescription("job")
        description.set_medium("seg", "disk")
        router = medium_router(description)
        assert router(("segment", "seg")) == "disk"
        assert router("seg") == "disk"
        assert router(("segment", "other")) is None

    def test_medium_router_default(self):
        description = ProgramDescription("job")
        router = medium_router(description, default="drum")
        assert router("anything") == "drum"


class TestInheritedBehaviour:
    def test_acts_as_a_segment_manager(self):
        description = ProgramDescription("job")
        manager = make_manager(description)
        manager.create("s", 100)
        address = manager.access("s", 42)
        assert address == manager.table.descriptor("s").base + 42
        assert manager.stats.segment_faults == 1
