"""Tests for the stored-absolute-address relocation problem."""

import pytest

from repro.addressing.relocation_problem import (
    RelocatableImage,
    RelocationUnsafe,
)
from repro.memory import PhysicalMemory


def build_image(discipline, track=True, base=100, memory=None):
    memory = memory or PhysicalMemory(1_000)
    image = RelocatableImage(
        memory, base=base, size=20, discipline=discipline,
        track_address_words=track,
    )
    image.store_value(0, "header")
    image.store_value(5, "payload")
    image.store_pointer(1, 5)    # word 1 points at word 5
    image.store_pointer(2, 0)    # word 2 points at word 0
    return image


class TestPointerSemantics:
    def test_both_disciplines_dereference_identically(self):
        for discipline in ("absolute", "based"):
            image = build_image(discipline)
            assert image.follow_pointer(1) == "payload"
            assert image.follow_pointer(2) == "header"

    def test_bounds(self):
        image = build_image("based")
        with pytest.raises(IndexError):
            image.store_value(20, "x")
        with pytest.raises(IndexError):
            image.store_pointer(0, 20)


class TestBasedRelocation:
    def test_move_patches_nothing(self):
        image = build_image("based")
        patched = image.move(500)
        assert patched == 0
        assert image.base == 500

    def test_pointers_survive_move(self):
        image = build_image("based")
        image.move(500)
        assert image.follow_pointer(1) == "payload"
        assert image.follow_pointer(2) == "header"

    def test_many_moves_stay_free(self):
        image = build_image("based")
        for new_base in (300, 700, 50, 421):
            image.move(new_base)
        assert image.patches_applied == 0
        assert image.follow_pointer(1) == "payload"


class TestAbsoluteRelocation:
    def test_move_patches_every_address_word(self):
        image = build_image("absolute")
        patched = image.move(500)
        assert patched == 2
        assert image.follow_pointer(1) == "payload"
        assert image.follow_pointer(2) == "header"

    def test_unpatched_move_would_dangle(self):
        """Demonstrate the hazard the patching prevents: raw copy only."""
        memory = PhysicalMemory(1_000)
        image = build_image("absolute", memory=memory)
        # A raw copy without patching (what a naive mover would do):
        memory.move(image.base, 500, image.size)
        stale_pointer = memory.read(500 + 1)
        assert stale_pointer == 100 + 5   # still the OLD absolute address

    def test_untracked_addresses_block_relocation(self):
        """Without an address map, moving is refused — "often very
        complex" techniques are needed, or the move cannot happen."""
        image = build_image("absolute", track=False)
        with pytest.raises(RelocationUnsafe):
            image.move(500)

    def test_patch_cost_scales_with_pointer_count(self):
        memory = PhysicalMemory(4_096)
        image = RelocatableImage(memory, base=0, size=100,
                                 discipline="absolute")
        for offset in range(50):
            image.store_pointer(offset, 99)
        assert image.move(200) == 50

    def test_overwriting_pointer_with_value_untracks_it(self):
        image = build_image("absolute")
        image.store_value(1, "now plain data")
        assert image.move(500) == 1   # only word 2 remains an address


class TestValidation:
    def test_unknown_discipline(self):
        with pytest.raises(ValueError):
            RelocatableImage(PhysicalMemory(10), 0, 5, discipline="magic")

    def test_bad_size(self):
        with pytest.raises(ValueError):
            RelocatableImage(PhysicalMemory(10), 0, 0)
