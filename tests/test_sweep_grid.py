"""Sweep grids: expansion order, shard ids, seed derivation, round-trip."""

import json

import pytest

from repro.sweep.grid import (
    SWEEPABLE_PLACEMENT,
    SWEEPABLE_REPLACEMENT,
    SweepGrid,
    default_grid,
    derive_seed,
    quick_grid,
)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1967, "a", "replay") == derive_seed(1967, "a",
                                                               "replay")

    def test_distinct_per_shard_channel_and_base(self):
        seeds = {
            derive_seed(1967, "a", "replay"),
            derive_seed(1967, "a", "alloc"),
            derive_seed(1967, "b", "replay"),
            derive_seed(1968, "a", "replay"),
        }
        assert len(seeds) == 4

    def test_fits_a_signed_64_bit_word(self):
        for shard in ("a", "b", "c"):
            assert 0 <= derive_seed(0, shard) < 2 ** 63

    def test_no_separator_collisions(self):
        """(1, "2x") must not collide with (12, "x")."""
        assert derive_seed(1, "2x") != derive_seed(12, "x")


class TestExpansion:
    def test_size_matches_shard_count(self):
        grid = default_grid()
        shards = list(grid.shards())
        assert len(shards) == grid.size == 3 * 3 * 2 * 3 * 1 * 3

    def test_ids_are_unique_and_stable(self):
        grid = quick_grid()
        ids = [shard.id for shard in grid.shards()]
        assert len(set(ids)) == grid.size
        assert ids == [shard.id for shard in grid.shards()]

    def test_id_names_every_axis(self):
        shard = next(default_grid().shards())
        for axis in ("machine=", "replacement=", "placement=", "frames=",
                     "capacity=", "seed="):
            assert axis in shard.id

    def test_spec_is_json_safe(self):
        spec = next(quick_grid().shards()).spec(checked=True)
        assert spec["checked"] is True
        assert spec["shard"].startswith("machine=")
        assert json.loads(json.dumps(spec)) == spec


class TestValidation:
    def test_unknown_machine_rejected(self):
        with pytest.raises(ValueError, match="unknown machine preset"):
            SweepGrid(machines=("pdp11",))

    def test_unsweepable_replacement_rejected(self):
        """``random`` is unseeded; sweeping it would break determinism."""
        with pytest.raises(ValueError, match="not sweepable"):
            SweepGrid(replacement=("random",))
        with pytest.raises(ValueError, match="not sweepable"):
            SweepGrid(replacement=("opt",))

    def test_unknown_placement_rejected(self):
        with pytest.raises(ValueError, match="not sweepable"):
            SweepGrid(placement=("leftmost",))

    def test_empty_axis_rejected(self):
        with pytest.raises(ValueError, match="must not be empty"):
            SweepGrid(seeds=())

    def test_duplicate_axis_values_rejected(self):
        with pytest.raises(ValueError, match="duplicates"):
            SweepGrid(frames=(8, 8))

    def test_degenerate_sizing_rejected(self):
        with pytest.raises(ValueError, match="frames"):
            SweepGrid(frames=(1,))
        with pytest.raises(ValueError, match="length"):
            SweepGrid(length=0)

    def test_builtin_grids_use_only_sweepable_policies(self):
        for grid in (quick_grid(), default_grid()):
            assert set(grid.replacement) <= set(SWEEPABLE_REPLACEMENT)
            assert set(grid.placement) <= set(SWEEPABLE_PLACEMENT)


class TestSerialization:
    def test_dict_round_trip(self):
        grid = default_grid()
        assert SweepGrid.from_dict(grid.to_dict()) == grid

    def test_lists_coerced_to_tuples(self):
        grid = SweepGrid.from_dict({"frames": [8, 16]})
        assert grid.frames == (8, 16)

    def test_unknown_fields_rejected(self):
        with pytest.raises(ValueError, match="unknown grid fields"):
            SweepGrid.from_dict({"machines": ["baseline"], "turbo": True})

    def test_file_round_trip(self, tmp_path):
        grid = quick_grid()
        path = tmp_path / "grid.json"
        path.write_text(json.dumps(grid.to_dict()))
        assert SweepGrid.from_file(path) == grid
