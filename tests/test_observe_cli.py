"""The ``python -m repro trace`` command, end to end on tiny workloads."""

from __future__ import annotations

import io
import json

import pytest

from repro.observe.cli import build_parser, main, make_workload, run_trace
from repro.observe.sinks import read_jsonl


def run_cli(tmp_path, *extra):
    output = tmp_path / "trace.jsonl"
    args = build_parser().parse_args([
        "phased", "--length", "300", "--pages", "32", "--frames", "8",
        "--output", str(output), *extra,
    ])
    stream = io.StringIO()
    status = run_trace(args, stream=stream)
    return status, output, stream.getvalue()


def test_writes_jsonl_and_prints_report(tmp_path):
    status, output, report = run_cli(tmp_path)
    assert status == 0
    events = read_jsonl(output)
    assert events, "the trace file must hold events"
    kinds = {event.kind for event in events}
    assert {"fault", "place"} <= kinds
    # the printed report carries all three tables
    assert "trace replay" in report
    assert "run counters" in report
    assert "pager.faults" in report
    assert "events" in report


def test_report_counters_match_the_trace_file(tmp_path):
    _, output, report = run_cli(tmp_path)
    faults_in_file = sum(1 for e in read_jsonl(output) if e.kind == "fault")
    for line in report.splitlines():
        if line.startswith("events.fault"):
            assert int(line.split()[-1]) == faults_in_file
            break
    else:
        pytest.fail("events.fault missing from the report")


def test_export_json(tmp_path):
    exported = tmp_path / "counters.json"
    run_cli(tmp_path, "--export-json", str(exported))
    payload = json.loads(exported.read_text())
    assert payload["pager.accesses"] == 300


def test_saved_trace_replays(tmp_path):
    from repro.workload import save_trace

    path = tmp_path / "workload.trace"
    save_trace(path, [0, 1, 2, 1, 0, 3] * 10)
    args = build_parser().parse_args([
        str(path), "--frames", "2",
        "--output", str(tmp_path / "out.jsonl"),
    ])
    status = run_trace(args, stream=io.StringIO())
    assert status == 0


def test_unknown_workload_fails_loudly():
    with pytest.raises(SystemExit):
        make_workload("made-up-name", length=10, pages=4, seed=0)


def test_main_rejects_nonpositive_sizes():
    with pytest.raises(SystemExit):
        main(["phased", "--length", "0"])


def test_every_named_workload_resolves():
    from repro.observe.cli import WORKLOADS

    for name in WORKLOADS:
        trace = make_workload(name, length=64, pages=16, seed=1)
        assert len(trace) > 0
