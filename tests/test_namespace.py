"""Tests for name spaces and their bookkeeping costs."""

import pytest

from repro.errors import MissingSegment, OutOfMemory
from repro.namespace import (
    LinearNameSpace,
    LinearlySegmentedNameSpace,
    SymbolicallySegmentedNameSpace,
)


class TestLinearNameSpace:
    def test_contiguous_name_allocation(self):
        names = LinearNameSpace(1000)
        assert names.allocate("a", 100) == 0
        assert names.allocate("b", 100) == 100

    def test_name_of_uses_address_arithmetic(self):
        names = LinearNameSpace(1000)
        names.allocate("array", 100)
        assert names.name_of("array", 7) == 7
        names.allocate("other", 50)
        assert names.name_of("other", 3) == 103

    def test_name_of_bound_checked(self):
        names = LinearNameSpace(1000)
        names.allocate("a", 10)
        with pytest.raises(IndexError):
            names.name_of("a", 10)

    def test_name_space_fragments(self):
        """Free names exist but no contiguous run — the paper's point
        about name allocation problems in a single linear space."""
        names = LinearNameSpace(100)
        structures = [names.allocate(i, 10) for i in range(10)]
        for i in range(0, 10, 2):
            names.release(i)
        assert names.free_names == 50
        assert names.largest_free_run == 10
        with pytest.raises(OutOfMemory):
            names.allocate("wide", 11)
        assert names.fragmentation() > 0

    def test_release_unknown(self):
        with pytest.raises(KeyError):
            LinearNameSpace(10).release("ghost")

    def test_duplicate_structure(self):
        names = LinearNameSpace(100)
        names.allocate("a", 10)
        with pytest.raises(ValueError):
            names.allocate("a", 10)

    def test_structures_listing(self):
        names = LinearNameSpace(100)
        names.allocate("a", 10)
        assert names.structures() == ["a"]


class TestSymbolicNameSpace:
    def test_groups_create_unordered_names(self):
        space = SymbolicallySegmentedNameSpace()
        names = space.create_group("lib", [10, 20, 30])
        assert len(names) == 3
        assert space.segment_count == 3

    def test_no_bookkeeping(self):
        """The paper: 'far less bookkeeping' — zero searches, zero
        reallocations, no matter the churn."""
        space = SymbolicallySegmentedNameSpace()
        for round_ in range(50):
            space.create_group(f"g{round_}", [10] * 5)
            if round_ % 2:
                space.destroy_group(f"g{round_ - 1}")
        assert space.search_steps == 0
        assert space.reallocations == 0

    def test_address_two_part_names(self):
        space = SymbolicallySegmentedNameSpace()
        (name,) = space.create_group("g", [100])
        assert space.address(name, 42) == (name, 42)

    def test_address_bound_checked(self):
        space = SymbolicallySegmentedNameSpace()
        (name,) = space.create_group("g", [10])
        with pytest.raises(IndexError):
            space.address(name, 10)

    def test_missing_segment(self):
        with pytest.raises(MissingSegment):
            SymbolicallySegmentedNameSpace().address(("ghost", 0), 0)

    def test_destroy_group_counts(self):
        space = SymbolicallySegmentedNameSpace()
        space.create_group("g", [10, 10])
        assert space.destroy_group("g") == 2
        assert space.segment_count == 0

    def test_duplicate_rejected(self):
        space = SymbolicallySegmentedNameSpace()
        space.create_group("g", [10])
        with pytest.raises(ValueError):
            space.create_group("g", [10])


class TestLinearlySegmentedNameSpace:
    def test_groups_get_contiguous_numbers(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=4)
        numbers = space.create_group("lib", [10, 20, 30])
        assert numbers == [0, 1, 2]
        assert space.create_group("app", [5])[0] == 3

    def test_packed_address(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=4)
        (number,) = space.create_group("g", [100])
        assert space.address(number, 42) == (number << 24) | 42

    def test_dictionary_fragments(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=3,
                                           auto_reallocate=False)
        for index in range(4):
            space.create_group(f"g{index}", [1, 1])
        space.destroy_group("g0")
        space.destroy_group("g2")
        # 4 numbers free, but no run of 3.
        with pytest.raises(OutOfMemory):
            space.create_group("wide", [1, 1, 1])
        assert space.fragmentation() > 0

    def test_reallocation_renames_segments(self):
        """The heavyweight bookkeeping symbolic naming avoids."""
        space = LinearlySegmentedNameSpace(segment_name_bits=3,
                                           auto_reallocate=True)
        for index in range(4):
            space.create_group(f"g{index}", [1, 1])
        space.destroy_group("g0")
        space.destroy_group("g2")
        numbers = space.create_group("wide", [1, 1, 1])
        assert len(numbers) == 3
        assert space.reallocations == 1
        assert space.segments_renamed > 0

    def test_renamed_segments_keep_extents(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=3)
        space.create_group("a", [11, 22])
        space.create_group("b", [33])
        space.destroy_group("a")
        space.create_group("c", [44, 55, 66])   # may trigger reallocation
        (b_number,) = space.group_numbers("b")
        assert space.address(b_number, 32) == (b_number << 24) | 32
        with pytest.raises(IndexError):
            space.address(b_number, 33)

    def test_search_steps_accumulate(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=6)
        for index in range(8):
            space.create_group(f"g{index}", [1])
        assert space.search_steps >= 8

    def test_capacity_limit(self):
        space = LinearlySegmentedNameSpace(segment_name_bits=2,
                                           auto_reallocate=False)
        space.create_group("g", [1, 1, 1, 1])
        with pytest.raises(OutOfMemory):
            space.create_group("h", [1])

    def test_destroy_unknown_group(self):
        with pytest.raises(KeyError):
            LinearlySegmentedNameSpace(4).destroy_group("ghost")

    def test_missing_number(self):
        with pytest.raises(MissingSegment):
            LinearlySegmentedNameSpace(4).address(3, 0)


class TestBookkeepingComparison:
    def test_symbolic_beats_linear_under_churn(self):
        """CL-NAMES in miniature: identical group workloads."""
        symbolic = SymbolicallySegmentedNameSpace()
        linear = LinearlySegmentedNameSpace(segment_name_bits=6)
        for round_ in range(12):
            for space in (symbolic, linear):
                space.create_group(f"g{round_}", [4] * 4)
            if round_ >= 2 and round_ % 2 == 0:
                for space in (symbolic, linear):
                    space.destroy_group(f"g{round_ - 2}")
        assert symbolic.search_steps == 0
        assert linear.search_steps > 0
        assert symbolic.reallocations == 0
