"""Run every docstring example in the package.

The public API's docstrings carry runnable examples; this keeps them
honest as the code evolves.
"""

import doctest
import importlib
import pkgutil

import repro


def _walk_modules():
    yield repro
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if info.name == "repro.__main__":
            continue
        yield importlib.import_module(info.name)


def test_all_docstring_examples_pass():
    attempted = 0
    for module in _walk_modules():
        results = doctest.testmod(module, verbose=False)
        assert results.failed == 0, f"doctest failure in {module.__name__}"
        attempted += results.attempted
    # The package genuinely carries examples — guard against them all
    # silently disappearing.
    assert attempted >= 15
