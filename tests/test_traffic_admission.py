"""Admission control: the quota ledger, the watermark, the shed rule."""

import pytest

from repro.serve.pool import SharedFramePool
from repro.traffic.admission import (
    ADMIT,
    QUEUE_QUOTA,
    QUEUE_WATERMARK,
    SHED_OVERSIZE,
    AdmissionController,
)
from repro.traffic.queueing import DRAIN_POLICIES, make_drain_policy
from repro.traffic.session import SessionSpec


def spec(quota=4, sid=0, arrival=0, length=50):
    return SessionSpec(
        sid=sid, arrival=arrival, quota=quota, pages=16, length=length,
        shared_pages=0, write_fraction=0.0, seed=0,
    )


class TestDecisionRule:
    def test_empty_pool_admits(self):
        controller = AdmissionController(16, watermark=0.25)
        assert controller.decide(spec(quota=4), SharedFramePool(16), 0) \
            == ADMIT

    def test_oversize_is_shed_not_queued(self):
        """A session whose quota exceeds the pool can never be admitted;
        queueing it would wedge an fcfs drain forever."""
        controller = AdmissionController(16)
        assert controller.decide(spec(quota=17), SharedFramePool(16), 0) \
            == SHED_OVERSIZE

    def test_quota_ledger_refuses_before_physical_check(self):
        controller = AdmissionController(16, overcommit=1.0)
        pool = SharedFramePool(16)
        assert controller.decide(spec(quota=4), pool, committed_quota=13) \
            == QUEUE_QUOTA

    def test_overcommit_widens_the_ledger(self):
        controller = AdmissionController(16, overcommit=1.5)
        pool = SharedFramePool(16)
        assert controller.decide(spec(quota=4), pool, committed_quota=13) \
            == ADMIT

    def test_watermark_queues_when_reclaimable_runs_short(self):
        from repro.serve.tenant import TenantView

        controller = AdmissionController(16, watermark=0.25, overcommit=2.0)
        pool = SharedFramePool(16)
        view = TenantView(pool, "resident", quota=10)
        for page in range(10):
            view.acquire(page)
        # 6 free frames; admitting quota 4 leaves 2 < ceil(0.25*16)=4.
        assert controller.decide(spec(quota=4), pool, committed_quota=10) \
            == QUEUE_WATERMARK

    def test_cached_zero_ref_frames_count_as_reclaimable(self):
        from repro.serve.tenant import TenantView

        controller = AdmissionController(16, watermark=0.25, overcommit=2.0)
        pool = SharedFramePool(16)
        view = TenantView(pool, "churner", quota=10)
        for page in range(10):
            view.acquire(page)
        for page in range(10):
            view.release(page)
        # Same occupancy, but every frame is now zero-ref cache: the
        # pool can evict its way to them, so admission proceeds.
        assert controller.decide(spec(quota=4), pool, committed_quota=10) \
            == ADMIT

    def test_decisions_are_pure(self):
        controller = AdmissionController(16, watermark=0.25)
        pool = SharedFramePool(16)
        first = controller.decide(spec(quota=4), pool, 0)
        assert all(
            controller.decide(spec(quota=4), pool, 0) == first
            for _ in range(5)
        )


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="pool_frames"):
            AdmissionController(0)
        with pytest.raises(ValueError, match="watermark"):
            AdmissionController(16, watermark=1.0)
        with pytest.raises(ValueError, match="overcommit"):
            AdmissionController(16, overcommit=0.5)


class TestDrainPolicies:
    def queue(self):
        return [
            spec(sid=0, arrival=0, quota=8, length=90),
            spec(sid=1, arrival=1, quota=2, length=20),
            spec(sid=2, arrival=2, quota=4, length=60),
        ]

    def test_fcfs_offers_only_the_head(self):
        assert DRAIN_POLICIES["fcfs"].order(self.queue()) == [0]
        assert DRAIN_POLICIES["fcfs"].order([]) == []
        assert DRAIN_POLICIES["fcfs"].skip_refused is False

    def test_shortest_offers_the_shortest(self):
        assert DRAIN_POLICIES["shortest"].order(self.queue()) == [1]
        assert DRAIN_POLICIES["shortest"].order([]) == []

    def test_quota_aware_offers_all_smallest_first(self):
        policy = DRAIN_POLICIES["quota_aware"]
        assert policy.order(self.queue()) == [1, 2, 0]
        assert policy.skip_refused is True

    def test_ties_break_by_arrival_then_sid(self):
        tied = [
            spec(sid=5, arrival=3, quota=4),
            spec(sid=1, arrival=3, quota=4),
            spec(sid=2, arrival=1, quota=4),
        ]
        assert DRAIN_POLICIES["quota_aware"].order(tied) == [2, 1, 0]

    def test_unknown_policy_lists_choices(self):
        with pytest.raises(ValueError, match="fcfs"):
            make_drain_policy("priority")
