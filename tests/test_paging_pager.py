"""Tests for the demand-paging engine and prefetch."""

import pytest

from repro.addressing import PageTable
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.paging import (
    DemandPager,
    FrameTable,
    LruPolicy,
    SequentialPrefetcher,
)


def make_pager(frames=4, pages=32, page_size=512, latency=1000,
               prefetcher=None, clock=None):
    clock = clock if clock is not None else Clock()
    table = PageTable(page_size=page_size, pages=pages)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=latency, transfer_rate=1.0),
        clock=clock,
    )
    pager = DemandPager(
        table, FrameTable(frames), backing, LruPolicy(), clock,
        prefetcher=prefetcher,
    )
    return pager, clock


class TestDemandFetch:
    def test_first_access_faults_and_resolves(self):
        pager, _ = make_pager()
        address = pager.access(5)
        assert pager.stats.faults == 1
        frame = pager.page_table.entry(0).frame
        assert address == frame * 512 + 5

    def test_repeat_access_hits(self):
        pager, _ = make_pager()
        pager.access(5)
        pager.access(6)
        assert pager.stats.faults == 1
        assert pager.stats.accesses == 2

    def test_fault_blocks_for_fetch_time(self):
        pager, clock = make_pager(latency=1000, page_size=512)
        pager.access(0)
        # 1 reference cycle + latency 1000 + 512 words at rate 1.0
        assert clock.now == 1513
        assert pager.stats.fetch_wait_cycles == 1512

    def test_hit_costs_only_the_reference(self):
        pager, clock = make_pager()
        pager.access(0)
        before = clock.now
        pager.access(1)
        assert clock.now == before + 1
        assert pager.stats.fetch_wait_cycles == pager.backing.level.transfer_time(512)

    def test_replacement_when_frames_full(self):
        pager, _ = make_pager(frames=2)
        for page in (0, 1, 2):
            pager.access_page(page)
        assert pager.stats.evictions == 1
        assert pager.frames.resident_count == 2

    def test_lru_victim_chosen(self):
        pager, _ = make_pager(frames=2)
        pager.access_page(0)
        pager.access_page(1)
        pager.access_page(0)   # 0 recent
        pager.access_page(2)   # evicts 1
        assert 1 not in pager.frames
        assert 0 in pager.frames


class TestWriteback:
    def test_dirty_page_written_back(self):
        pager, _ = make_pager(frames=1)
        pager.access_page(0, write=True)
        pager.access_page(1)
        assert pager.stats.writebacks == 1
        assert ("page", 0) in pager.backing

    def test_clean_page_not_written_back(self):
        pager, _ = make_pager(frames=1)
        pager.access_page(0)
        pager.access_page(1)
        assert pager.stats.writebacks == 0

    def test_written_back_page_refetched(self):
        pager, _ = make_pager(frames=1)
        pager.access_page(0, write=True)
        pager.access_page(1)
        pager.access_page(0)
        assert pager.backing.fetches == 1   # the refetch of page 0


class TestResidencyAccounting:
    def test_residency_cycles_accumulate(self):
        pager, clock = make_pager(frames=2, latency=100)
        pager.access_page(0)
        clock.advance(1000)
        assert pager.residency_cycles() == 1000

    def test_eviction_freezes_contribution(self):
        pager, clock = make_pager(frames=1, latency=100)
        pager.access_page(0)
        loaded_at = clock.now
        clock.advance(500)
        pager.access_page(1)   # evicts 0; one reference cycle precedes it
        assert pager.stats.frame_cycles_resident == (500 + 1)
        assert pager.residency_cycles() > 500
        assert loaded_at > 0


class TestPrefetch:
    def test_sequential_prefetch_brings_next_page(self):
        pager, _ = make_pager(frames=4, prefetcher=SequentialPrefetcher(depth=1))
        pager.access_page(0)
        assert 1 in pager.frames
        assert pager.stats.prefetches == 1

    def test_prefetch_charges_no_wait(self):
        plain, clock_plain = make_pager(frames=4)
        fetching, clock_fetch = make_pager(
            frames=4, prefetcher=SequentialPrefetcher(depth=2)
        )
        plain.access_page(0)
        fetching.access_page(0)
        assert clock_fetch.now == clock_plain.now

    def test_prefetch_never_evicts(self):
        pager, _ = make_pager(frames=1, prefetcher=SequentialPrefetcher(depth=3))
        pager.access_page(0)
        assert pager.frames.resident_count == 1
        assert 0 in pager.frames

    def test_prefetch_avoids_later_fault(self):
        pager, _ = make_pager(frames=4, prefetcher=SequentialPrefetcher(depth=1))
        pager.access_page(0)
        pager.access_page(1)   # already prefetched
        assert pager.stats.faults == 1

    def test_prefetcher_respects_table_bounds(self):
        prefetcher = SequentialPrefetcher(depth=5)
        table = PageTable(page_size=512, pages=3)
        assert list(prefetcher.suggest(2, table)) == []

    def test_prefetcher_skips_resident(self):
        prefetcher = SequentialPrefetcher(depth=2)
        table = PageTable(page_size=512, pages=8)
        table.map(1, 0)
        assert list(prefetcher.suggest(0, table)) == [2]

    def test_depth_validation(self):
        with pytest.raises(ValueError):
            SequentialPrefetcher(depth=0)


class TestNameInterface:
    def test_access_by_name_and_page_agree(self):
        pager_a, _ = make_pager()
        pager_b, _ = make_pager()
        pager_a.access(3 * 512 + 7)
        pager_b.access_page(3)
        assert pager_a.stats.faults == pager_b.stats.faults == 1
