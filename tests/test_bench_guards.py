"""Bench arithmetic guards: zero elapsed time, zeroed metrics, damage."""

import json

import pytest

from repro import bench
from tests.test_bench_history import canned_report


class TestZeroElapsed:
    def test_throughput_of_zero_seconds_is_none(self):
        assert bench._throughput(1_000, 0.0) is None
        assert bench._throughput(1_000, 0) is None
        assert bench._throughput(1_000, 0.5) == 2_000

    def test_suite_survives_a_frozen_clock(self, monkeypatch):
        """On a coarse clock every timing can come back 0.0; the suite
        must report n/a throughputs instead of dividing by zero."""
        monkeypatch.setattr(bench.time, "perf_counter", lambda: 42.0)
        report = bench.run_suite(quick=True)
        for stats in report["replay"]["policies"].values():
            assert stats["reference_refs_per_s"] is None
            assert stats["fast_refs_per_s"] is None
            assert stats["speedup"] is None
        for stats in report["alloc"]["policies"].values():
            assert stats["linear_ops_per_s"] is None
            assert stats["indexed_ops_per_s"] is None
            assert stats["speedup"] is None
        # The report renders, with n/a columns, rather than crashing.
        import io

        bench._print_report(report, stream=io.StringIO())

    def test_history_record_tolerates_none_metrics(self):
        report = canned_report()
        report["replay"]["policies"]["lru"]["fast_refs_per_s"] = None
        record = bench.history_record(report)
        assert record["metrics"]["replay.lru.fast_refs_per_s"] is None

    def test_compare_skips_none_on_either_side(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        baseline["metrics"]["replay.lru.fast_refs_per_s"] = None
        current["metrics"]["alloc.best_fit.linear_ops_per_s"] = None
        assert bench.compare_records(current, baseline) == []


class TestZeroCurrentValue:
    def test_collapse_to_zero_is_a_regression(self):
        """A current throughput of 0 against a positive baseline is the
        worst possible regression, not a metric to skip."""
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        current["metrics"]["replay.lru.fast_refs_per_s"] = 0
        flagged = bench.compare_records(current, baseline)
        assert len(flagged) == 1
        assert flagged[0]["metric"] == "replay.lru.fast_refs_per_s"
        assert flagged[0]["change"] == -1.0

    def test_zero_baseline_still_skipped(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        baseline["metrics"]["replay.lru.fast_refs_per_s"] = 0
        assert bench.compare_records(current, baseline) == []


class TestDamagedHistory:
    def test_damage_count_surfaced(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = bench.history_record(canned_report())
        path.write_text(
            "garbage\n" + json.dumps(good) + "\n" + '{"metrics": 1}\n'
        )
        records, damaged = bench.read_history_with_damage(path)
        assert records == [good]
        assert damaged == 2

    def test_missing_file_has_no_damage(self, tmp_path):
        assert bench.read_history_with_damage(tmp_path / "none.jsonl") == \
            ([], 0)

    def test_compare_warns_about_damaged_lines(self, tmp_path, monkeypatch,
                                               capsys):
        import copy

        monkeypatch.setattr(
            bench, "run_suite",
            lambda quick=False, trace_file=None:
                copy.deepcopy(canned_report(quick=quick)),
        )
        path = tmp_path / "history.jsonl"
        baseline = bench.history_record(canned_report())
        path.write_text("corrupt {\n" + json.dumps(baseline) + "\n")
        status = bench.main([
            "--quick", "--no-write", "--history", str(path), "--compare",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "skipped 1 unreadable line(s)" in out


class TestReadJsonlRecords:
    def test_counts_every_kind_of_damage(self, tmp_path):
        from repro.observe.sinks import read_jsonl_records

        path = tmp_path / "records.jsonl"
        path.write_text(
            '{"ok": 1}\n'
            "not json\n"
            "[1, 2, 3]\n"
            "\n"
            '{"ok": 2}\n'
        )
        records, skipped = read_jsonl_records(path)
        assert records == [{"ok": 1}, {"ok": 2}]
        assert skipped == 2          # blank lines are not damage

    def test_missing_file_is_empty(self, tmp_path):
        from repro.observe.sinks import read_jsonl_records

        assert read_jsonl_records(tmp_path / "absent.jsonl") == ([], 0)


class TestEventStreamDamage:
    def test_trace_diff_reports_corrupt_line_counts(self, tmp_path):
        """The analysis CLI surfaces how many lines each trace lost."""
        import io

        from repro.observe.analysis.cli import build_diff_parser, run_diff
        from repro.observe.cli import build_parser, run_trace

        trace = tmp_path / "trace.jsonl"
        args = build_parser().parse_args([
            "phased", "--length", "500", "--pages", "32", "--frames", "8",
            "--output", str(trace),
        ])
        assert run_trace(args, stream=io.StringIO()) == 0
        damaged = tmp_path / "damaged.jsonl"
        damaged.write_text("broken {\n" + trace.read_text())

        out = io.StringIO()
        diff_args = build_diff_parser().parse_args([str(trace), str(damaged)])
        run_diff(diff_args, stream=out)
        report = out.getvalue()
        assert "corrupt lines in a" in report
        assert "corrupt lines in b" in report
