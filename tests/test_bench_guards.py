"""Bench arithmetic guards: zero elapsed time, zeroed metrics, damage."""

import json

import pytest

from repro import bench
from tests.test_bench_history import canned_report


class TestZeroElapsed:
    def test_throughput_of_zero_seconds_is_none(self):
        assert bench._throughput(1_000, 0.0) is None
        assert bench._throughput(1_000, 0) is None
        assert bench._throughput(1_000, 0.5) == 2_000

    def test_suite_survives_a_frozen_clock(self, monkeypatch):
        """On a coarse clock every timing can come back 0.0; the suite
        must report n/a throughputs instead of dividing by zero."""
        monkeypatch.setattr(bench.time, "perf_counter", lambda: 42.0)
        report = bench.run_suite(quick=True)
        for stats in report["replay"]["policies"].values():
            assert stats["reference_refs_per_s"] is None
            assert stats["fast_refs_per_s"] is None
            assert stats["speedup"] is None
        for stats in report["alloc"]["policies"].values():
            assert stats["linear_ops_per_s"] is None
            assert stats["indexed_ops_per_s"] is None
            assert stats["speedup"] is None
        for stats in report["traffic"]["loads"].values():
            assert stats["refs_per_s"] is None
            # The simulation itself runs on virtual time: the frozen
            # wall clock must not zero the measured work.
            assert stats["refs"] > 0
        # The report renders, with n/a columns, rather than crashing.
        import io

        bench._print_report(report, stream=io.StringIO())

    def test_history_record_tolerates_none_metrics(self):
        report = canned_report()
        report["replay"]["policies"]["lru"]["fast_refs_per_s"] = None
        record = bench.history_record(report)
        assert record["metrics"]["replay.lru.fast_refs_per_s"] is None

    def test_compare_skips_none_on_either_side(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        baseline["metrics"]["replay.lru.fast_refs_per_s"] = None
        current["metrics"]["alloc.best_fit.linear_ops_per_s"] = None
        assert bench.compare_records(current, baseline) == []


def traffic_report(scale=1.0, quick=True):
    """canned_report plus the sections newer bench versions emit."""
    report = canned_report(quick=quick)
    report["telemetry"] = {
        "references": 75_000, "degree": 4, "overhead": 0.011,
        "off_refs_per_s": 300_000, "on_refs_per_s": 297_000,
    }
    report["traffic"] = {
        "pool_frames": 48, "horizon": 300, "quick": True,
        "loads": {
            "1.0": {
                "arrivals": 30, "admitted": 28, "shed": 2, "completed": 28,
                "refs": 2_000, "queue_wait_p99": 88.0,
                "fault_wait_p99": 18.5, "traffic_s": 0.01,
                "refs_per_s": int(200_000 * scale),
            },
        },
    }
    return report


class TestMixedVersionHistory:
    """--compare must survive histories written by older bench builds:
    records predating the telemetry and traffic sections (keys absent)
    and records whose new throughputs were too fast to time (null)."""

    def test_record_without_new_sections_still_flattens(self):
        record = bench.history_record(canned_report())
        assert record["telemetry_overhead"] is None
        assert not any(key.startswith("traffic.") for key in record["metrics"])

    def test_record_with_traffic_flattens(self):
        record = bench.history_record(traffic_report())
        assert record["metrics"]["traffic.load1.0.refs_per_s"] == 200_000
        assert record["telemetry_overhead"] == 0.011

    def test_overhead_rides_outside_the_compared_metrics(self):
        """A *lower* overhead must never register as a regression, so it
        must not live where compare_records reads throughputs."""
        record = bench.history_record(traffic_report())
        assert "telemetry_overhead" not in record["metrics"]
        assert not any("overhead" in key for key in record["metrics"])

    def test_compare_old_baseline_against_new_current(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(traffic_report())
        current["metrics"]["traffic.load1.0.refs_per_s"] = 1  # collapsed
        # The traffic metric has no baseline: skipped, not flagged.
        assert bench.compare_records(current, baseline) == []

    def test_compare_new_baseline_against_old_current(self):
        baseline = bench.history_record(traffic_report())
        current = bench.history_record(canned_report())
        assert bench.compare_records(current, baseline) == []

    def test_compare_skips_untimed_traffic_on_either_side(self):
        baseline = bench.history_record(traffic_report())
        current = bench.history_record(traffic_report())
        current["metrics"]["traffic.load1.0.refs_per_s"] = None
        assert bench.compare_records(current, baseline) == []
        assert bench.compare_records(baseline, current) == []

    def test_traffic_regression_still_flagged(self):
        baseline = bench.history_record(traffic_report())
        current = bench.history_record(traffic_report(scale=0.5))
        flagged = bench.compare_records(current, baseline)
        assert [row["metric"] for row in flagged] == [
            "traffic.load1.0.refs_per_s"
        ]

    def test_cli_compare_survives_a_pre_traffic_baseline(
        self, tmp_path, monkeypatch, capsys
    ):
        import copy

        monkeypatch.setattr(
            bench, "run_suite",
            lambda quick=False, trace_file=None:
                copy.deepcopy(traffic_report(quick=quick)),
        )
        history = tmp_path / "history.jsonl"
        bench.append_history(bench.history_record(canned_report()), history)
        status = bench.main([
            "--quick", "--no-write", "--history", str(history), "--compare",
        ])
        assert status == 0
        assert "no regressions" in capsys.readouterr().out

    def test_print_report_renders_untimed_traffic(self):
        import io

        report = traffic_report()
        report["traffic"]["loads"]["1.0"]["refs_per_s"] = None
        stream = io.StringIO()
        bench._print_report(report, stream=stream)
        assert "n/a" in stream.getvalue()


class TestZeroCurrentValue:
    def test_collapse_to_zero_is_a_regression(self):
        """A current throughput of 0 against a positive baseline is the
        worst possible regression, not a metric to skip."""
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        current["metrics"]["replay.lru.fast_refs_per_s"] = 0
        flagged = bench.compare_records(current, baseline)
        assert len(flagged) == 1
        assert flagged[0]["metric"] == "replay.lru.fast_refs_per_s"
        assert flagged[0]["change"] == -1.0

    def test_zero_baseline_still_skipped(self):
        baseline = bench.history_record(canned_report())
        current = bench.history_record(canned_report())
        baseline["metrics"]["replay.lru.fast_refs_per_s"] = 0
        assert bench.compare_records(current, baseline) == []


class TestDamagedHistory:
    def test_damage_count_surfaced(self, tmp_path):
        path = tmp_path / "history.jsonl"
        good = bench.history_record(canned_report())
        path.write_text(
            "garbage\n" + json.dumps(good) + "\n" + '{"metrics": 1}\n'
        )
        records, damaged = bench.read_history_with_damage(path)
        assert records == [good]
        assert damaged == 2

    def test_missing_file_has_no_damage(self, tmp_path):
        assert bench.read_history_with_damage(tmp_path / "none.jsonl") == \
            ([], 0)

    def test_compare_warns_about_damaged_lines(self, tmp_path, monkeypatch,
                                               capsys):
        import copy

        monkeypatch.setattr(
            bench, "run_suite",
            lambda quick=False, trace_file=None:
                copy.deepcopy(canned_report(quick=quick)),
        )
        path = tmp_path / "history.jsonl"
        baseline = bench.history_record(canned_report())
        path.write_text("corrupt {\n" + json.dumps(baseline) + "\n")
        status = bench.main([
            "--quick", "--no-write", "--history", str(path), "--compare",
        ])
        out = capsys.readouterr().out
        assert status == 0
        assert "skipped 1 unreadable line(s)" in out


class TestReadJsonlRecords:
    def test_counts_every_kind_of_damage(self, tmp_path):
        from repro.observe.sinks import read_jsonl_records

        path = tmp_path / "records.jsonl"
        path.write_text(
            '{"ok": 1}\n'
            "not json\n"
            "[1, 2, 3]\n"
            "\n"
            '{"ok": 2}\n'
        )
        records, skipped = read_jsonl_records(path)
        assert records == [{"ok": 1}, {"ok": 2}]
        assert skipped == 2          # blank lines are not damage

    def test_missing_file_is_empty(self, tmp_path):
        from repro.observe.sinks import read_jsonl_records

        assert read_jsonl_records(tmp_path / "absent.jsonl") == ([], 0)


class TestEventStreamDamage:
    def test_trace_diff_reports_corrupt_line_counts(self, tmp_path):
        """The analysis CLI surfaces how many lines each trace lost."""
        import io

        from repro.observe.analysis.cli import build_diff_parser, run_diff
        from repro.observe.cli import build_parser, run_trace

        trace = tmp_path / "trace.jsonl"
        args = build_parser().parse_args([
            "phased", "--length", "500", "--pages", "32", "--frames", "8",
            "--output", str(trace),
        ])
        assert run_trace(args, stream=io.StringIO()) == 0
        damaged = tmp_path / "damaged.jsonl"
        damaged.write_text("broken {\n" + trace.read_text())

        out = io.StringIO()
        diff_args = build_diff_parser().parse_args([str(trace), str(damaged)])
        run_diff(diff_args, stream=out)
        report = out.getvalue()
        assert "corrupt lines in a" in report
        assert "corrupt lines in b" in report
