"""The transport contract: identity across boundaries, loss handling.

Three promises, exercised per transport: (1) a fixed grid yields
byte-identical canonical records whatever carries the shards; (2) a
worker that dies hard costs a retry, never a hang and never a torn
checkpoint; (3) every spec comes back as exactly one record — result
or failure — even when no worker can be started at all.
"""

import io
import json

import pytest

from repro.sweep.checkpoint import canonical_lines
from repro.sweep.engine import resolve_transport, run_sweep
from repro.sweep.grid import SweepGrid
from repro.sweep.transport import (
    InlineTransport,
    PoolTransport,
    StreamTransport,
    TRANSPORT_NAMES,
    make_transport,
)
from repro.sweep.transport.base import RetryLedger, failure_record
from repro.sweep.worker import HELLO_PREFIX, RESULT_PREFIX, serve


def tiny_grid(**overrides):
    base = dict(
        name="tiny",
        machines=("baseline",),
        replacement=("lru", "fifo"),
        placement=("first_fit",),
        frames=(8,),
        capacities=(10_000,),
        seeds=(0, 1),
        length=400,
        pages=32,
        requests=200,
        mean_lifetime=60,
        programs=2,
        program_length=200,
    )
    base.update(overrides)
    return SweepGrid.from_dict(base)


def tiny_specs(**overrides):
    return [shard.spec() for shard in tiny_grid(**overrides).shards()]


class TestMakeTransport:
    def test_spellings_build_the_right_transports(self):
        assert isinstance(make_transport("inline"), InlineTransport)
        assert isinstance(make_transport("pool", workers=3), PoolTransport)
        assert isinstance(make_transport("subprocess"), StreamTransport)
        assert make_transport("pool", workers=3).workers == 3

    def test_subprocess_is_local_hosts_only(self):
        carrier = make_transport("subprocess", workers=2)
        assert carrier.name == "subprocess"
        assert all(host in ("local", "localhost") for host in carrier.hosts)

    def test_ssh_spelling_parses_hosts(self):
        carrier = make_transport("ssh:alpha, beta", workers=4)
        assert isinstance(carrier, StreamTransport)
        assert carrier.hosts == ("alpha", "beta")
        assert carrier.name == "ssh:alpha,beta"

    def test_ssh_with_no_hosts_rejected(self):
        with pytest.raises(ValueError, match="no hosts"):
            make_transport("ssh:")

    def test_unknown_name_lists_the_spellings(self):
        with pytest.raises(ValueError) as caught:
            make_transport("carrier-pigeon")
        for spelling in TRANSPORT_NAMES:
            assert spelling in str(caught.value)

    def test_default_resolution_matches_history(self):
        assert resolve_transport(None, 1, 4).name == "inline"
        assert resolve_transport(None, 4, 4).name == "pool"
        # One shard: a pool costs more than it saves.
        assert resolve_transport(None, 4, 1).name == "inline"

    def test_transport_instances_pass_through(self):
        carrier = InlineTransport()
        assert resolve_transport(carrier, 4, 4) is carrier


class TestByteIdentity:
    def test_same_grid_same_bytes_under_every_transport(self):
        """The acceptance criterion: one grid, one seed, three
        transports, byte-identical canonical record lines."""
        canon = {}
        for name in ("inline", "pool", "subprocess"):
            result = run_sweep(tiny_grid(), workers=2, transport=name)
            assert result.ok, (name, result.failures)
            assert result.transport == name
            canon[name] = canonical_lines(result.records)
        assert canon["inline"] == canon["pool"]
        assert canon["inline"] == canon["subprocess"]


class TestRetryLedger:
    def test_requeue_until_budget_then_failure(self):
        ledger = RetryLedger(retries=2, transport="test")
        spec = {"shard": "s1"}
        boom = RuntimeError("boom")
        assert ledger.record_loss(spec, boom) is None
        assert ledger.record_loss(spec, boom) is None
        failed = ledger.record_loss(spec, boom)
        assert failed["shard"] == "s1"
        assert failed["attempts"] == 3
        assert failed["transport"] == "test"
        assert "RuntimeError: boom" in failed["error"]

    def test_budget_is_per_shard(self):
        ledger = RetryLedger(retries=1)
        assert ledger.record_loss({"shard": "a"}, "x") is None
        assert ledger.record_loss({"shard": "b"}, "x") is None
        assert ledger.losses({"shard": "a"}) == 1

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            RetryLedger(retries=-1)

    def test_failure_record_shape(self):
        record = failure_record({"shard": "s"}, "lost", "pool", attempts=2)
        assert record == {"shard": "s", "error": "lost",
                          "transport": "pool", "attempts": 2}


class TestPoolLoss:
    def test_hard_worker_death_is_retried_not_hung(self, tmp_path):
        """The imap_unordered replacement: one worker dying hard
        (os._exit, as an OOM kill looks from here) breaks the pool;
        the transport requeues the in-flight shards on a fresh pool
        and the campaign completes with every record present."""
        specs = tiny_specs()
        specs[0] = dict(specs[0],
                        inject_exit_once=str(tmp_path / "died.marker"))
        records = list(PoolTransport(workers=2).run(specs))
        assert len(records) == len(specs)
        assert not [r for r in records if "error" in r]
        assert {r["shard"] for r in records} == {s["shard"] for s in specs}

    def test_shard_that_kills_every_worker_becomes_a_failure(self):
        """A poison shard dies on every attempt: after the retry
        budget it must come back as a failure record — bounded retry,
        not an infinite respawn loop."""
        spec = dict(tiny_specs()[0], inject_exit=True)
        records = list(PoolTransport(workers=1, retries=1).run([spec]))
        assert len(records) == 1
        assert records[0]["transport"] == "pool"
        assert records[0]["attempts"] == 2
        assert "error" in records[0]


class TestStreamLoss:
    def test_worker_death_respawns_and_completes(self, tmp_path):
        specs = tiny_specs(seeds=(0,))
        specs[0] = dict(specs[0],
                        inject_exit_once=str(tmp_path / "died.marker"))
        records = list(StreamTransport(workers=1).run(specs))
        assert len(records) == len(specs)
        assert not [r for r in records if "error" in r]

    def test_poison_shard_fails_without_hanging(self):
        spec = dict(tiny_specs()[0], inject_exit=True)
        carrier = StreamTransport(workers=1, retries=1, respawns=4)
        records = list(carrier.run([spec]))
        assert len(records) == 1
        assert records[0]["attempts"] == 2
        assert "error" in records[0]

    def test_unspawnable_worker_yields_failures_not_a_hang(self):
        """Every slot dead, respawn budget zero: the leftover specs
        must come back as failure records immediately."""
        carrier = StreamTransport(workers=1, python="/nonexistent/python",
                                  respawns=0, hello_timeout=5.0)
        specs = [{"shard": "a"}, {"shard": "b"}]
        records = list(carrier.run(specs))
        assert [r["shard"] for r in records] == ["a", "b"]
        assert all("no live transport workers remain" in r["error"]
                   for r in records)

    def test_stdout_noise_cannot_tear_the_record_stream(self):
        """A shard that prints to stdout mid-run: the worker shields
        the protocol channel, so the record still arrives intact and
        matches the inline run of the same (unannotated) spec."""
        clean = tiny_specs(seeds=(0,))[:1]
        noisy = [dict(clean[0], inject_print="STRAY OUTPUT LINE")]
        streamed = list(StreamTransport(workers=1).run(noisy))
        inline = list(InlineTransport().run(clean))
        assert len(streamed) == 1 and "error" not in streamed[0]
        assert canonical_lines(streamed) == canonical_lines(inline)

    def test_empty_spec_list_is_a_no_op(self):
        assert list(StreamTransport(workers=1).run([])) == []


class TestWorkerProtocol:
    def run_worker(self, lines):
        stdout = io.StringIO()
        status = serve(stdin=io.StringIO("".join(line + "\n"
                                                 for line in lines)),
                       stdout=stdout)
        return status, stdout.getvalue().splitlines()

    def test_hello_then_one_result_per_spec(self):
        status, out = self.run_worker([json.dumps({"shard": "x"}), ""])
        assert status == 0
        assert out[0].startswith(HELLO_PREFIX)
        hello = json.loads(out[0][len(HELLO_PREFIX):])
        assert hello["worker"] == "repro.sweep.worker"
        replies = [line for line in out[1:]
                   if line.startswith(RESULT_PREFIX)]
        assert len(replies) == 1   # the blank line was skipped, not answered

    def test_replies_are_sorted_key_json(self):
        _, out = self.run_worker([json.dumps({"shard": "x"})])
        payload = out[-1][len(RESULT_PREFIX):]
        record = json.loads(payload)
        assert payload == json.dumps(record, sort_keys=True)
        # A bare spec names no machine: the failure came back as a
        # record, proving shard errors never kill the worker loop.
        assert record["shard"] == "x" and "error" in record

    def test_undecodable_spec_becomes_an_error_record(self):
        status, out = self.run_worker(["{this is not json"])
        assert status == 0
        record = json.loads(out[-1][len(RESULT_PREFIX):])
        assert record["shard"] == "?"
        assert "undecodable spec" in record["error"]


class FakeTransport:
    """A stub worker boundary: proves the engine's seam is the protocol."""

    name = "fake"

    def run(self, specs):
        for spec in specs:
            yield {"shard": spec["shard"], "sweep": "tiny", "stubbed": True}


class TestEngineSeam:
    def test_engine_accepts_a_transport_instance(self):
        result = run_sweep(tiny_grid(), transport=FakeTransport())
        assert result.transport == "fake"
        assert all(record["stubbed"] for record in result.records)

    def test_unknown_transport_name_raises_value_error(self):
        with pytest.raises(ValueError, match="unknown transport"):
            run_sweep(tiny_grid(), transport="carrier-pigeon")

    def test_transport_failures_count_as_shard_failures(self, tmp_path):
        class LossyTransport:
            name = "lossy"

            def run(self, specs):
                for index, spec in enumerate(specs):
                    yield failure_record(spec, "dropped", "lossy") \
                        if index == 0 else \
                        {"shard": spec["shard"], "sweep": "tiny"}

        path = tmp_path / "results.jsonl"
        result = run_sweep(tiny_grid(), results_path=path,
                           transport=LossyTransport())
        assert len(result.failures) == 1
        # The failure was reported but never checkpointed: resume will
        # re-execute exactly the lost shard.
        assert len(path.read_text().splitlines()) == len(result.records)
        assert result.failures[0]["transport"] == "lossy"
