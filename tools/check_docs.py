#!/usr/bin/env python3
"""Execute the ``python`` code blocks in README.md, EXPERIMENTS.md and
docs/*.md.

Documentation that cannot run rots silently; this keeps every fenced
``python`` block a working program against the current source tree.

Rules:

- Only blocks fenced exactly as ```` ```python ```` are executed; bash,
  text, and output blocks are ignored.
- A block preceded (within two lines) by the marker comment
  ``<!-- check-docs: skip -->`` is skipped — for illustrative fragments
  that are deliberately incomplete.
- Each block runs in a fresh namespace, in a temporary working
  directory so example output files don't litter the checkout.
- Blocks are found with the same regex per file; a file with no python
  blocks passes trivially.

Exit status is the number of failing blocks (0 = all good).
"""

from __future__ import annotations

import contextlib
import os
import re
import sys
import tempfile
import traceback
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
SKIP_MARKER = "<!-- check-docs: skip -->"
FENCE = re.compile(r"^```python[ \t]*$")


def python_blocks(text: str):
    """Yield (start_line, source) for each runnable ```python block."""
    lines = text.splitlines()
    index = 0
    while index < len(lines):
        if FENCE.match(lines[index]):
            recent = "\n".join(lines[max(0, index - 2):index])
            start = index + 1
            body = []
            index += 1
            while index < len(lines) and lines[index].rstrip() != "```":
                body.append(lines[index])
                index += 1
            if SKIP_MARKER not in recent:
                yield start + 1, "\n".join(body)
        index += 1


def run_block(path: Path, line: int, source: str) -> bool:
    label = f"{path.relative_to(ROOT)}:{line}"
    try:
        code = compile(source, str(label), "exec")
        with tempfile.TemporaryDirectory() as scratch:
            cwd = os.getcwd()
            os.chdir(scratch)
            try:
                with contextlib.redirect_stdout(open(os.devnull, "w")):
                    exec(code, {"__name__": "__check_docs__"})
            finally:
                os.chdir(cwd)
    except Exception:
        print(f"FAIL {label}")
        traceback.print_exc()
        return False
    print(f"ok   {label}")
    return True


def main() -> int:
    sys.path.insert(0, str(ROOT / "src"))
    targets = [
        ROOT / "README.md",
        ROOT / "EXPERIMENTS.md",
        *sorted((ROOT / "docs").glob("*.md")),
    ]
    failures = 0
    for path in targets:
        if not path.exists():
            continue
        for line, source in python_blocks(path.read_text(encoding="utf-8")):
            if not run_block(path, line, source):
                failures += 1
    print(f"{failures} failing block(s)" if failures else "all doc blocks ran")
    return failures


if __name__ == "__main__":
    raise SystemExit(main())
