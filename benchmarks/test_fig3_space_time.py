"""FIG3 — Figure 3: storage utilization with demand paging.

The figure shades one program's storage occupancy over real time,
alternating "program active" and "program awaiting page" intervals, and
the text draws the moral: "If page fetching is a slow process, a large
part of the space-time product for a program may well be due to space
occupied while the program is inactive awaiting further pages," while
"demand paging ... can be quite effective ... when the time taken to
fetch a page is very small."

The experiment reruns the same program trace while sweeping the page
fetch time and prints the space-time product decomposed into its active
and waiting components.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import ascii_bar, format_table
from repro.paging import LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import phased_trace

FETCH_TIMES = [10, 100, 1_000, 10_000, 100_000]
FRAMES = 10   # at least the working set: faults cluster at phase changes
PAGE_SIZE = 512


def run_experiment() -> list[tuple[int, int, int, int, float]]:
    """(fetch time, active ST, waiting ST, total ST, waiting share)."""
    rows = []
    trace = phased_trace(
        pages=24, length=1_500, working_set=8, phase_length=250, seed=5
    )
    for fetch_time in FETCH_TIMES:
        summary = MultiprogrammingSimulator(
            [ProgramSpec("program", trace, FRAMES, LruPolicy())],
            RoundRobinScheduler(quantum=100),
            fetch_time=fetch_time,
            page_size=PAGE_SIZE,
        ).run()
        breakdown = summary.programs[0].space_time
        rows.append(
            (fetch_time, breakdown.active, breakdown.waiting,
             breakdown.total, breakdown.waiting_share)
        )
    return rows


def test_fig3_space_time_product(benchmark):
    rows = benchmark(run_experiment)

    table = format_table(
        ["fetch time", "active ST", "waiting ST", "total ST", "waiting share"],
        rows,
        title="FIG3  Space-time product vs page-fetch time "
              "(one program, demand paging)",
    )
    bars = "\n".join(
        f"  fetch={fetch:>7}  waiting |{ascii_bar(share, 1.0)}| {share:.2f}"
        for fetch, _, _, _, share in rows
    )
    emit(table + "\n" + bars)

    shares = [share for *_, share in rows]
    totals = [total for _, _, _, total, _ in rows]
    # The waiting share grows monotonically with fetch time...
    assert all(a <= b for a, b in zip(shares, shares[1:]))
    # ...fast fetches keep waiting minor; slow fetches make it dominant.
    assert shares[0] < 0.5
    assert shares[-1] > 0.9
    # And the total space-time product inflates by orders of magnitude.
    assert totals[-1] > totals[0] * 50
