"""FIG2 — Figure 2: the simple (one-level) mapping scheme.

The figure's path: the high bits of the name index a table of block
addresses; the low bits pass through as the offset.  The experiment
measures what the scheme costs — extra storage references per access —
against the register-pair baseline, and shows how an associative memory
recovers the loss (previewing FIG4).
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import AssociativeMemory, PageTable, RelocationLimitRegister
from repro.metrics import format_table
from repro.workload import phased_trace

PAGE_SIZE = 512
PAGES = 64
REFERENCES = 2_000


def run_experiment() -> list[tuple[str, int, float]]:
    """(scheme, total mapping references, per-access overhead)."""
    trace = phased_trace(
        pages=PAGES, length=REFERENCES, working_set=8, phase_length=400,
        seed=11,
    )
    rows: list[tuple[str, int, float]] = []

    # Baseline: relocation/limit registers (no storage references).
    pair = RelocationLimitRegister(base=0, limit=PAGES * PAGE_SIZE)
    for page in trace:
        pair.translate(page * PAGE_SIZE)
    rows.append(("relocation+limit registers", 0, 0.0))

    # Figure 2's table mapping, with and without an associative memory.
    for label, tlb in (
        ("block table (Figure 2)", None),
        ("block table + 8-entry associative memory", AssociativeMemory(8)),
    ):
        table = PageTable(
            page_size=PAGE_SIZE, pages=PAGES, table_access_cycles=1,
            associative_memory=tlb,
        )
        for page in range(PAGES):
            table.map(page, (page * 7) % PAGES)
        for page in trace:
            table.translate(page * PAGE_SIZE)
        rows.append(
            (label, table.mapping_cycles_total,
             table.mapping_cycles_total / REFERENCES)
        )
    return rows


def test_fig2_simple_mapping(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["addressing scheme", "mapping refs", "refs/access"],
        rows,
        title="FIG2  Cost of the simple mapping scheme "
              f"({REFERENCES} accesses, locality trace)",
    ))

    baseline, table_only, table_tlb = rows
    # Registers cost nothing; the table costs one reference per access.
    assert baseline[1] == 0
    assert table_only[2] == 1.0
    # The associative memory removes most of the overhead on a locality
    # trace — the paper's "reduction of addressing overhead" facility.
    assert table_tlb[1] < table_only[1] * 0.25
