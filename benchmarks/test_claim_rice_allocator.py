"""CL-RICE — The Appendix A.4 allocation scheme, measured.

The Rice scheme's distinctive costs and behaviours:

- every active block carries a back-reference word (overhead),
- the inactive chain is searched in freed order (not address order), so
  holes are found in LIFO-ish order and the chain can grow long,
- adjacent inactive blocks are combined only when a search fails,
- replacement is iterative.

The experiment drives the Rice allocator and a best-fit free list with
the same request stream and prints overhead words, search costs, chain
behaviour, and combine/replacement activity.
"""

from __future__ import annotations

from conftest import emit

from repro.alloc import FreeListAllocator, RiceAllocator, fragmentation_stats
from repro.errors import OutOfMemory
from repro.metrics import format_table
from repro.workload import exponential_requests, request_schedule

CAPACITY = 40_000


def drive(allocator) -> tuple[int, int]:
    requests = exponential_requests(
        1_000, mean_size=350, mean_lifetime=90, max_size=4_000, seed=53
    )
    live = {}
    failures = 0
    for _, action, request in request_schedule(requests):
        if action == "allocate":
            try:
                live[id(request)] = allocator.allocate(request.size)
            except OutOfMemory:
                failures += 1
        elif id(request) in live:
            allocator.free(live.pop(id(request)))
    return failures, len(requests)


def run_experiment() -> dict[str, dict[str, float]]:
    rice = RiceAllocator(CAPACITY, back_reference_words=1)
    rice_failures, requests = drive(rice)
    best_fit = FreeListAllocator(CAPACITY, policy="best_fit")
    best_failures, _ = drive(best_fit)

    return {
        "rice": {
            "failures": rice_failures,
            "search_per_request": rice.counters.search_steps / requests,
            "overhead_words": rice.counters.requests,   # one per allocation
            "combines": rice.combines,
            "chain_length": rice.chain_length,
            "external_frag": fragmentation_stats(rice).external_fragmentation,
        },
        "best_fit": {
            "failures": best_failures,
            "search_per_request": best_fit.counters.search_steps / requests,
            "overhead_words": 0,
            "combines": 0,   # coalescing is immediate, not an event
            "chain_length": len(best_fit.holes()),
            "external_frag": fragmentation_stats(best_fit).external_fragmentation,
        },
    }


def test_rice_against_best_fit(benchmark):
    results = benchmark(run_experiment)

    rows = [
        [name, r["failures"], r["search_per_request"], r["overhead_words"],
         r["combines"], r["chain_length"], r["external_frag"]]
        for name, r in results.items()
    ]
    emit(format_table(
        ["allocator", "failures", "search/request", "overhead words",
         "combines", "final holes", "external frag"],
        rows,
        title=f"CL-RICE  Appendix A.4 chain allocator vs best fit "
              f"({CAPACITY}-word storage)",
    ))

    rice, best = results["rice"], results["best_fit"]
    # The back reference is a real, countable overhead.
    assert rice["overhead_words"] > 0
    # Deferred coalescing actually fired (the A.4 combining step).
    assert rice["combines"] > 0
    # Both allocators serve the stream with few failures.
    assert rice["failures"] <= 1_000 * 0.1
    assert best["failures"] <= 1_000 * 0.1


def test_iterative_replacement_path(benchmark):
    """The full A.4 recourse: chain, combine, then sacrifice segments."""

    def run() -> tuple[int, int]:
        allocator = RiceAllocator(4_000)
        resident = [allocator.allocate(700) for _ in range(5)]   # ~3505 words
        block = allocator.allocate_with_replacement(
            2_000, victims=list(resident)
        )
        return allocator.replacement_rounds, block.size

    rounds, size = benchmark(run)
    emit(f"CL-RICE  iterative replacement: {rounds} rounds released "
         f"enough storage for a {size}-word block")
    assert rounds >= 2
    assert size == 2_001   # request + back reference
