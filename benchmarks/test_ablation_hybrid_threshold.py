"""ABL-HYBRID — The recommended system's large-segment threshold.

The authors' point (iii): "artificial contiguity used if it is
essential, to provide large segments, but with use of the mapping device
avoided in accessing small segments."  The hybrid system routes segments
by a size threshold; this ablation sweeps it on a mixed segment
population and reports the costs each side carries:

- mapping references (the paged side's per-access tax), and
- internal page waste (the paged side's fragmentation),
- against contiguous-region pressure (the small side's replacements).
"""

from __future__ import annotations

from conftest import emit

from repro.clock import Clock
from repro.core.hybrid import HybridSegmentedSystem
from repro.memory import BackingStore, StorageLevel
from repro.metrics import format_table
from repro.paging import LruPolicy

THRESHOLDS = [64, 256, 1_024, 4_096, 16_384]
SEGMENT_SIZES = [40, 120, 300, 700, 1_500, 3_000, 6_000, 12_000]
REFS_PER_SEGMENT = 60


def run_threshold_sweep() -> list[tuple[int, int, int, int, int]]:
    """(threshold, mapping refs, internal waste, small replacements, faults)."""
    rows = []
    for threshold in THRESHOLDS:
        clock = Clock()
        backing = BackingStore(
            StorageLevel("drum", 10**8, access_time=1_000,
                         transfer_rate=1.0),
            clock=clock,
        )
        system = HybridSegmentedSystem(
            small_region_words=16_384,
            frame_count=32,
            page_size=512,
            large_segment_threshold=threshold,
            small_policy=LruPolicy(),
            large_policy=LruPolicy(),
            backing=backing,
            clock=clock,
        )
        for index, size in enumerate(SEGMENT_SIZES):
            system.create(f"seg{index}", size)
        for sweep in range(REFS_PER_SEGMENT):
            for index, size in enumerate(SEGMENT_SIZES):
                system.access(f"seg{index}", (sweep * 97) % size)
        stats = system.stats()
        rows.append(
            (threshold, system.mapper.mapping_cycles_total,
             system.small.table.mapping_cycles_total,
             stats.internal_waste_words,
             system.small.stats.replacements, stats.faults)
        )
    return rows


def test_hybrid_threshold(benchmark):
    rows = benchmark(run_threshold_sweep)

    emit(format_table(
        ["threshold", "page-map refs", "descriptor refs", "page waste",
         "small replacements", "faults"],
        rows,
        title="ABL-HYBRID  Recommendation (iii): where to stop avoiding "
              "the mapping device",
    ))

    page_map = [m for _, m, _, _, _, _ in rows]
    waste = [w for _, _, _, w, _, _ in rows]
    replacements = [r for *_, r, _ in rows]
    # Raising the threshold moves segments off the paged side: page-map
    # walks and page waste both fall monotonically...
    assert all(a >= b for a, b in zip(page_map, page_map[1:]))
    assert all(a >= b for a, b in zip(waste, waste[1:]))
    # ...to zero at the all-contiguous end (mapping device fully avoided).
    assert page_map[-1] == 0
    assert page_map[0] > 0
    # But the trade is real: squeezing everything into the contiguous
    # region makes the small side thrash with replacements.
    assert replacements[-1] > replacements[0] + 100
