"""ABL-UNIT — Between uniform and arbitrary units: quantized blocks.

The paper's fourth characteristic is binary (uniform page frames vs
blocks sized to the request), but the design space between the poles is
real: the buddy system quantizes requests to powers of two, and the
boundary-tag method serves exact sizes with two words of overhead per
block.  This ablation runs one request stream across the whole spectrum
and prices each point: internal waste (quantization), external
fragmentation pressure (failures), and bookkeeping (search steps).
"""

from __future__ import annotations

from conftest import emit

from repro.alloc import (
    BoundaryTagAllocator,
    BuddyAllocator,
    FreeListAllocator,
)
from repro.alloc.stats import paging_internal_waste
from repro.errors import OutOfMemory
from repro.metrics import format_table
from repro.workload import exponential_requests, request_schedule

CAPACITY = 1 << 16   # 65,536 words (power of two for the buddy system)


def drive(allocator) -> tuple[int, int]:
    requests = exponential_requests(
        1_000, mean_size=300, mean_lifetime=100, max_size=4_000, seed=67
    )
    live = {}
    failures = 0
    for _, action, request in request_schedule(requests):
        if action == "allocate":
            try:
                live[id(request)] = allocator.allocate(request.size)
            except OutOfMemory:
                failures += 1
        elif id(request) in live:
            allocator.free(live.pop(id(request)))
    return failures, len(requests)


def run_experiment() -> list[tuple[str, int, int, float]]:
    """(scheme, failures, overhead/waste words at peak, search/request)."""
    rows = []

    exact = FreeListAllocator(CAPACITY, policy="best_fit")
    failures, requests = drive(exact)
    rows.append(("exact blocks (best fit)", failures, 0,
                 exact.counters.search_steps / requests))

    tagged = BoundaryTagAllocator(CAPACITY, policy="first_fit")
    failures, requests = drive(tagged)
    successes = requests - failures
    rows.append(
        ("exact + boundary tags", failures, 2 * successes,
         tagged.counters.search_steps / requests)
    )

    buddy = BuddyAllocator(CAPACITY, min_block=16)
    failures, requests = drive(buddy)
    # Internal waste across the whole stream: reserved - requested.
    reserved = buddy.counters.words_allocated
    rows.append(
        ("power-of-two (buddy)", failures, reserved,
         buddy.counters.search_steps / requests)
    )

    # Fully uniform frames, as a yardstick: per-request page waste.
    sizes = [r.size for r in exponential_requests(
        1_000, mean_size=300, mean_lifetime=100, max_size=4_000, seed=67
    )]
    wasted, _ = paging_internal_waste(sizes, page_size=512)
    rows.append(("uniform 512-word frames", 0, wasted, 0.0))
    return rows


def test_unit_quantization_spectrum(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["allocation scheme", "failures", "overhead words", "search/request"],
        rows,
        title="ABL-UNIT  From exact blocks to uniform frames: what each "
              "point on the spectrum pays",
    ))

    by_name = {row[0]: row for row in rows}
    # Boundary tags trade two words per block for cheaper searches than
    # best fit's full scan.
    assert (by_name["exact + boundary tags"][3]
            < by_name["exact blocks (best fit)"][3])
    # Uniform frames waste the most words; exact blocks waste none.
    assert by_name["uniform 512-word frames"][2] > 0
    assert by_name["exact blocks (best fit)"][2] == 0
    # Every scheme served the stream with bounded failures.
    for name, failures, *_ in rows:
        assert failures <= 100, name


def test_buddy_quantization_waste(benchmark):
    """The buddy system's rounding is measurable internal fragmentation."""

    def run() -> float:
        buddy = BuddyAllocator(CAPACITY, min_block=16)
        live = []
        requests = exponential_requests(
            300, mean_size=300, mean_lifetime=10**9,   # never freed
            max_size=2_000, seed=73,
        )
        for request in requests:
            try:
                live.append(buddy.allocate(request.size))
            except OutOfMemory:
                break
        requested = sum(a.size for a in live)
        reserved = sum(buddy.block_size(a) for a in live)
        return (reserved - requested) / reserved

    waste_share = benchmark(run)
    emit(f"ABL-UNIT  buddy rounding waste: {waste_share:.1%} of reserved "
         "words back no request")
    # Power-of-two rounding wastes a notable share (theory: ~25% mean
    # for uniformly placed sizes) but far less than whole 512-word
    # frames would on the same stream.
    assert 0.05 < waste_share < 0.45
