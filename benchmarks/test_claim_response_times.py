"""CL-RESPONSE — Time-sharing and response times.

"Similarly, such coexistence is desirable if time-sharing techniques are
to be used to improve response times to individual users."

Interactive users alternate reference bursts with think time.  The
experiment compares serving users one after another (batch: each user's
whole session runs before the next) against coexistence in working
storage (all users' programs resident, interleaved at interaction
grain) — the response-time argument for multiprogrammed time-sharing.
A second sweep shows contention: pile on more coexisting users than the
processor and drum can absorb and responses stretch again.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import format_table
from repro.paging import LruPolicy
from repro.sim import (
    MultiprogrammingSimulator,
    ProgramSpec,
    RoundRobinScheduler,
    Think,
)

USERS = 4
INTERACTIONS = 5
BURST = 30
THINK = 3_000
FETCH = 200


def interactive_trace(seed: int) -> list:
    trace = []
    base = seed * 4
    for index in range(INTERACTIONS):
        pages = [base, base + 1, base + 2]
        trace.extend(pages * (BURST // len(pages)))
        if index < INTERACTIONS - 1:
            trace.append(Think(THINK))
    return trace


def run_mix(degree: int, stagger: int = 0) -> list[float]:
    """Mean response time per user for ``degree`` coexisting users."""
    specs = [
        ProgramSpec(
            f"user{i}", interactive_trace(i), 4, LruPolicy(),
            arrival=i * stagger,
        )
        for i in range(degree)
    ]
    summary = MultiprogrammingSimulator(
        specs, RoundRobinScheduler(quantum=25), fetch_time=FETCH,
    ).run()
    return [p.mean_response_time for p in summary.programs]


def run_batch() -> float:
    """The no-coexistence alternative: users served strictly in series.

    Each session runs alone; a user's *response* time still only spans
    their interactions, but their session cannot start until every
    earlier user's whole session (thinks included) has finished — that
    serial delay is charged to their first interaction.
    """
    offset = 0
    response_times: list[float] = []
    for index in range(USERS):
        specs = [ProgramSpec(f"user{index}", interactive_trace(index), 4,
                             LruPolicy())]
        summary = MultiprogrammingSimulator(
            specs, RoundRobinScheduler(quantum=25), fetch_time=FETCH,
        ).run()
        result = summary.programs[0]
        times = list(result.response_times)
        times[0] += offset   # waited for every earlier session
        response_times.extend(times)
        offset += result.completion_time
    return sum(response_times) / len(response_times)


def run_experiment() -> list[tuple[str, float]]:
    rows = [("serial sessions (no coexistence)", run_batch())]
    coexisting = run_mix(USERS)
    rows.append(
        ("coexisting in working storage",
         sum(coexisting) / len(coexisting))
    )
    return rows


def test_coexistence_improves_response_times(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["service organization", "mean response time (cycles)"],
        rows,
        title=f"CL-RESPONSE  {USERS} interactive users, "
              f"{INTERACTIONS} interactions each, think={THINK}",
    ))

    serial, coexisting = rows
    # Coexistence slashes response times: later users are not queued
    # behind whole earlier sessions (think time and all).
    assert coexisting[1] < serial[1] / 5


def test_contention_stretches_responses(benchmark):
    def run() -> list[tuple[int, float]]:
        rows = []
        for degree in (1, 4, 16):
            times = run_mix(degree)
            rows.append((degree, sum(times) / len(times)))
        return rows

    rows = benchmark(run)
    emit(format_table(
        ["coexisting users", "mean response time"],
        rows,
        title="CL-RESPONSE  Contention: responses stretch as the mix "
              "outgrows the processor",
    ))
    by_degree = dict(rows)
    # A lone user sets the floor; a heavily loaded mix is clearly slower.
    assert by_degree[16] > by_degree[1]
