"""SURVEY — Appendix A.1–A.7: the machine museum on a common workload.

The appendix "is intended to illustrate the many combinations of
functional capability, underlying strategies, and special hardware
facilities that have been chosen by system designers."  The experiment
prints the classification matrix (checked against the paper's own
classifications in tests/test_machines.py) and runs every machine on an
identical segment workload, reporting the measured consequences of each
design.
"""

from __future__ import annotations

from conftest import emit

from repro.machines import all_machines, survey_matrix
from repro.metrics import format_table
from repro.workload import phased_trace

SEGMENTS = 8
SEGMENT_WORDS = 600
REFERENCES = 800


def run_experiment() -> list[tuple[str, int, int, int, float, float]]:
    """(machine, faults, wait, mapping refs, TLB hit rate, waste words)."""
    rows = []
    trace = phased_trace(
        pages=SEGMENTS, length=REFERENCES, working_set=3, phase_length=160,
        seed=59,
    )
    for machine in all_machines():
        system = machine.system
        for index in range(SEGMENTS):
            system.create(f"seg{index}", SEGMENT_WORDS)
        for position, segment in enumerate(trace):
            system.access(
                f"seg{segment}", (position * 37) % SEGMENT_WORDS,
                write=(position % 13 == 0),
            )
        stats = system.stats()
        rows.append(
            (machine.name, stats.faults, stats.fetch_wait_cycles,
             stats.mapping_cycles, stats.associative_hit_rate,
             stats.internal_waste_words)
        )
    return rows


def test_survey_matrix_and_workload(benchmark):
    rows = benchmark(run_experiment)

    emit(survey_matrix(all_machines()))
    emit(format_table(
        ["machine", "faults", "wait cycles", "mapping refs", "TLB hits",
         "internal waste"],
        rows,
        title=f"SURVEY  Common workload: {SEGMENTS} segments of "
              f"{SEGMENT_WORDS} words, {REFERENCES} references",
    ))

    by_name = {row[0]: row for row in rows}
    every = {name: by_name[name] for name in by_name}
    assert len(every) == 7

    # Machines with associative memories show hits; those without, none.
    assert by_name["Burroughs B8500"][4] > 0.5
    assert by_name["Burroughs B5000"][4] == 0.0
    # The B8500's scratchpad cuts mapping references vs the B5000.
    assert by_name["Burroughs B8500"][3] < by_name["Burroughs B5000"][3]
    # Segment-allocated machines waste nothing inside units;
    # paged machines show internal waste.
    assert by_name["Burroughs B5000"][5] == 0
    assert by_name["Ferranti ATLAS"][5] > 0
    # MULTICS's 64-word small pages waste less per small segment than the
    # 360/67's single 1024-word frames on the same segments.
    assert (by_name["MULTICS (GE 645)"][5]
            < by_name["IBM System/360 Model 67 (32-bit)"][5])
    # Every machine actually exercised demand fetching.
    for name, faults, *_ in rows:
        assert faults >= 3, name
