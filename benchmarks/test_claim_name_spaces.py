"""CL-NAMES — Symbolically vs linearly segmented name spaces.

"Thus one does not need to search a dictionary for a group of available
contiguous segment names, and more importantly, one does not have to
reallocate names when the dictionary has become fragmented ...  A
symbolically segmented name space consequently involves far less
bookkeeping than a linearly segmented name space."

Identical group-churn workloads drive both name-space kinds; the table
counts dictionary search steps, forced reallocations, and segments
renamed (every rename invalidates stored names elsewhere).
"""

from __future__ import annotations

import random

from conftest import emit

from repro.metrics import format_table
from repro.namespace import (
    LinearlySegmentedNameSpace,
    SymbolicallySegmentedNameSpace,
)

ROUNDS = 300
SEGMENT_NAME_BITS = 8    # 256 segment numbers
LIVE_GROUP_CAP = 25      # steady-state pressure without true exhaustion
GROUP_SIZES = [1, 2, 4, 8, 16]


def churn(space) -> None:
    """Create/destroy groups of related segments with varying sizes."""
    rng = random.Random(47)
    live: list[tuple[str, int]] = []
    for round_ in range(ROUNDS):
        group = f"group{round_}"
        group_size = rng.choice(GROUP_SIZES)
        extents = [rng.randint(16, 512) for _ in range(group_size)]
        space.create_group(group, extents)
        live.append((group, group_size))
        # Destroy a random older group about half the time, and always
        # when the live population hits the cap (a steady-state mix).
        while live and (
            len(live) > LIVE_GROUP_CAP or rng.random() < 0.55
        ):
            victim, _ = live.pop(rng.randrange(len(live)))
            space.destroy_group(victim)
            if rng.random() < 0.8:
                break


def run_experiment() -> list[tuple[str, int, int, int]]:
    symbolic = SymbolicallySegmentedNameSpace()
    churn(symbolic)

    linear = LinearlySegmentedNameSpace(
        segment_name_bits=SEGMENT_NAME_BITS, auto_reallocate=True
    )
    churn(linear)

    return [
        ("symbolic (B5000)", symbolic.search_steps, symbolic.reallocations, 0),
        ("linear (360/67)", linear.search_steps, linear.reallocations,
         linear.segments_renamed),
    ]


def test_name_space_bookkeeping(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["segment naming", "dictionary searches", "reallocations",
         "segments renamed"],
        rows,
        title=f"CL-NAMES  Bookkeeping under {ROUNDS} rounds of group churn "
              f"({1 << SEGMENT_NAME_BITS} segment numbers available)",
    ))

    symbolic, linear = rows
    # "Far less bookkeeping": the symbolic space does none at all.
    assert symbolic[1] == 0
    assert symbolic[2] == 0
    # The linear space searches constantly and is forced to renumber.
    assert linear[1] > 500
    assert linear[2] >= 1
    assert linear[3] > 0
