"""CL-RELOC — Stored absolute addresses make relocation expensive.

"The ability to relocate (i.e. move) information requires knowledge of
the whereabouts of any actual physical storage addresses ... since these
will have to be updated.  The most convenient solution is to insure that
there are no such stored absolute addresses, because all access to
information is via, for example, base registers or an address mapping
device."

The experiment compacts a fragmented store full of pointer-rich images
under both disciplines and counts the stored words patched: zero under
base registers, every stored pointer under absolute addressing — and
for images whose address words were never identified, relocation is
simply impossible (the image is pinned, and compaction must work around
it).
"""

from __future__ import annotations

from conftest import emit

from repro.addressing.relocation_problem import (
    RelocatableImage,
    RelocationUnsafe,
)
from repro.memory import PhysicalMemory
from repro.metrics import format_table

IMAGES = 20
IMAGE_SIZE = 40
POINTERS_PER_IMAGE = 10


def build_store(discipline: str, track: bool = True):
    memory = PhysicalMemory(IMAGES * IMAGE_SIZE * 2)
    images = []
    for index in range(IMAGES):
        image = RelocatableImage(
            memory, base=index * IMAGE_SIZE * 2, size=IMAGE_SIZE,
            discipline=discipline, track_address_words=track,
        )
        for pointer in range(POINTERS_PER_IMAGE):
            image.store_pointer(pointer, IMAGE_SIZE - 1 - pointer)
        image.store_value(IMAGE_SIZE - 1, ("sentinel", index))
        images.append(image)
    return memory, images


def compact_images(images) -> tuple[int, int]:
    """Slide every image downward; returns (words patched, images pinned)."""
    cursor = 0
    patched = 0
    pinned = 0
    for image in images:
        if image.base != cursor:
            try:
                patched += image.move(cursor)
            except RelocationUnsafe:
                pinned += 1
                cursor = image.base   # compaction must skip over it
        cursor += image.size
    return patched, pinned


def run_experiment() -> list[tuple[str, int, int, bool]]:
    """(discipline, words patched, images pinned, data intact)."""
    rows = []
    for label, discipline, track in (
        ("base registers (no stored addresses)", "based", True),
        ("absolute addresses, loader-tracked", "absolute", True),
        ("absolute addresses, untracked", "absolute", False),
    ):
        _, images = build_store(discipline, track)
        patched, pinned = compact_images(images)
        intact = all(
            image.follow_pointer(0)[0] == "sentinel"
            for image in images
        )
        rows.append((label, patched, pinned, intact))
    return rows


def test_relocation_disciplines(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["addressing discipline", "words patched", "images pinned",
         "data intact"],
        rows,
        title=f"CL-RELOC  Compacting {IMAGES} pointer-rich images "
              f"({POINTERS_PER_IMAGE} stored pointers each)",
    ))

    based, tracked, untracked = rows
    # Base registers: relocation is free of patching, and correct.
    assert based[1] == 0 and based[3]
    # Tracked absolute addresses: every stored pointer of every moved
    # image must be found and updated (the first image is already in
    # place, so 19 of 20 move).
    assert tracked[1] == (IMAGES - 1) * POINTERS_PER_IMAGE
    assert tracked[3]
    # Untracked absolute addresses: the images cannot be moved at all —
    # compaction leaves them pinned (yet nothing dangles).
    assert untracked[2] == IMAGES - 1
    assert untracked[3]
