"""CL-REPL — Replacement strategies (the Belady [1] evaluation).

"The strategy should seek to avoid the overlaying of information which
may be required again in the near future.  Program and information
structure ... or recent history of usage of information may guide the
allocator toward this ideal."

Every implemented policy — including the appendix machines' algorithms
(ATLAS learning, M44 class-random, B5000 cyclic) — runs the same
locality trace at several memory sizes; Belady's OPT provides the
unbeatable lower envelope.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import format_table
from repro.paging import BeladyOptimalPolicy, make_policy, simulate_trace
from repro.workload import cyclic_trace, phased_trace

POLICIES = ["fifo", "lru", "clock", "random", "lfu", "atlas", "m44",
            "working_set"]
FRAME_SWEEP = [4, 6, 8, 12, 16]
PAGES = 32
LENGTH = 4_000


def run_experiment() -> dict[str, list[float]]:
    """policy -> fault rate per frame count (plus 'opt')."""
    trace = phased_trace(
        pages=PAGES, length=LENGTH, working_set=7, phase_length=350,
        locality=0.9, seed=41,
    )
    results: dict[str, list[float]] = {}
    for name in POLICIES:
        results[name] = [
            simulate_trace(trace, frames, make_policy(name)).fault_rate
            for frames in FRAME_SWEEP
        ]
    results["opt"] = [
        simulate_trace(trace, frames, BeladyOptimalPolicy(trace)).fault_rate
        for frames in FRAME_SWEEP
    ]
    return results


def test_replacement_policies(benchmark):
    results = benchmark(run_experiment)

    rows = [
        [name] + rates
        for name, rates in sorted(results.items(), key=lambda kv: kv[1][-1])
    ]
    emit(format_table(
        ["policy"] + [f"{f} frames" for f in FRAME_SWEEP],
        rows,
        title=f"CL-REPL  Fault rate vs memory size "
              f"(locality trace, {LENGTH} references, {PAGES} pages)",
    ))

    # OPT is the lower envelope everywhere.
    for name in POLICIES:
        for opt_rate, rate in zip(results["opt"], results[name]):
            assert opt_rate <= rate + 1e-12, name
    # Usage-history policies beat FIFO at the tightest size on a
    # locality trace ("recent history of usage may guide the allocator").
    assert results["lru"][0] <= results["fifo"][0] * 1.15
    # More memory never hurts LRU (stack property).
    lru = results["lru"]
    assert all(a >= b for a, b in zip(lru, lru[1:]))


def test_atlas_learning_on_loops(benchmark):
    """The learning program's home turf: looping reference patterns.

    ATLAS learns each page's re-use period, so on a program alternating
    between a loop and one-shot data sweeps it protects the loop pages.
    """

    def run() -> dict[str, int]:
        # Loop over pages 0-3, with a sweep of one-shot pages in between.
        trace = []
        sweep_page = 8
        for round_ in range(120):
            trace.extend([0, 1, 2, 3] * 3)
            trace.append(sweep_page)
            sweep_page += 1
        faults = {}
        for name in ("atlas", "fifo", "lru"):
            faults[name] = simulate_trace(trace, 5, make_policy(name)).faults
        return faults

    faults = benchmark(run)
    emit(format_table(
        ["policy", "faults"],
        sorted(faults.items(), key=lambda kv: kv[1]),
        title="CL-REPL  Loop + sweep trace: the ATLAS learning program "
              "protects looping pages",
    ))
    assert faults["atlas"] <= faults["fifo"]
    assert faults["atlas"] <= faults["lru"]


def test_cyclic_trace_pathology(benchmark):
    """LRU's classic failure: a loop one page bigger than memory."""

    def run() -> dict[str, float]:
        trace = cyclic_trace(pages=9, length=2_000)
        return {
            name: simulate_trace(trace, 8, make_policy(name)).fault_rate
            for name in ("lru", "fifo", "random")
        }

    rates = benchmark(run)
    emit(format_table(
        ["policy", "fault rate"],
        sorted(rates.items(), key=lambda kv: kv[1]),
        title="CL-REPL  Cyclic trace (loop of 9 pages, 8 frames): "
              "LRU and FIFO thrash; random does not",
    ))
    assert rates["lru"] > 0.99
    assert rates["random"] < rates["lru"]
