"""FIG1 — Figure 1: artificial name contiguity.

The figure shows a contiguous range of names mapped onto scattered
blocks of absolute addresses.  The experiment builds exactly that
mapping, prints the name→address table, and verifies the defining
property: names are contiguous, addresses are not — yet every access
resolves correctly.
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import PageTable
from repro.metrics import format_table

PAGE_SIZE = 512
PAGES = 8
# A deliberately scrambled frame assignment, as in the figure.
FRAME_OF_PAGE = [5, 2, 7, 0, 6, 1, 4, 3]


def build_mapping() -> PageTable:
    table = PageTable(page_size=PAGE_SIZE, pages=PAGES)
    for page, frame in enumerate(FRAME_OF_PAGE):
        table.map(page, frame)
    return table


def run_experiment() -> list[tuple[int, int, int, int]]:
    """(first name, last name, first address, last address) per page."""
    table = build_mapping()
    rows = []
    for page in range(PAGES):
        first_name = page * PAGE_SIZE
        last_name = first_name + PAGE_SIZE - 1
        first_address = table.translate(first_name).address
        last_address = table.translate(last_name).address
        rows.append((first_name, last_name, first_address, last_address))
    return rows


def test_fig1_artificial_contiguity(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["names (from)", "names (to)", "addresses (from)", "addresses (to)"],
        rows,
        title="FIG1  Artificial name contiguity: one contiguous name space, "
              "scattered blocks",
    ))

    # Names are contiguous across the whole space...
    for (previous, current) in zip(rows, rows[1:]):
        assert current[0] == previous[1] + 1
    # ...while the corresponding absolute addresses are NOT contiguous.
    address_breaks = sum(
        1 for previous, current in zip(rows, rows[1:])
        if current[2] != previous[3] + 1
    )
    assert address_breaks > 0, "the mapping must scatter blocks"
    # And every block's span is internally contiguous (within-page
    # address arithmetic works).
    for first_name, last_name, first_address, last_address in rows:
        assert last_address - first_address == last_name - first_name


def test_fig1_every_name_resolves(benchmark):
    table = build_mapping()

    def sweep() -> int:
        resolved = 0
        for name in range(0, PAGES * PAGE_SIZE, 64):
            table.translate(name)
            resolved += 1
        return resolved

    resolved = benchmark(sweep)
    assert resolved == PAGES * PAGE_SIZE // 64
