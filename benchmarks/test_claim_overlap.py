"""CL-OVERLAP — Overlapping page waits with other programs.

"A large space-time product will not overly affect the performance (as
opposed to utilization) of a system if the time spent on fetching pages
can normally be overlapped with the execution of other programs."  The
M44/44X appendix: page transfers "can in general be overlapped by
switching the M44 to another 44X program."

The experiment sweeps the multiprogramming degree at two fetch speeds
and prints CPU utilization — the payoff surface for multiprogramming.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import ascii_bar, format_table
from repro.paging import LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import phased_trace

DEGREES = [1, 2, 4, 8]
FETCH_TIMES = [200, 2_000]
FRAMES_PER_PROGRAM = 4


def run_experiment() -> list[tuple[int, int, float]]:
    """(fetch time, degree, cpu utilization)."""
    rows = []
    for fetch_time in FETCH_TIMES:
        for degree in DEGREES:
            specs = [
                ProgramSpec(
                    f"p{i}",
                    phased_trace(pages=16, length=600, working_set=5,
                                 phase_length=120, seed=100 + i),
                    FRAMES_PER_PROGRAM,
                    LruPolicy(),
                )
                for i in range(degree)
            ]
            summary = MultiprogrammingSimulator(
                specs, RoundRobinScheduler(quantum=50), fetch_time=fetch_time
            ).run()
            rows.append((fetch_time, degree, summary.cpu_utilization))
    return rows


def test_overlap_raises_utilization(benchmark):
    rows = benchmark(run_experiment)

    table = format_table(
        ["fetch time", "degree", "cpu utilization"],
        rows,
        title="CL-OVERLAP  CPU utilization vs multiprogramming degree",
    )
    bars = "\n".join(
        f"  fetch={fetch:>5} degree={degree}  |{ascii_bar(util, 1.0)}| {util:.2f}"
        for fetch, degree, util in rows
    )
    emit(table + "\n" + bars)

    by_key = {(fetch, degree): util for fetch, degree, util in rows}
    for fetch_time in FETCH_TIMES:
        series = [by_key[(fetch_time, degree)] for degree in DEGREES]
        # Utilization rises monotonically with degree...
        assert all(a <= b + 1e-9 for a, b in zip(series, series[1:]))
        # ...and multiprogramming recovers a large factor over degree 1.
        assert series[-1] > series[0] * 2
    # Slow fetches need *more* coexisting programs for the same
    # utilization: at every degree the fast-fetch mix is ahead.
    for degree in DEGREES:
        assert by_key[(FETCH_TIMES[0], degree)] >= by_key[(FETCH_TIMES[1], degree)]


def test_sufficient_storage_reduces_demand(benchmark):
    """"This will certainly be the case when there is sufficient working
    storage space for each program so that further pages are not
    demanded too frequently."""

    def run() -> tuple[float, float]:
        utilizations = []
        for frames in (2, 8):
            specs = [
                ProgramSpec(
                    f"p{i}",
                    phased_trace(pages=16, length=600, working_set=5,
                                 phase_length=120, seed=200 + i),
                    frames,
                    LruPolicy(),
                )
                for i in range(2)
            ]
            summary = MultiprogrammingSimulator(
                specs, RoundRobinScheduler(quantum=50), fetch_time=2_000
            ).run()
            utilizations.append(summary.cpu_utilization)
        return tuple(utilizations)

    starved, comfortable = benchmark(run)
    emit(
        "CL-OVERLAP  2 programs, fetch=2000: "
        f"cpu util with 2 frames each = {starved:.3f}, "
        f"with 8 frames each = {comfortable:.3f}"
    )
    assert comfortable > starved * 2
