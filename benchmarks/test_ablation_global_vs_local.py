"""ABL-GLOBAL — Partitioned (local) vs shared-pool (global) replacement.

The paper's conclusion (i): "storage allocation strategies must be fully
integrated with the overall strategies for allocating and scheduling the
computer system resources."  Whether core is carved into per-program
partitions or managed as one global pool is exactly such a coupling:

- global pools adapt frame shares to momentary need (good when working
  sets differ and shift),
- but let one thrashing program steal a well-behaved program's frames
  (the interference local partitions prevent).

Both effects are measured on the same mixes.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import format_table
from repro.paging import FifoPolicy, LruPolicy
from repro.sim import MultiprogrammingSimulator, ProgramSpec, RoundRobinScheduler
from repro.workload import cyclic_trace, phased_trace

FETCH_TIME = 300
TOTAL_FRAMES = 12


def run_adaptive_mix() -> list[tuple[str, int, float]]:
    """Unequal, shifting working sets: the global pool's home turf."""
    def specs():
        return [
            ProgramSpec("wide", phased_trace(pages=16, length=500,
                                             working_set=8, phase_length=250,
                                             seed=71),
                        TOTAL_FRAMES // 2, LruPolicy()),
            ProgramSpec("narrow", phased_trace(pages=16, length=500,
                                               working_set=2, phase_length=250,
                                               seed=72),
                        TOTAL_FRAMES // 2, LruPolicy()),
        ]

    rows = []
    partitioned = MultiprogrammingSimulator(
        specs(), RoundRobinScheduler(50), fetch_time=FETCH_TIME
    ).run()
    rows.append(("partitioned 6+6", sum(p.faults for p in partitioned.programs),
                 partitioned.cpu_utilization))
    shared = MultiprogrammingSimulator(
        specs(), RoundRobinScheduler(50), fetch_time=FETCH_TIME,
        shared_frames=TOTAL_FRAMES, shared_policy=LruPolicy(),
    ).run()
    rows.append(("global pool of 12", sum(p.faults for p in shared.programs),
                 shared.cpu_utilization))
    return rows


def run_interference_mix() -> list[tuple[str, int, int]]:
    """A thrashing sweeper beside a tight loop: partitioning's home turf."""
    def specs():
        return [
            ProgramSpec("loop", cyclic_trace(pages=2, length=8_000), 2,
                        LruPolicy()),
            ProgramSpec("sweeper", cyclic_trace(pages=20, length=400), 10,
                        LruPolicy()),
        ]

    rows = []
    partitioned = MultiprogrammingSimulator(
        specs(), RoundRobinScheduler(50), fetch_time=FETCH_TIME
    ).run()
    by_name = {p.name: p for p in partitioned.programs}
    rows.append(("partitioned 2+10", by_name["loop"].faults,
                 by_name["sweeper"].faults))
    shared = MultiprogrammingSimulator(
        specs(), RoundRobinScheduler(50), fetch_time=FETCH_TIME,
        shared_frames=TOTAL_FRAMES, shared_policy=FifoPolicy(),
    ).run()
    by_name = {p.name: p for p in shared.programs}
    rows.append(("global FIFO pool of 12", by_name["loop"].faults,
                 by_name["sweeper"].faults))
    return rows


def test_global_pool_adapts(benchmark):
    rows = benchmark(run_adaptive_mix)

    emit(format_table(
        ["core organization", "total faults", "cpu utilization"],
        rows,
        title="ABL-GLOBAL  Unequal working sets (8-page + 2-page): the "
              "global pool reallocates frames to need",
    ))

    partitioned, shared = rows
    # The wide program is cramped in a fixed half; the pool gives it more.
    assert shared[1] <= partitioned[1]


def test_global_pool_interferes(benchmark):
    rows = benchmark(run_interference_mix)

    emit(format_table(
        ["core organization", "loop faults", "sweeper faults"],
        rows,
        title="ABL-GLOBAL  A sweeping program beside a tight loop: "
              "global replacement steals the loop's frames",
    ))

    partitioned, shared = rows
    # Partitioned: the loop pays only its 2 cold faults.
    assert partitioned[1] == 2
    # Global FIFO: the sweeper repeatedly evicts the loop's hot pages.
    assert shared[1] > partitioned[1]
