"""CL-PLACE — Placement strategies.

"A common and frequently satisfactory strategy is to place the
information in the smallest space which is sufficient to contain it
[best fit].  An alternative strategy, which involves less bookkeeping,
is to place large blocks of information starting at one end of storage
and small blocks starting at the other end [two ends]."

Identical request streams drive every placement policy; the table
reports fragmentation at end of run, allocation failures (requests a
policy could not place), and the bookkeeping cost (free-list elements
examined per request).
"""

from __future__ import annotations

from conftest import emit

from repro.alloc import FreeListAllocator, TwoEndsAllocator, fragmentation_stats
from repro.errors import OutOfMemory
from repro.metrics import format_table
from repro.workload import exponential_requests, request_schedule

CAPACITY = 60_000
POLICIES = ["first_fit", "best_fit", "worst_fit", "next_fit", "two_ends"]


def drive(allocator) -> tuple[int, int, float, float]:
    """Run the common stream.

    Returns (failures, requests, mean in-flight external fragmentation,
    peak external fragmentation) — fragmentation is sampled at every
    allocation, while the storage is loaded, not after it drains.
    """
    requests = exponential_requests(
        1_200, mean_size=500, mean_lifetime=120, max_size=6_000, seed=31
    )
    live = {}
    failures = 0
    frag_samples = []
    for _, action, request in request_schedule(requests):
        if action == "allocate":
            try:
                live[id(request)] = allocator.allocate(request.size)
            except OutOfMemory:
                failures += 1
            frag_samples.append(
                fragmentation_stats(allocator).external_fragmentation
            )
        elif id(request) in live:
            allocator.free(live.pop(id(request)))
    mean_frag = sum(frag_samples) / len(frag_samples)
    return failures, len(requests), mean_frag, max(frag_samples)


def run_experiment() -> list[tuple[str, float, float, int, float]]:
    """(policy, mean frag, peak frag, failures, search steps/request)."""
    rows = []
    for policy in POLICIES:
        if policy == "two_ends":
            allocator = TwoEndsAllocator(CAPACITY, size_threshold=1_000)
        else:
            allocator = FreeListAllocator(CAPACITY, policy=policy)
        failures, requests, mean_frag, peak_frag = drive(allocator)
        rows.append(
            (policy, mean_frag, peak_frag, failures,
             allocator.counters.search_steps / requests)
        )
    return rows


def test_placement_strategies(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["placement", "mean frag", "peak frag", "failures",
         "search/request"],
        rows,
        title=f"CL-PLACE  Placement policies on one request stream "
              f"({CAPACITY}-word storage)",
    ))

    by_policy = {row[0]: row for row in rows}
    # Best fit never fails more than worst fit on this stream.
    assert by_policy["best_fit"][3] <= by_policy["worst_fit"][3]
    # Two-ends involves less bookkeeping than best fit — the paper's
    # stated trade (its reuse lists are searched, but only one end's).
    assert by_policy["two_ends"][4] < by_policy["best_fit"][4]
    # Best fit searches every hole: the most bookkeeping of the fits.
    assert by_policy["best_fit"][4] >= by_policy["first_fit"][4]


def test_worst_fit_destroys_large_holes(benchmark):
    """The reason 'smallest sufficient' is the satisfactory default."""

    def run() -> tuple[int, int]:
        largest = {}
        for policy in ("best_fit", "worst_fit"):
            allocator = FreeListAllocator(20_000, policy=policy)
            live = []
            requests = exponential_requests(
                300, mean_size=400, mean_lifetime=40, max_size=3_000, seed=37
            )
            for _, action, request in request_schedule(requests):
                if action == "allocate":
                    try:
                        live.append(allocator.allocate(request.size))
                    except OutOfMemory:
                        pass
                elif live:
                    allocator.free(live.pop(0))
            largest[policy] = allocator.largest_hole
        return largest["best_fit"], largest["worst_fit"]

    best, worst = benchmark(run)
    emit(f"CL-PLACE  largest surviving hole: best_fit={best}, worst_fit={worst}")
    assert best >= worst
