"""CL-COMPACT — "The two main alternative courses of action".

"(i) to accept the decreased storage utilization, or (ii) to move
information around in storage so as to remove any unused spaces ...
When the average allocation request involves an amount of storage that
is quite small compared with the extent of physical storage, the former
course is often quite reasonable [Wald]."

The experiment drives one request stream at two mean request sizes
(small and large relative to storage) with compaction off and on.  The
claim compaction makes is precise: it eliminates *fragmentation
failures* — requests refused even though enough words are free, just
not contiguously.  The table reports those separately from genuine
capacity failures, alongside the words moved by the packing channel.
"""

from __future__ import annotations

from conftest import emit

from repro.alloc import FreeListAllocator, compact
from repro.errors import OutOfMemory
from repro.metrics import format_table
from repro.workload import exponential_requests, request_schedule

CAPACITY = 30_000


def drive(mean_size: int, use_compaction: bool) -> tuple[int, int, int, int]:
    """(successes, fragmentation failures, capacity failures, words moved)."""
    allocator = FreeListAllocator(CAPACITY, policy="first_fit")
    requests = exponential_requests(
        900, mean_size=mean_size, mean_lifetime=80,
        max_size=CAPACITY // 3, seed=43,
    )
    live = {}
    successes = frag_failures = capacity_failures = words_moved = 0
    for _, action, request in request_schedule(requests):
        if action == "free":
            if id(request) in live:
                allocator.free(live.pop(id(request)))
            continue
        try:
            live[id(request)] = allocator.allocate(request.size)
            successes += 1
            continue
        except OutOfMemory:
            pass
        if allocator.free_words < request.size:
            capacity_failures += 1   # no course of action can help
            continue
        # A fragmentation failure: the words exist, shattered.
        if not use_compaction:
            frag_failures += 1
            continue
        relocations = {}
        result = compact(
            allocator,
            on_relocate=lambda old, new: relocations.update({old.address: new}),
        )
        words_moved += result.words_moved
        for key, allocation in list(live.items()):
            if allocation.address in relocations:
                live[key] = relocations[allocation.address]
        live[id(request)] = allocator.allocate(request.size)
        successes += 1
    return successes, frag_failures, capacity_failures, words_moved


def run_experiment() -> list[tuple[str, str, int, int, int, int]]:
    rows = []
    for label, mean_size in (("small requests", 150), ("large requests", 3_000)):
        for use_compaction in (False, True):
            outcome = drive(mean_size, use_compaction)
            rows.append(
                (label, "compact" if use_compaction else "accept") + outcome
            )
    return rows


def test_compaction_tradeoff(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["request mix", "course", "placed", "frag failures",
         "capacity failures", "words moved"],
        rows,
        title=f"CL-COMPACT  Accept fragmentation vs compact "
              f"({CAPACITY}-word storage)",
    ))

    table = {(mix, action): rest for mix, action, *rest in rows}
    small_accept = table[("small requests", "accept")]
    small_compact = table[("small requests", "compact")]
    large_accept = table[("large requests", "accept")]
    large_compact = table[("large requests", "compact")]

    # Wald's observation: with small requests, accepting fragmentation
    # is "often quite reasonable" — essentially no fragmentation failures
    # even without compaction.
    assert small_accept[1] <= 900 * 0.02
    # So compaction has nothing to buy (and moves no words).
    assert small_compact[3] <= small_accept[0] * 2
    # With large requests, fragmentation failures are real without
    # compaction...
    assert large_accept[1] > 0
    # ...compaction eliminates them by definition of the mechanism
    # (note the second-order effect visible in the table: the large
    # blocks it manages to place crowd later arrivals into genuine
    # capacity failures — packing recovers space, not capacity)...
    assert large_compact[1] == 0
    # ...at a real data-movement price.
    assert large_compact[3] > 0
