#!/usr/bin/env python
"""Perf trajectory suite — wrapper around :mod:`repro.bench`.

Usage from a source checkout (no install needed)::

    python benchmarks/perf_suite.py [--quick] [-o BENCH_perf.json]

This is the same suite as ``python -m repro.bench``; see that module for
what is measured and the shape of the JSON report.  Named without a
``test_`` prefix on purpose: the experiment benchmarks in this directory
regenerate the paper's *figures*, while this file tracks the simulator's
own *throughput* across PRs.
"""

from __future__ import annotations

import sys
from pathlib import Path

try:
    from repro.bench import main
except ImportError:  # running from a checkout without PYTHONPATH=src
    sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))
    from repro.bench import main

if __name__ == "__main__":
    raise SystemExit(main())
