"""CL-LEVELS — Conclusion (ii): strategy choice depends on the devices.

"The choice of a suitable storage allocation system is strongly
dependent on the characteristics of the various storage levels, and
their interconnections, provided by the computer system on which it is
implemented."

The experiment runs one program (same reference behaviour, same core
size) over two backing devices — a drum (short latency) and a disk
(long seek) — sweeping the page size.  Small pages minimize waste and
pollution, but each fetch pays the device latency; large pages amortize
the latency over more words.  The best page size therefore *grows with
device latency*: the same design question has different answers on
different hardware, which is the conclusion's point.
"""

from __future__ import annotations

from conftest import emit

from repro.metrics import format_table
from repro.paging import LruPolicy, simulate_trace
from repro.workload import phased_trace

CORE_WORDS = 8_192
SPACE_WORDS = 1 << 16          # the program's name space
PAGE_SIZES = [128, 256, 512, 1_024, 2_048]
DEVICES = {
    "drum (latency 500)": (500, 1.0),
    "disk (latency 20000)": (20_000, 0.25),
}
WORD_TRACE_LENGTH = 6_000


def word_trace() -> list[int]:
    """A word-granular reference trace (page number depends on page size)."""
    coarse = phased_trace(
        pages=SPACE_WORDS // 256, length=WORD_TRACE_LENGTH, working_set=10,
        phase_length=600, locality=0.93, seed=83,
    )
    # Spread each 256-word-granule reference to a word address.
    return [(granule * 256 + (index * 97) % 256)
            for index, granule in enumerate(coarse)]


def run_experiment() -> list[tuple[str, int, int, int]]:
    """(device, page size, faults, total wait cycles)."""
    words = word_trace()
    rows = []
    for device, (latency, rate) in DEVICES.items():
        for page_size in PAGE_SIZES:
            trace = [word // page_size for word in words]
            frames = CORE_WORDS // page_size
            result = simulate_trace(trace, frames, LruPolicy())
            fetch_cycles = latency + round(page_size / rate)
            rows.append(
                (device, page_size, result.faults,
                 result.faults * fetch_cycles)
            )
    return rows


def test_best_page_size_depends_on_the_device(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["backing device", "page size", "faults", "total wait cycles"],
        rows,
        title="CL-LEVELS  One program, one core size, two devices: "
              "the best page size moves with the hardware",
    ))

    def best_page(device: str) -> int:
        candidates = [(wait, page) for d, page, _, wait in rows if d == device]
        return min(candidates)[1]

    drum_best = best_page("drum (latency 500)")
    disk_best = best_page("disk (latency 20000)")
    emit(f"CL-LEVELS  best page size: drum={drum_best}, disk={disk_best}")

    # The long-seek device wants larger transfer units than the drum —
    # the same allocation design question, different answers per device.
    assert disk_best > drum_best
    # And neither extreme of the sweep is best on the drum (a real
    # interior optimum exists there).
    assert PAGE_SIZES[0] <= drum_best < PAGE_SIZES[-1]
