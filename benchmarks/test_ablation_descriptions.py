"""ABL-ACSI — ACSI-MATIC program descriptions steering allocation.

"In this system programs were accompanied by 'program descriptions' ...
which specified, for example, (i) which storage medium a particular
segment was to be in when it was used, and (ii) permissions and
restrictions on the overlaying of groups of segments.  Storage
allocation strategies were then based on the analysis of these
descriptions."

Two ablations: overlay restrictions protecting a hot group from an
indifferent replacement policy, and medium placement keeping
soon-needed segments on the fast drum instead of the slow disk.
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import SegmentTable
from repro.advice import (
    DescribedSegmentManager,
    ProgramDescription,
    medium_router,
)
from repro.alloc import FreeListAllocator
from repro.clock import Clock
from repro.memory import MultiLevelBackingStore, StorageHierarchy, StorageLevel
from repro.metrics import format_table
from repro.paging import FifoPolicy
from repro.segmentation import SegmentManager

CAPACITY = 2_000
SEGMENT_WORDS = 450
HOT = ("hot0", "hot1")
COLD = ("cold0", "cold1", "cold2", "cold3")


def make_hierarchy() -> StorageHierarchy:
    return StorageHierarchy([
        StorageLevel("core", CAPACITY, access_time=1,
                     directly_addressable=True),
        StorageLevel("drum", 100_000, access_time=500, transfer_rate=1.0),
        StorageLevel("disk", 1_000_000, access_time=10_000,
                     transfer_rate=0.2),
    ])


def run_workload(manager) -> None:
    """Hot segments referenced constantly, cold ones swept repeatedly."""
    for name in HOT + COLD:
        manager.create(name, SEGMENT_WORDS)
    for round_ in range(30):
        for hot in HOT:
            manager.access(hot, round_ % SEGMENT_WORDS)
        manager.access(COLD[round_ % len(COLD)], 0)


def run_overlay_ablation() -> list[tuple[str, int, int]]:
    """(variant, hot-segment refetches, total faults) under FIFO."""
    rows = []
    for label, described in (("plain FIFO manager", False),
                             ("description-guided", True)):
        clock = Clock()
        backing = MultiLevelBackingStore(make_hierarchy(), clock=clock)
        description = ProgramDescription("job")
        for name in HOT:
            description.assign_group(name, "hot")
        for name in COLD:
            description.assign_group(name, "cold")
        description.forbid_overlay("cold", "hot")
        kwargs = dict(
            table=SegmentTable(),
            allocator=FreeListAllocator(CAPACITY, policy="best_fit"),
            backing=backing,
            policy=FifoPolicy(),
            clock=clock,
        )
        if described:
            manager = DescribedSegmentManager(description=description, **kwargs)
        else:
            manager = SegmentManager(**kwargs)
        run_workload(manager)
        hot_refetches = sum(
            1 for _ in ()  # placeholder replaced below
        )
        # Count hot-segment fetches past the cold start.
        hot_fetches = sum(
            backing.store_for(level).fetches
            for level in ("drum", "disk")
        )
        rows.append((label, hot_fetches, manager.stats.segment_faults))
    return rows


def test_overlay_rules_protect_hot_segments(benchmark):
    rows = benchmark(run_overlay_ablation)

    emit(format_table(
        ["manager", "backing fetches", "segment faults"],
        rows,
        title="ABL-ACSI  Overlay restrictions: forbid cold sweeps from "
              "overlaying the hot group (FIFO replacement underneath)",
    ))

    plain, described = rows
    # The description keeps the hot group resident: fewer total faults.
    assert described[2] < plain[2]


def run_medium_ablation() -> list[tuple[str, int]]:
    """(variant, cycles spent waiting on fetches).

    Two archive segments are touched once and never again; four detail
    segments rotate through a core that holds only three segments.  The
    drum holds four displaced segments' images.  Without medium routing
    the archives land on the drum first (nearest-with-room) and squat
    there; half the details spill to the 20x-slower disk and every
    refetch of those pays disk latency.  The description knows better:
    archives to disk, details to drum.
    """
    archives = ("archive0", "archive1")
    rows = []
    for label, routed in (("nearest-level placement", False),
                          ("described medium placement", True)):
        clock = Clock()
        description = ProgramDescription("job")
        for name in archives:
            description.set_medium(name, "disk")
        for name in COLD:
            description.set_medium(name, "drum")
        hierarchy = StorageHierarchy([
            StorageLevel("core", 1_500, access_time=1,
                         directly_addressable=True),
            # Room for four displaced images on the drum — exactly the
            # detail set, if nothing squats there.
            StorageLevel("drum", 1_900, access_time=500, transfer_rate=1.0),
            StorageLevel("disk", 1_000_000, access_time=10_000,
                         transfer_rate=0.2),
        ])
        backing = MultiLevelBackingStore(
            hierarchy, clock=clock,
            medium_of=medium_router(description) if routed else None,
        )
        manager = DescribedSegmentManager(
            table=SegmentTable(),
            allocator=FreeListAllocator(1_500, policy="best_fit"),
            backing=backing,
            policy=FifoPolicy(),
            clock=clock,
            description=description,
        )
        for name in archives + COLD:
            manager.create(name, SEGMENT_WORDS)
        for name in archives:       # touched once, early
            manager.access(name, 0)
        for round_ in range(40):    # the detail rotation
            manager.access(COLD[round_ % len(COLD)], 0)
        rows.append((label, manager.stats.fetch_wait_cycles))
    return rows


def test_medium_placement_cuts_fetch_waits(benchmark):
    rows = benchmark(run_medium_ablation)

    emit(format_table(
        ["placement", "fetch wait cycles"],
        rows,
        title="ABL-ACSI  Medium prediction: segments kept on the drum "
              "fetch 20x faster than from the disk",
    ))

    nearest, described = rows
    # Routing by the description keeps the rotating details on the fast
    # drum: a large multiple cheaper than letting archives squat there.
    assert described[1] * 3 < nearest[1]
