"""CL-FRAG — "Storage fragmentation is not prevented, but just obscured,
by paging techniques."

Two prints:

1. The page-size dilemma: for a fixed request population, sweep the page
   size and report internal fragmentation (within-page waste) and table
   overhead — "If it is too small, there will be an unacceptable amount
   of overhead.  If it is too large, too much space will be wasted."
2. The obscuring claim: the same request stream served by a variable-
   unit allocator (fragmentation visible as external holes) and by whole
   page frames (fragmentation hidden inside pages) — both waste storage.
"""

from __future__ import annotations

from conftest import emit

from repro.alloc import FreeListAllocator, fragmentation_stats
from repro.alloc.stats import paging_internal_waste
from repro.errors import OutOfMemory
from repro.metrics import format_table
from repro.workload import exponential_requests, request_schedule

PAGE_SIZES = [64, 128, 256, 512, 1_024, 2_048, 4_096]
NAME_SPACE_WORDS = 1 << 21   # table entries = name space / page size


def run_page_size_sweep() -> list[tuple[int, float, int, float]]:
    """(page size, internal frag share, table entries, waste+overhead words)."""
    requests = exponential_requests(
        400, mean_size=600, mean_lifetime=100, max_size=8_000, seed=23
    )
    sizes = [r.size for r in requests]
    rows = []
    for page_size in PAGE_SIZES:
        wasted, reserved = paging_internal_waste(sizes, page_size)
        table_entries = NAME_SPACE_WORDS // page_size
        # One word per page-table entry: the overhead side of the dilemma.
        combined = wasted + table_entries
        rows.append((page_size, wasted / reserved, table_entries, combined))
    return rows


def run_obscuring_comparison() -> dict[str, float]:
    requests = exponential_requests(
        600, mean_size=400, mean_lifetime=60, max_size=4_000, seed=29
    )
    # Variable units: external fragmentation is visible as holes.
    allocator = FreeListAllocator(1 << 20, policy="first_fit")
    live = {}
    for _, action, request in request_schedule(requests):
        if action == "allocate":
            try:
                live[id(request)] = allocator.allocate(request.size)
            except OutOfMemory:
                pass
        elif id(request) in live:
            allocator.free(live.pop(id(request)))
    visible = fragmentation_stats(allocator).external_fragmentation

    # Uniform units: the same stream, whole frames per request.
    live_sizes = [allocator_allocation.size for allocator_allocation in live.values()]
    wasted, reserved = paging_internal_waste(live_sizes or [1], 512)
    hidden = wasted / reserved
    return {"variable_external": visible, "paged_internal": hidden}


def test_page_size_dilemma(benchmark):
    rows = benchmark(run_page_size_sweep)

    emit(format_table(
        ["page size", "internal frag", "table entries", "waste+table words"],
        rows,
        title="CL-FRAG  The unit-size dilemma: small pages cost table "
              "overhead, large pages cost within-page waste",
    ))

    frag = [f for _, f, _, _ in rows]
    tables = [t for _, _, t, _ in rows]
    combined = [c for *_, c in rows]
    # Internal fragmentation grows with page size; table overhead shrinks.
    assert frag[-1] > frag[0]
    assert all(a >= b for a, b in zip(tables, tables[1:]))
    # The combined cost is non-monotonic: a knee exists strictly inside
    # the sweep — the "choosing the size of the unit" problem.
    best = combined.index(min(combined))
    assert 0 < best < len(combined) - 1


def test_paging_obscures_fragmentation(benchmark):
    result = benchmark(run_obscuring_comparison)

    emit(format_table(
        ["where the fragmentation lives", "fraction of storage wasted"],
        [["variable units: external holes", result["variable_external"]],
         ["512-word frames: inside pages", result["paged_internal"]]],
        title="CL-FRAG  Paging hides fragmentation inside pages; it does "
              "not remove it",
    ))

    # Both systems waste a real fraction; paging's is merely invisible to
    # a hole count.
    assert result["paged_internal"] > 0.05
