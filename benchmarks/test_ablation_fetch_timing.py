"""ABL-FETCH — The fetch-timing taxonomy, measured.

"Information can be fetched before it is needed, at the moment it is
needed (e.g. 'demand paging'), or even later at the convenience of the
system."  Two ablations:

1. *Before vs at the moment*: sequential prefetch depth swept on a
   sequential scan (where lookahead is prophecy) and on a random trace
   (where it is noise pollution).
2. *Later at the system's convenience*: write-backs on the eviction
   path vs opportunistic cleaning between phases.
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import PageTable
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.metrics import format_table
from repro.paging import (
    DemandPager,
    FrameTable,
    LruPolicy,
    PageCleaner,
    SequentialPrefetcher,
)
from repro.workload import random_trace, sequential_trace

PAGE_SIZE = 512
FETCH_LATENCY = 1_000
DEPTHS = [0, 1, 2, 4]


def make_pager(frames, pages, depth, evicts=True):
    clock = Clock()
    prefetcher = SequentialPrefetcher(depth) if depth else None
    pager = DemandPager(
        PageTable(page_size=PAGE_SIZE, pages=pages),
        FrameTable(frames),
        BackingStore(
            StorageLevel("drum", 10**8, access_time=FETCH_LATENCY,
                         transfer_rate=1.0),
            clock=clock,
        ),
        LruPolicy(),
        clock,
        prefetcher=prefetcher,
        prefetch_evicts=evicts,
    )
    return pager


def run_prefetch_sweep() -> list[tuple[str, int, int, int]]:
    """(trace kind, depth, demand faults, prefetched pages)."""
    rows = []
    sequential = sequential_trace(pages=48, sweeps=2)
    random_refs = random_trace(48, len(sequential), seed=61)
    for label, trace in (("sequential", sequential), ("random", random_refs)):
        for depth in DEPTHS:
            pager = make_pager(frames=8, pages=48, depth=depth)
            for page in trace:
                pager.access_page(page)
            rows.append(
                (label, depth, pager.stats.faults,
                 pager.stats.prefetches)
            )
    return rows


def test_anticipatory_fetch(benchmark):
    rows = benchmark(run_prefetch_sweep)

    emit(format_table(
        ["trace", "prefetch depth", "demand faults", "prefetches"],
        rows,
        title="ABL-FETCH  Fetching before it is needed: sequential "
              "lookahead on sequential vs random traces",
    ))

    by_key = {(trace, depth): faults for trace, depth, faults, _ in rows}
    # On a sequential scan, each level of lookahead removes faults —
    # deeply: depth 4 cuts demand faults by ~4x.
    assert by_key[("sequential", 1)] < by_key[("sequential", 0)]
    assert by_key[("sequential", 4)] < by_key[("sequential", 1)]
    assert by_key[("sequential", 4)] * 3 < by_key[("sequential", 0)]
    # On a random trace, lookahead is pollution: it evicts useful pages
    # for predicted ones that never arrive, and faults do NOT improve.
    assert by_key[("random", 4)] >= by_key[("random", 0)] * 0.95


def run_cleaning_comparison() -> list[tuple[str, int, int]]:
    """(variant, cycles blocked on write-backs, overlapped words)."""
    results = []
    for label, clean in (("evict-time write-back", False),
                         ("opportunistic cleaning", True)):
        pager = make_pager(frames=4, pages=64, depth=0, evicts=False)
        cleaner = PageCleaner(pager)
        for phase in range(12):
            base = phase * 4
            for step in range(60):
                pager.access_page(base + step % 4, write=True)
            if clean:
                cleaner.clean()   # between phases: channel idle time
        results.append(
            (label, pager.stats.writeback_cycles, cleaner.words_cleaned)
        )
    return results


def test_cleaning_at_the_systems_convenience(benchmark):
    rows = benchmark(run_cleaning_comparison)

    emit(format_table(
        ["write-back timing", "blocked cycles", "overlapped words"],
        rows,
        title="ABL-FETCH  Writing back later, at the system's convenience",
    ))

    evict_time, cleaned = rows
    # Eviction-path write-backs block the program...
    assert evict_time[1] > 0
    # ...opportunistic cleaning moves that traffic off the critical path.
    assert cleaned[1] == 0
    assert cleaned[2] > 0
