"""Shared helpers for the experiment benchmarks.

Every benchmark regenerates one of the paper's figures or quantitative
claims (see DESIGN.md §3) and prints the rows/series it produces; run
with ``pytest benchmarks/ --benchmark-only -s`` to see the tables.
Assertions in each benchmark check the *shape* the paper asserts (who
wins, what dominates, where the knee is) — absolute numbers are
simulator-scale, not 1967-hardware-scale.
"""

from __future__ import annotations


def emit(text: str) -> None:
    """Print an experiment's table, fenced for readability."""
    print()
    print(text)
