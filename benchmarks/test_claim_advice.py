"""CL-ADVICE — Predictive information.

"The authors' opinion is that the general level of performance of the
system should not be dependent on the extent and accuracy of predictive
information supplied by users.  The system should in general achieve
acceptable performance without such user-supplied information.
Provision and debugging of predictive information should be regarded as
an attempt to 'tune' the system for special cases."

The experiment runs one phase-structured program under the M44/44X
directive pair with: no advice, accurate advice (will-need the next
phase, wont-need the finished one), and adversarial advice (the
opposite).  The shape to reproduce: accurate advice helps, the
no-advice baseline is already acceptable, and bad advice degrades
gracefully rather than catastrophically (it is advisory).
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import PageTable
from repro.advice import AdvisedPager, will_need, wont_need
from repro.clock import Clock
from repro.memory import BackingStore, StorageLevel
from repro.metrics import format_table
from repro.paging import DemandPager, FrameTable, LruPolicy

PHASES = 12
PAGES_PER_PHASE = 4
REFS_PER_PHASE = 150
FRAMES = 6
FETCH_LATENCY = 1_000
PAGE_SIZE = 512


def phase_pages(phase: int) -> list[int]:
    base = phase * PAGES_PER_PHASE
    return list(range(base, base + PAGES_PER_PHASE))


def run_variant(mode: str) -> tuple[int, int]:
    """Returns (faults, fetch wait cycles) for an advice mode."""
    clock = Clock()
    table = PageTable(page_size=PAGE_SIZE, pages=PHASES * PAGES_PER_PHASE)
    backing = BackingStore(
        StorageLevel("drum", 10**7, access_time=FETCH_LATENCY,
                     transfer_rate=1.0),
        clock=clock,
    )
    pager = AdvisedPager.wrap(
        DemandPager(table, FrameTable(FRAMES), backing, LruPolicy(), clock)
    )
    for phase in range(PHASES):
        if mode == "accurate":
            # Retire the previous phase, announce this one.
            if phase:
                for page in phase_pages(phase - 1):
                    pager.advise(wont_need(page))
            for page in phase_pages(phase):
                pager.advise(will_need(page))
        for step in range(REFS_PER_PHASE):
            pages = phase_pages(phase)
            pager.access_page(pages[step % len(pages)])
            if mode == "adversarial" and step == len(pages):
                # Exactly wrong advice, issued once the phase's pages are
                # resident: declare the live working set dead and ask for
                # the finished phase back.
                for page in pages:
                    pager.advise(wont_need(page))
                if phase:
                    for page in phase_pages(phase - 1):
                        pager.advise(will_need(page))
    return pager.stats.faults, pager.stats.fetch_wait_cycles


def run_experiment() -> list[tuple[str, int, int]]:
    return [(mode,) + run_variant(mode)
            for mode in ("none", "accurate", "adversarial")]


def test_advice_accuracy(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["advice", "demand faults", "fetch wait cycles"],
        rows,
        title="CL-ADVICE  One phase-structured program under the "
              "M44/44X will-need / wont-need instructions",
    ))

    by_mode = {row[0]: row for row in rows}
    none_faults, none_wait = by_mode["none"][1], by_mode["none"][2]
    accurate_faults, accurate_wait = by_mode["accurate"][1], by_mode["accurate"][2]
    adversarial_faults = by_mode["adversarial"][1]

    # Accurate advice removes nearly all demand faults (tuning works).
    assert accurate_faults < none_faults * 0.25
    assert accurate_wait < none_wait * 0.25
    # The baseline is acceptable without advice: faults are bounded by
    # the cold-start cost of each phase (performance does not *depend*
    # on advice).
    assert none_faults <= PHASES * PAGES_PER_PHASE
    # Bad advice degrades but stays the same order of magnitude — it is
    # advisory, not catastrophic.
    assert adversarial_faults <= none_faults * 3
    assert adversarial_faults >= none_faults


def test_advice_is_never_load_bearing(benchmark):
    """Ignoring every directive must still be correct (only slower)."""

    def run() -> bool:
        clock = Clock()
        table = PageTable(page_size=PAGE_SIZE, pages=16)
        backing = BackingStore(
            StorageLevel("drum", 10**6, access_time=100), clock=clock
        )
        pager = AdvisedPager.wrap(
            DemandPager(table, FrameTable(2), backing, LruPolicy(), clock)
        )
        # Advice that cannot be honoured (frames full, nothing hinted).
        pager.access_page(0)
        pager.access_page(1)
        for page in range(8):
            pager.advise(will_need(page))
        # Every access still resolves.
        for page in range(8):
            pager.access_page(page)
        return True

    assert benchmark(run)
