"""FIG4 — Figure 4: the two-level mapping scheme and its associative memory.

Figure 4 shows a logical address walking a segment table and then a page
table — two extra storage references — unless the (segment, page) pair
hits the small associative memory.  The paper: "If it were not for such
mechanisms, the cost in extra addressing time caused by the provision
of, say, segmentation and artificial name contiguity, would often be
unacceptable."

The experiment sweeps the associative-memory size through the machines'
actual values (0, 1, 8 as in the 360/67, 16, 44 as in the B8500) and
prints mapping references per access and hit rate.
"""

from __future__ import annotations

from conftest import emit

from repro.addressing import AssociativeMemory, TwoLevelMapper
from repro.metrics import format_table
from repro.workload import phased_trace

TLB_SIZES = [0, 1, 4, 8, 16, 44]
PAGE_SIZE = 1_024
SEGMENTS = 6
PAGES_PER_SEGMENT = 8
REFERENCES = 3_000


def run_experiment() -> list[tuple[int, float, float]]:
    """(TLB entries, mapping refs per access, hit rate)."""
    # A locality trace over (segment, page) pairs.
    flat = phased_trace(
        pages=SEGMENTS * PAGES_PER_SEGMENT, length=REFERENCES,
        working_set=6, phase_length=300, seed=17,
    )
    pairs = [(f"seg{p // PAGES_PER_SEGMENT}", p % PAGES_PER_SEGMENT)
             for p in flat]

    rows = []
    for size in TLB_SIZES:
        tlb = AssociativeMemory(size) if size else None
        mapper = TwoLevelMapper(page_size=PAGE_SIZE, associative_memory=tlb)
        for segment in range(SEGMENTS):
            mapper.declare(f"seg{segment}", PAGES_PER_SEGMENT * PAGE_SIZE)
            for page in range(PAGES_PER_SEGMENT):
                mapper.map(f"seg{segment}", page,
                           segment * PAGES_PER_SEGMENT + page)
        for segment, page in pairs:
            mapper.translate_pair(segment, page * PAGE_SIZE)
        hit_rate = tlb.hit_rate if tlb is not None else 0.0
        rows.append(
            (size, mapper.mapping_cycles_total / REFERENCES, hit_rate)
        )
    return rows


def test_fig4_two_level_mapping(benchmark):
    rows = benchmark(run_experiment)

    emit(format_table(
        ["associative entries", "mapping refs/access", "hit rate"],
        rows,
        title="FIG4  Two-level mapping overhead vs associative memory size "
              f"({REFERENCES} accesses)",
    ))

    overhead = [o for _, o, _ in rows]
    # Without the associative memory every access pays the full 2-level walk.
    assert overhead[0] == 2.0
    # Overhead falls monotonically as the store grows...
    assert all(a >= b for a, b in zip(overhead, overhead[1:]))
    # ...and the 8-entry store (the 360/67's) already removes most of it.
    eight_entry = dict((size, o) for size, o, _ in rows)[8]
    assert eight_entry < 0.5
    # The 44-word B8500 store nearly eliminates it on a locality trace.
    assert overhead[-1] < 0.2
