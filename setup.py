"""Setup shim for environments whose setuptools cannot build wheels.

All real metadata lives in pyproject.toml; this file only enables the
legacy editable-install path (``pip install -e . --no-use-pep517``).
"""

from setuptools import setup

setup()
